"""ABL-C — congestion sweep (the paper's §6 future work).

Scales the request-volume multiplier (the §5.3 "20–40 × machines" knob)
and tracks how the best heuristic/criterion pair degrades relative to the
bounds.  Expected shape: the networks become more oversubscribed
(``possible_satisfy/upper_bound`` falls) and the satisfaction rate drops,
while the fraction of the *achievable* value the heuristic captures stays
high.
"""

from repro.experiments.congestion import congestion_sweep
from repro.experiments.tables import render_table


def _sweep_parameters(scale):
    if scale.name == "ci":
        return (4, 8, 16), 2
    if scale.name == "full":
        return (5, 10, 20, 30, 40), 5
    return (20, 30, 40), 10  # paper scale


def test_congestion_sweep(benchmark, scale, artifact_writer):
    multipliers, cases = _sweep_parameters(scale)
    points = benchmark.pedantic(
        congestion_sweep,
        args=(multipliers,),
        kwargs={
            "cases": cases,
            "base_config": scale.config,
            "heuristic": "full_one",
            "criterion": "C4",
            "weights": 2.0,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            str(point.requests_per_machine),
            f"{point.mean_requests:.0f}",
            f"{point.weighted_sum.mean:.1f}",
            f"{point.satisfaction_rate.mean:.3f}",
            f"{point.possible_fraction.mean:.3f}",
            f"{point.achieved_fraction.mean:.3f}",
        ]
        for point in points
    ]
    text = render_table(
        [
            "req/machine",
            "requests",
            "weighted-sum",
            "satisfy-rate",
            "possible/upper",
            "achieved/possible",
        ],
        rows,
        title=(
            f"ABL-C: congestion sweep, full_one/C4 @ log10(E-U)=2, "
            f"{cases} cases per point"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_congestion", text)

    # More load → more raw weighted value but lower satisfaction rate.
    assert (
        points[-1].weighted_sum.mean >= points[0].weighted_sum.mean
    )
    assert (
        points[-1].satisfaction_rate.mean
        <= points[0].satisfaction_rate.mean + 0.05
    )
