"""ABL-D — dynamic extension ablations (paper §6 future work).

Two questions the static paper raises but defers:

1. **Value of foresight** — how much weighted priority is lost when
   requests are revealed only when their items appear, versus a
   clairvoyant scheduler that knows everything at t=0?
2. **Fault tolerance of γ** — after destination copy losses, how much of
   the lost value do the γ-held intermediate copies recover, compared to
   running with γ=0 (intermediates reclaimed at the latest deadline)?
"""

import random

from repro.dynamic.driver import DynamicDriver, reveal_at_item_start
from repro.dynamic.events import CopyLoss
from repro.experiments.aggregate import Aggregate
from repro.experiments.tables import render_table


def _loss_events(scenario, rng, fraction=0.3):
    """Lose a fraction of satisfied-destination copies just before their
    deadlines (the worst moment: the data was there and disappears)."""
    events = []
    for request in scenario.requests:
        if rng.random() < fraction:
            events.append(
                CopyLoss(
                    time=max(request.deadline - 60.0, 1.0),
                    item_id=request.item_id,
                    machine=request.destination,
                )
            )
    return events


def test_value_of_foresight(benchmark, scale, scenarios, artifact_writer):
    sample = scenarios[: min(5, len(scenarios))]

    def study():
        driver = DynamicDriver("partial", "C4", 2.0)
        clairvoyant, online = [], []
        for scenario in sample:
            clairvoyant.append(
                driver.run(scenario, ()).effect.weighted_sum
            )
            online.append(
                driver.run(
                    scenario, reveal_at_item_start(scenario)
                ).effect.weighted_sum
            )
        return Aggregate.of(clairvoyant), Aggregate.of(online)

    clairvoyant, online = benchmark.pedantic(study, rounds=1, iterations=1)
    ratio = online.mean / clairvoyant.mean if clairvoyant.mean else 1.0
    text = render_table(
        ["scheduler", "mean", "min", "max"],
        [
            ["clairvoyant (all at t=0)", f"{clairvoyant.mean:.1f}",
             f"{clairvoyant.minimum:.1f}", f"{clairvoyant.maximum:.1f}"],
            ["online (reveal at item start)", f"{online.mean:.1f}",
             f"{online.minimum:.1f}", f"{online.maximum:.1f}"],
        ],
        title=(
            f"ABL-D1: value of foresight, dynamic(partial/C4), "
            f"{len(sample)} cases — online/clairvoyant = {ratio:.3f}"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_dynamic_foresight", text)
    # Online scheduling can never beat clairvoyance.
    assert online.mean <= clairvoyant.mean + 1e-9
    # But item-start reveals leave the full deadline window, so the loss
    # should be modest.
    assert ratio >= 0.5


def test_loss_recovery(benchmark, scale, scenarios, artifact_writer):
    """How much value does re-scheduling recover after destination losses?

    Three measurements per case: the loss-free run; the run with 30% of
    destination copies lost shortly before their deadlines and the driver
    re-scheduling after each loss; and the counterfactual of the same
    losses with *no* re-scheduling (the reopened requests simply stay
    unsatisfied).  The gap between the last two is the recovered value —
    it exists precisely because sources, destinations, and γ-held
    intermediates still hold copies when the loss strikes (§4.4's
    fault-tolerance rationale).
    """
    sample = scenarios[: min(5, len(scenarios))]

    def study():
        driver = DynamicDriver("partial", "C4", 2.0)
        baseline, recovered, unrecovered = [], [], []
        for index, scenario in enumerate(sample):
            rng = random.Random(1000 + index)
            losses = _loss_events(scenario, rng)
            loss_free = driver.run(scenario, ())
            baseline.append(loss_free.effect.weighted_sum)
            with_rescheduling = driver.run(scenario, losses)
            recovered.append(with_rescheduling.effect.weighted_sum)
            # Counterfactual: value if every reopened request stayed lost.
            reopened = {
                request_id
                for outcome in with_rescheduling.outcomes
                for request_id in outcome.reopened
            }
            lost_weight = sum(
                scenario.weighting.weight(
                    scenario.request(request_id).priority
                )
                for request_id in reopened
            )
            unrecovered.append(loss_free.effect.weighted_sum - lost_weight)
        return (
            Aggregate.of(baseline),
            Aggregate.of(recovered),
            Aggregate.of(unrecovered),
        )

    baseline, recovered, unrecovered = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    text = render_table(
        ["configuration", "mean weighted sum"],
        [
            ["no losses", f"{baseline.mean:.1f}"],
            ["losses + re-scheduling", f"{recovered.mean:.1f}"],
            ["losses, no re-scheduling", f"{unrecovered.mean:.1f}"],
        ],
        title=(
            f"ABL-D2: copy-loss recovery, dynamic(partial/C4), "
            f"{len(sample)} cases, 30% destination losses 60s before "
            f"deadline"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_dynamic_recovery", text)
    # Losses can only hurt relative to the loss-free run...
    assert recovered.mean <= baseline.mean + 1e-9
    # ...and re-scheduling from surviving copies must recover value.
    assert recovered.mean >= unrecovered.mean - 1e-9
