"""FIG2 — Figure 2: best criterion (C4) per heuristic versus the bounds.

Regenerates the paper's Figure 2: the mean weighted priority sum of the
three heuristics driven by their best criterion (C4) across the E-U ratio
grid, against the two upper bounds (``upper_bound``, ``possible_satisfy``)
and the two random lower-bound baselines (``random_Dijkstra``,
``single_Dij_random``).

Expected shape (paper): upper_bound > possible_satisfy > heuristics >
random_Dijkstra > single_Dij_random, with the heuristics close to
``possible_satisfy`` and well above the random baselines.
"""

from repro.experiments.figures import figure2
from repro.experiments.tables import render_figure


def test_figure2(benchmark, scale, scenarios, artifact_writer, executor):
    data = benchmark.pedantic(
        figure2,
        args=(scenarios, scale.log_ratios),
        kwargs={"executor": executor},
        rounds=1,
        iterations=1,
    )
    text = render_figure(data)
    print("\n" + text)
    artifact_writer("figure2", text)

    upper = data.by_name("upper_bound").values()
    possible = data.by_name("possible_satisfy").values()
    single = data.by_name("single_Dij_random").values()
    for name in ("partial/C4", "full_one/C4", "full_all/C4"):
        series = data.by_name(name).values()
        for u, p, value in zip(upper, possible, series):
            assert value <= p <= u
    # The loose random baseline must not beat the best heuristic point.
    best_heuristic = max(
        max(data.by_name(name).values())
        for name in ("partial/C4", "full_one/C4", "full_all/C4")
    )
    assert single[0] <= best_heuristic
