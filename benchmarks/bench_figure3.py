"""FIG3 — Figure 3: the partial path heuristic under criteria C1–C4.

Regenerates the paper's Figure 3: mean weighted priority sum of
``partial`` with each of the four cost criteria across the E-U grid.
Expected shape (paper): C4 best overall (at a good ratio), C3 a flat line
close to C4's best, C1 weakest at priority-dominated ratios because it
ignores multi-destination value.
"""

from repro.experiments.figures import heuristic_figure
from repro.experiments.tables import render_figure


def test_figure3_partial_path(
    benchmark, scale, scenarios, artifact_writer, executor
):
    data = benchmark.pedantic(
        heuristic_figure,
        args=(scenarios, "partial", scale.log_ratios),
        kwargs={"executor": executor},
        rounds=1,
        iterations=1,
    )
    text = render_figure(data)
    print("\n" + text)
    artifact_writer("figure3", text)

    assert [s.name for s in data.series] == [
        "partial/C1",
        "partial/C2",
        "partial/C3",
        "partial/C4",
    ]
    # C3 is E-U independent: a perfectly flat line.
    assert len(set(data.by_name("partial/C3").values())) == 1
    # C4's best point at least matches C1's best point; a 1% tolerance
    # absorbs small-sample noise at the ci scale.
    assert max(data.by_name("partial/C4").values()) >= 0.99 * max(
        data.by_name("partial/C1").values()
    )
