"""FIG4 — Figure 4: the full path/one destination heuristic under C1–C4.

Regenerates the paper's Figure 4.  Expected shape (paper): as Figure 3,
with C4 the best criterion; full_one/C4 is the paper's overall winner.
"""

from repro.experiments.figures import heuristic_figure
from repro.experiments.tables import render_figure


def test_figure4_full_path_one(
    benchmark, scale, scenarios, artifact_writer, executor
):
    data = benchmark.pedantic(
        heuristic_figure,
        args=(scenarios, "full_one", scale.log_ratios),
        kwargs={"executor": executor},
        rounds=1,
        iterations=1,
    )
    text = render_figure(data)
    print("\n" + text)
    artifact_writer("figure4", text)

    assert [s.name for s in data.series] == [
        "full_one/C1",
        "full_one/C2",
        "full_one/C3",
        "full_one/C4",
    ]
    assert len(set(data.by_name("full_one/C3").values())) == 1
    # C4's best point at least matches C1's best point; a 1% tolerance
    # absorbs small-sample noise at the ci scale (the paper averages 40
    # cases on a full grid).
    assert max(data.by_name("full_one/C4").values()) >= 0.99 * max(
        data.by_name("full_one/C1").values()
    )
