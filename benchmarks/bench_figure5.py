"""FIG5 — Figure 5: the full path/all destinations heuristic under C2–C4.

Regenerates the paper's Figure 5 (C1 is excluded by design: it cannot
express multi-destination value).  Expected shape (paper): results
comparable to full path/one destination, with fewer Dijkstra executions.
"""

from repro.experiments.figures import heuristic_figure
from repro.experiments.tables import render_figure


def test_figure5_full_path_all(
    benchmark, scale, scenarios, artifact_writer, executor
):
    data = benchmark.pedantic(
        heuristic_figure,
        args=(scenarios, "full_all", scale.log_ratios),
        kwargs={"executor": executor},
        rounds=1,
        iterations=1,
    )
    text = render_figure(data)
    print("\n" + text)
    artifact_writer("figure5", text)

    assert [s.name for s in data.series] == [
        "full_all/C2",
        "full_all/C3",
        "full_all/C4",
    ]
    assert len(set(data.by_name("full_all/C3").values())) == 1
