"""ABL-G — garbage-collection delay (γ) ablation (paper §4.4).

The paper holds intermediate copies for γ = 6 minutes past the item's
latest deadline to provide fault-tolerance headroom, at the cost of
storage pressure.  This ablation sweeps γ and measures the achieved
weighted sum: small γ frees storage sooner (never hurts the static
schedule), large γ can block staging on storage-constrained machines.
"""

import dataclasses

from repro.core import units
from repro.experiments.runner import run_pair
from repro.experiments.tables import render_table
from repro.experiments.aggregate import Aggregate


GC_DELAYS = (0.0, units.minutes(6), units.minutes(30), units.hours(2))


def _with_gc(scenario, gc_delay):
    return dataclasses.replace(scenario, gc_delay=gc_delay)


def test_gc_delay_ablation(benchmark, scale, scenarios, artifact_writer):
    sample = scenarios[: min(5, len(scenarios))]

    def sweep():
        results = {}
        for gc_delay in GC_DELAYS:
            sums = [
                run_pair(
                    _with_gc(scenario, gc_delay), "full_one", "C4", 2.0
                ).weighted_sum
                for scenario in sample
            ]
            results[gc_delay] = Aggregate.of(sums)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            units.format_time(gc_delay),
            f"{aggregate.mean:.1f}",
            f"{aggregate.minimum:.1f}",
            f"{aggregate.maximum:.1f}",
        ]
        for gc_delay, aggregate in results.items()
    ]
    text = render_table(
        ["gamma", "mean", "min", "max"],
        rows,
        title=(
            f"ABL-G: gc-delay sweep, full_one/C4 @ log10(E-U)=2, "
            f"{len(sample)} cases"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_gc_delay", text)

    # Holding copies longer can only constrain the static schedule, so γ=0
    # should do at least as well as the largest γ up to greedy anomalies
    # (the heuristic is not monotone in its constraint set).
    assert results[GC_DELAYS[0]].mean >= 0.98 * results[GC_DELAYS[-1]].mean
