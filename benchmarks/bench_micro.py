"""MICRO — engineering micro-benchmarks of the hot code paths.

These are conventional pytest-benchmark timings (many rounds) of the three
operations that dominate scheduling cost: the time-dependent Dijkstra
query, capacity-timeline reservations, and scenario generation.  They
track performance regressions rather than paper results.
"""

import pytest

from repro.core.intervals import Interval, IntervalSet
from repro.core.state import NetworkState
from repro.core.timeline import CapacityTimeline
from repro.heuristics.registry import make_heuristic
from repro.routing.dijkstra import compute_shortest_path_tree
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator


@pytest.fixture(scope="module")
def reduced_scenario():
    return ScenarioGenerator(GeneratorConfig.reduced()).generate(0)


def test_dijkstra_single_item(benchmark, reduced_scenario):
    state = NetworkState(reduced_scenario)
    item_id = reduced_scenario.requested_item_ids()[0]
    tree = benchmark(compute_shortest_path_tree, state, item_id)
    assert tree.seed_machines()


def test_dijkstra_all_items(benchmark, reduced_scenario):
    state = NetworkState(reduced_scenario)
    items = reduced_scenario.requested_item_ids()

    def plan_all():
        return [
            compute_shortest_path_tree(state, item_id) for item_id in items
        ]

    trees = benchmark(plan_all)
    assert len(trees) == len(items)


def test_timeline_reserve_and_query(benchmark):
    def exercise():
        timeline = CapacityTimeline(1_000_000.0)
        for k in range(200):
            start = float((k * 37) % 1000)
            timeline.reserve(100.0, Interval(start, start + 50.0))
        total = 0.0
        for k in range(200):
            total += timeline.min_free(Interval(float(k), float(k + 60)))
        return total

    assert benchmark(exercise) >= 0.0


def test_dijkstra_reference_kernel(benchmark, reduced_scenario):
    """The object-walking loop, for comparison against the CSR kernel
    timed by :func:`test_dijkstra_single_item` (compiled is the default)."""
    state = NetworkState(reduced_scenario)
    item_id = reduced_scenario.requested_item_ids()[0]
    tree = benchmark(
        compute_shortest_path_tree, state, item_id, use_compiled=False
    )
    assert tree.seed_machines()


def _earliest_fit_probe(busy, window, count):
    total = 0.0
    for k in range(count):
        start = busy.first_fit(7.0, window.start, window.end, float(k * 3))
        if start is not None:
            total += start
    return total


def test_earliest_fit_dense(benchmark):
    """Rejection-heavy probing of a set with many short busy intervals."""
    busy = IntervalSet(
        Interval(float(k * 10), float(k * 10 + 8)) for k in range(100)
    )
    window = Interval(0.0, 1000.0)
    assert benchmark(_earliest_fit_probe, busy, window, 200) >= 0.0


def test_earliest_fit_sparse(benchmark):
    """Mostly-free link: probes should return at the first gap."""
    busy = IntervalSet(
        Interval(float(k * 200), float(k * 200 + 5)) for k in range(5)
    )
    window = Interval(0.0, 1000.0)
    assert benchmark(_earliest_fit_probe, busy, window, 200) >= 0.0


def test_min_free_span_probe(benchmark):
    """The storage feasibility probe of ``earliest_transfer``."""
    timeline = CapacityTimeline(1_000_000.0)
    for k in range(200):
        start = float((k * 37) % 1000)
        timeline.reserve(100.0, Interval(start, start + 50.0))

    def probe():
        total = 0.0
        for k in range(400):
            total += timeline.min_free_span(float(k), float(k + 60))
        return total

    assert benchmark(probe) >= 0.0


def test_scenario_generation(benchmark):
    generator = ScenarioGenerator(GeneratorConfig.reduced())
    scenario = benchmark(generator.generate, 42)
    assert scenario.network.is_strongly_connected()


def test_full_one_c4_single_case(benchmark, reduced_scenario):
    def run():
        return make_heuristic("full_one", "C4", 0.0).run(reduced_scenario)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.schedule.step_count > 0
