"""TAB-MM — per-case min/mean/max of the heuristics with C4.

Regenerates the companion-TR detail the paper references in §5.4: "the
minimum and maximum values for the performance of these heuristics over
the 40 individual test cases with Cost4".
"""

from repro.experiments.figures import figure2
from repro.experiments.tables import render_minmax


def test_minmax_spread(benchmark, scale, scenarios, artifact_writer, executor):
    data = benchmark.pedantic(
        figure2,
        args=(scenarios, scale.log_ratios),
        kwargs={"executor": executor},
        rounds=1,
        iterations=1,
    )
    label = "2" if "2" in data.x_labels else data.x_labels[len(data.x_labels) // 2]
    text = render_minmax(data, label)
    print("\n" + text)
    artifact_writer("tab_minmax", text)

    for name in ("partial/C4", "full_one/C4", "full_all/C4"):
        aggregate = data.by_name(name).point(label)
        assert aggregate.minimum <= aggregate.mean <= aggregate.maximum
        assert aggregate.count == scale.cases
