"""ABL-O — optimality gap of the heuristics on tiny instances.

The paper evaluates its heuristics only against bounds because true
exhaustive search is intractable at §5.3 scale (§5.1).  On *tiny*
instances the bounded exhaustive search (exact over the valid-step policy
class) is affordable; this benchmark measures how much of the exact-best
value each heuristic/criterion pair captures — quantifying the paper's
"near-optimal" claim directly instead of via bounds.
"""

from repro.core.evaluation import evaluate_schedule
from repro.exhaustive.search import ExhaustiveSearch, SearchLimits
from repro.experiments.tables import render_table
from repro.heuristics.registry import make_heuristic
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator

PAIRS = (
    ("partial", "C4"),
    ("full_one", "C4"),
    ("full_all", "C4"),
    ("full_one", "C3"),
)


def test_optimality_gap(benchmark, scale, artifact_writer):
    cases = 6 if scale.name == "ci" else 15
    config = GeneratorConfig(
        machines=(4, 5),
        out_degree=(1, 2),
        requests_per_machine=(2, 3),
        sources_per_item=(1, 1),
        destinations_per_item=(1, 2),
    )
    scenarios = ScenarioGenerator(config).generate_suite(
        cases, base_seed=4000
    )

    def study():
        exact_values = []
        complete_count = 0
        captured = {pair: [] for pair in PAIRS}
        for scenario in scenarios:
            exact = ExhaustiveSearch(
                SearchLimits(max_expansions=60_000, time_limit_seconds=20.0)
            ).solve(scenario)
            if not exact.complete or exact.weighted_sum == 0.0:
                continue
            complete_count += 1
            exact_values.append(exact.weighted_sum)
            for pair in PAIRS:
                heuristic, criterion = pair
                run = make_heuristic(heuristic, criterion, 2.0).run(scenario)
                value = evaluate_schedule(
                    scenario, run.schedule
                ).weighted_sum
                captured[pair].append(value / exact.weighted_sum)
        return exact_values, complete_count, captured

    exact_values, complete_count, captured = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    rows = []
    for pair in PAIRS:
        ratios = captured[pair]
        if not ratios:
            continue
        rows.append(
            [
                f"{pair[0]}/{pair[1]}",
                f"{sum(ratios) / len(ratios):.4f}",
                f"{min(ratios):.4f}",
                f"{sum(1 for r in ratios if r >= 1.0 - 1e-9)}/{len(ratios)}",
            ]
        )
    text = render_table(
        ["pair", "mean captured", "worst captured", "exact-matched"],
        rows,
        title=(
            f"ABL-O: fraction of exact-best value captured, "
            f"{complete_count} complete tiny cases"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_optimality_gap", text)

    assert complete_count >= 3
    for pair in PAIRS:
        for ratio in captured[pair]:
            assert ratio <= 1.0 + 1e-9  # exhaustive dominates by construction
