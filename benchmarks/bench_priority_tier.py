"""TAB-PT — §5.4 heuristic versus the simplified priority-tier scheduler.

Regenerates the paper's prose comparison: a cost-guided scheme that
schedules all high-priority requests before any medium, and all medium
before any low, loses to the heuristic/criterion combinations on the
weighted-priority measure.
"""

from repro.experiments.studies import priority_tier_comparison
from repro.experiments.tables import render_table


def test_priority_tier_comparison(benchmark, scale, scenarios, artifact_writer):
    comparison = benchmark.pedantic(
        priority_tier_comparison,
        args=(scenarios,),
        kwargs={"heuristic": "full_one", "criterion": "C4", "weights": 2.0},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            comparison.scheduler,
            f"{comparison.heuristic_weighted_sum:.1f}",
            f"{comparison.heuristic_satisfied_by_priority[2]:.2f}",
            f"{comparison.heuristic_satisfied_by_priority[1]:.2f}",
            f"{comparison.heuristic_satisfied_by_priority[0]:.2f}",
        ],
        [
            "priority_tier",
            f"{comparison.tier_weighted_sum:.1f}",
            f"{comparison.tier_satisfied_by_priority[2]:.2f}",
            f"{comparison.tier_satisfied_by_priority[1]:.2f}",
            f"{comparison.tier_satisfied_by_priority[0]:.2f}",
        ],
    ]
    text = render_table(
        ["scheduler", "weighted-sum", "high", "medium", "low"],
        rows,
        title=(
            f"TAB-PT: cost-driven vs tiered scheduling @ log10(E-U)=2, "
            f"{comparison.cases} cases "
            f"(wins={comparison.wins}, ties={comparison.ties})"
        ),
    )
    print("\n" + text)
    artifact_writer("tab_priority_tier", text)

    # The paper's claim — the heuristic beats the tiered scheme — belongs
    # to the §5.3 congestion regime (see benchmarks/paper_load_tier.py and
    # EXPERIMENTS.md).  At lighter loads the two are nearly tied and the
    # tier scheme can edge ahead by a fraction of a percent, so the scale-
    # independent assertion is "comparable or better" within 1.5%.
    assert (
        comparison.heuristic_weighted_sum
        >= 0.985 * comparison.tier_weighted_sum
    )
