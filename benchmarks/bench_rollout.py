"""ABL-R — rollout (one-step lookahead) over the greedy heuristics.

Quantifies the headroom the myopic cost criteria leave on the table: the
rollout scheduler simulates each of the top-k candidate steps to
completion with the greedy base heuristic and commits to the best — a
sequential-improvement policy that never scores below its base.  The gap
between rollout and base, and rollout's cost multiplier, are both
reported.
"""

from repro.core.evaluation import evaluate_schedule
from repro.experiments.aggregate import Aggregate
from repro.experiments.tables import render_table
from repro.heuristics.registry import make_heuristic
from repro.heuristics.rollout import RolloutScheduler
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator


def test_rollout_improvement(benchmark, scale, artifact_writer):
    cases = 4 if scale.name == "ci" else 8
    config = GeneratorConfig(
        machines=(6, 7),
        out_degree=(2, 3),
        requests_per_machine=(3, 5),
    )
    scenarios = ScenarioGenerator(config).generate_suite(
        cases, base_seed=6000
    )

    def study():
        base_values, rollout_values = [], []
        base_seconds, rollout_seconds = [], []
        for scenario in scenarios:
            base = make_heuristic("full_one", "C4", 2.0).run(scenario)
            base_values.append(
                evaluate_schedule(scenario, base.schedule).weighted_sum
            )
            base_seconds.append(base.stats.elapsed_seconds)
            rollout = RolloutScheduler(
                "full_one", "C4", 2.0, beam_width=3
            ).run(scenario)
            rollout_values.append(
                evaluate_schedule(scenario, rollout.schedule).weighted_sum
            )
            rollout_seconds.append(rollout.stats.elapsed_seconds)
        return (
            Aggregate.of(base_values),
            Aggregate.of(rollout_values),
            Aggregate.of(base_seconds),
            Aggregate.of(rollout_seconds),
        )

    base, rollout, base_time, rollout_time = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    multiplier = rollout_time.mean / max(base_time.mean, 1e-9)
    text = render_table(
        ["scheduler", "mean weighted sum", "mean seconds"],
        [
            ["full_one/C4 (greedy)", f"{base.mean:.1f}",
             f"{base_time.mean:.3f}"],
            ["rollout(full_one/C4, k=3)", f"{rollout.mean:.1f}",
             f"{rollout_time.mean:.3f}"],
        ],
        title=(
            f"ABL-R: rollout vs greedy, {cases} cases — lookahead costs "
            f"{multiplier:.0f}x the time"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_rollout", text)

    # Sequential improvement: rollout never scores below its base.
    assert rollout.mean >= base.mean - 1e-9