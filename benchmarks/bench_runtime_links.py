"""TAB-RT — §5.4 execution time and links traversed, all eleven pairs.

Regenerates the companion-TR table the paper references: per
heuristic/criterion pair, the mean scheduling wall time, the mean number
of Dijkstra executions, and the mean number of links traversed per
satisfied request.

Expected shape (paper): full_all needs the fewest Dijkstra executions,
partial the most; links-traversed is small (a few hops) for all pairs.
"""

from repro.experiments.studies import runtime_study
from repro.experiments.tables import render_table


def test_runtime_and_links(benchmark, scale, scenarios, artifact_writer):
    rows_data = benchmark.pedantic(
        runtime_study,
        args=(scenarios,),
        kwargs={"weights": 2.0},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            row.scheduler,
            f"{row.elapsed.mean:.3f}",
            f"{row.dijkstra_runs.mean:.1f}",
            f"{row.steps.mean:.1f}",
            f"{row.average_hops.mean:.2f}",
        ]
        for row in rows_data
    ]
    text = render_table(
        ["pair", "time-s", "dijkstra", "steps", "hops/delivery"],
        rows,
        title=(
            f"TAB-RT: runtime and links traversed @ log10(E-U)=2, "
            f"{scale.cases} cases"
        ),
    )
    print("\n" + text)
    artifact_writer("tab_runtime_links", text)

    by_pair = {row.scheduler: row for row in rows_data}
    # The paper's design intent: full_all needs no more Dijkstra runs than
    # the other heuristics under the same criterion.
    assert (
        by_pair["full_all/C4"].dijkstra_runs.mean
        <= by_pair["partial/C4"].dijkstra_runs.mean
    )
    for row in rows_data:
        assert row.average_hops.mean >= 0.0
