"""ABL-S — storage-pressure sweep (the paper's §1 "limited storage space").

At the §5.3 capacity range (10 MB–20 GB vs items of at most 100 MB),
storage rarely binds; this ablation shrinks machine capacities until the
``Cap[i](t)`` machinery becomes the bottleneck and measures the achieved
value and the garbage-collection relief: with tight storage, staging must
wait for the γ-driven reclamation of earlier copies.
"""

from repro.core import units
from repro.experiments.aggregate import Aggregate
from repro.experiments.runner import run_pair
from repro.experiments.tables import render_table
from repro.workload.generator import ScenarioGenerator

#: Capacity ranges from paper-like (storage-rich) down to starved.
CAPACITY_RANGES = (
    ("paper (10MB-20GB)", (units.megabytes(10), units.gigabytes(20))),
    ("tight (50-500MB)", (units.megabytes(50), units.megabytes(500))),
    ("starved (20-120MB)", (units.megabytes(20), units.megabytes(120))),
)


def test_storage_pressure(benchmark, scale, artifact_writer):
    cases = 4 if scale.name == "ci" else 10

    def sweep():
        rows = []
        for label, capacity_range in CAPACITY_RANGES:
            config = scale.config.replace(capacity_bytes=capacity_range)
            generator = ScenarioGenerator(config)
            sums, rates = [], []
            for offset in range(cases):
                scenario = generator.generate(scale.base_seed + offset)
                record = run_pair(scenario, "full_one", "C4", 2.0)
                sums.append(record.weighted_sum)
                rates.append(
                    record.satisfied_count / scenario.request_count
                    if scenario.request_count
                    else 0.0
                )
            rows.append((label, Aggregate.of(sums), Aggregate.of(rates)))
        return rows

    rows_data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            label,
            f"{sums.mean:.1f}",
            f"{rates.mean:.3f}",
        ]
        for label, sums, rates in rows_data
    ]
    text = render_table(
        ["capacity range", "weighted-sum", "satisfy-rate"],
        rows,
        title=(
            f"ABL-S: storage-pressure sweep, full_one/C4 @ log10(E-U)=2, "
            f"{cases} cases per range"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_storage", text)

    # Starving storage can only reduce achievable value (same seeds; only
    # capacities shrink) — allow a small greedy-anomaly tolerance.
    rich = rows_data[0][1].mean
    starved = rows_data[-1][1].mean
    assert starved <= rich * 1.02 + 1e-9