"""ABL-T — shortest-path-tree cache ablation (DESIGN.md decision 10).

The paper re-runs Dijkstra for every item each iteration and explicitly
declines to optimize (§4.5); this library caches trees and recomputes only
on resource invalidation.  The ablation verifies both claims behind that
decision: the cached engine produces the *identical schedule*, and it does
so with strictly fewer Dijkstra executions (and less wall time).
"""

from repro.heuristics.registry import make_heuristic
from repro.experiments.tables import render_table


def test_tree_cache_ablation(benchmark, scale, scenarios, artifact_writer):
    sample = scenarios[: min(3, len(scenarios))]

    def run_both():
        rows = []
        for scenario in sample:
            cached = make_heuristic(
                "full_one", "C4", 2.0, use_tree_cache=True
            ).run(scenario)
            uncached = make_heuristic(
                "full_one", "C4", 2.0, use_tree_cache=False
            ).run(scenario)
            rows.append((scenario.name, cached, uncached))
        return rows

    rows_data = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for name, cached, uncached in rows_data:
        rows.append(
            [
                name,
                f"{cached.stats.dijkstra_runs}",
                f"{uncached.stats.dijkstra_runs}",
                f"{cached.stats.elapsed_seconds:.3f}",
                f"{uncached.stats.elapsed_seconds:.3f}",
                f"{uncached.stats.elapsed_seconds / max(cached.stats.elapsed_seconds, 1e-9):.1f}x",
            ]
        )
    text = render_table(
        ["case", "dij(cache)", "dij(nocache)", "t-cache", "t-nocache", "speedup"],
        rows,
        title="ABL-T: tree-cache ablation, full_one/C4 @ log10(E-U)=2",
    )
    print("\n" + text)
    artifact_writer("abl_tree_cache", text)

    for __, cached, uncached in rows_data:
        # Identical decisions...
        assert [
            (s.item_id, s.link_id, s.start, s.end)
            for s in cached.schedule.steps
        ] == [
            (s.item_id, s.link_id, s.start, s.end)
            for s in uncached.schedule.steps
        ]
        # ...with strictly fewer Dijkstra executions.
        assert cached.stats.dijkstra_runs < uncached.stats.dijkstra_runs
