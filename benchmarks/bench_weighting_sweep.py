"""ABL-W — extended priority-weighting sweep (the paper's §6 future work).

Evaluates the best pair under five weighting families (flat, linear, the
paper's two, and an extreme scheme) on identical cases.  Expected shape:
steeper weightings satisfy a larger fraction of the highest-priority
requests (the cross-weighting comparable metric).
"""

from repro.experiments.congestion import EXTENDED_WEIGHTINGS, weighting_sweep
from repro.experiments.tables import render_table


def test_weighting_sweep(benchmark, scale, artifact_writer):
    cases = 3 if scale.name == "ci" else 10
    points = benchmark.pedantic(
        weighting_sweep,
        kwargs={
            "weightings": EXTENDED_WEIGHTINGS,
            "cases": cases,
            "base_config": scale.config,
            "heuristic": "full_one",
            "criterion": "C4",
            "weights": 2.0,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            point.weighting,
            f"{point.weighted_sum.mean:.1f}",
            f"{point.satisfied_by_priority[2]:.2f}",
            f"{point.satisfied_by_priority[1]:.2f}",
            f"{point.satisfied_by_priority[0]:.2f}",
            f"{point.high_priority_rate:.3f}",
        ]
        for point in points
    ]
    text = render_table(
        ["weighting", "weighted-sum", "high", "medium", "low", "high-rate"],
        rows,
        title=(
            f"ABL-W: weighting families, full_one/C4 @ log10(E-U)=2, "
            f"{cases} cases"
        ),
    )
    print("\n" + text)
    artifact_writer("abl_weightings", text)

    by_name = {point.weighting: point for point in points}
    # The steepest scheme must serve highs at least as well as the flat one.
    assert (
        by_name["extreme"].high_priority_rate
        >= by_name["flat"].high_priority_rate - 0.05
    )
