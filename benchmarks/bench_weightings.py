"""TAB-W — §5.4 weighting-scheme comparison: (1,5,10) versus (1,10,100).

Regenerates the paper's prose claim (full table in the companion TR):
"the 1, 10, 100 weighting satisfies more higher priority requests and
fewer medium and low priority requests than the 1, 5, 10 weighting".

The same test cases (same seeds) are regenerated under each weighting and
scheduled with the paper's best pair (full_one/C4).
"""

from repro.experiments.studies import weighting_comparison
from repro.experiments.tables import render_table
from repro.workload.generator import ScenarioGenerator


def test_weighting_comparison(benchmark, scale, artifact_writer):
    generator = ScenarioGenerator(scale.config)
    seeds = list(
        range(scale.base_seed, scale.base_seed + scale.cases)
    )
    outcomes = benchmark.pedantic(
        weighting_comparison,
        args=(generator, seeds),
        kwargs={"heuristic": "full_one", "criterion": "C4", "weights": 2.0},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            outcome.weighting,
            f"{outcome.mean_weighted_sum:.1f}",
            f"{outcome.mean_satisfied_by_priority[2]:.2f}",
            f"{outcome.mean_satisfied_by_priority[1]:.2f}",
            f"{outcome.mean_satisfied_by_priority[0]:.2f}",
            f"{sum(outcome.mean_total_by_priority):.0f}",
        ]
        for outcome in outcomes
    ]
    text = render_table(
        ["weighting", "weighted-sum", "high", "medium", "low", "requests"],
        rows,
        title=(
            "TAB-W: satisfied requests per priority class, full_one/C4 @ "
            f"log10(E-U)=2, {scale.cases} cases"
        ),
    )
    print("\n" + text)
    artifact_writer("tab_weightings", text)

    by_name = {outcome.weighting: outcome for outcome in outcomes}
    light, heavy = by_name["1-5-10"], by_name["1-10-100"]
    # Paper's claim: the steeper weighting never satisfies fewer
    # high-priority requests.
    assert (
        heavy.mean_satisfied_by_priority[2]
        >= light.mean_satisfied_by_priority[2]
    )
