"""Shared fixtures for the benchmark harness.

Every benchmark honours the ``REPRO_SCALE`` environment variable (``ci`` |
``full`` | ``paper``; see :mod:`repro.experiments.scale`), prints its
reproduced figure/table to stdout (run pytest with ``-s`` to watch live),
and writes the same text under ``benchmarks/results/<scale>/`` so
EXPERIMENTS.md can reference the exact artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.scale import current_scale
from repro.workload.generator import ScenarioGenerator

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale (cases, generator config, E-U grid)."""
    return current_scale()


@pytest.fixture(scope="session")
def scenarios(scale):
    """The shared test cases — the paper's "same 40 randomly generated
    test cases" (fewer at ci scale)."""
    generator = ScenarioGenerator(scale.config)
    return generator.generate_suite(scale.cases, scale.base_seed)


@pytest.fixture(scope="session")
def artifact_writer(scale):
    """Persist a rendered figure/table under ``benchmarks/results``."""

    def write(name: str, text: str) -> Path:
        directory = RESULTS_DIR / scale.name
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return write
