"""Shared fixtures for the benchmark harness.

Every benchmark honours the ``REPRO_SCALE`` environment variable (``ci`` |
``full`` | ``paper``; see :mod:`repro.experiments.scale`), prints its
reproduced figure/table to stdout (run pytest with ``-s`` to watch live),
and writes the same text under ``benchmarks/results/<scale>/`` so
EXPERIMENTS.md can reference the exact artifacts.

The figure benchmarks additionally honour ``REPRO_WORKERS`` (process
fan-out of the sweep grid; default 1, the serial path),
``REPRO_CACHE_DIR`` (persistent run-record cache, so repeated benchmark
runs replay unchanged cells), and ``REPRO_PROFILE`` (any non-empty value
enables per-cell span profiling; the merged per-scheduler profile is
written under ``benchmarks/results/<scale>/``) through a shared
:class:`~repro.experiments.executor.SweepExecutor` — output is
byte-identical at any worker count, profiled or not.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.executor import SweepExecutor
from repro.experiments.scale import current_scale
from repro.serialization import profile_to_dict
from repro.workload.generator import ScenarioGenerator

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The active experiment scale (cases, generator config, E-U grid)."""
    return current_scale()


@pytest.fixture(scope="session")
def scenarios(scale):
    """The shared test cases — the paper's "same 40 randomly generated
    test cases" (fewer at ci scale)."""
    generator = ScenarioGenerator(scale.config)
    return generator.generate_suite(scale.cases, scale.base_seed)


@pytest.fixture(scope="session")
def executor(scale):
    """The shared sweep executor (``REPRO_WORKERS`` / ``REPRO_CACHE_DIR``
    / ``REPRO_PROFILE``)."""
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    profile = bool(os.environ.get("REPRO_PROFILE"))
    with SweepExecutor(
        workers=workers, cache_dir=cache_dir, profile=profile
    ) as instance:
        yield instance
    if profile and instance.profile_by_scheduler:
        directory = RESULTS_DIR / scale.name
        directory.mkdir(parents=True, exist_ok=True)
        document = {
            scheduler: profile_to_dict(merged)
            for scheduler, merged in sorted(
                instance.profile_by_scheduler.items()
            )
        }
        (directory / "profiles.json").write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@pytest.fixture(scope="session")
def artifact_writer(scale):
    """Persist a rendered figure/table under ``benchmarks/results``."""

    def write(name: str, text: str) -> Path:
        directory = RESULTS_DIR / scale.name
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return write
