#!/usr/bin/env python3
"""C1-vs-C4 under the heavier reading of the §5.3 request count.

The paper sets "the total number of data requests [to] 20 to 40 times the
number of machines".  DESIGN.md decision 5 reads that as (item,
destination) pairs; an alternative reading counts *requested data items*,
tripling the destination-request volume (each item has 1–5 destinations).
Since the measured criterion ranking (C1 slightly above C4) deviates from
the paper's (C4 best), this script tests whether the heavier reading —
with its much stronger contention — closes or flips the gap.

Run:  python benchmarks/paper_load_heavy.py [cases] [out_path]
"""

import sys

from repro.core.evaluation import evaluate_schedule
from repro.baselines.bounds import possible_satisfy, upper_bound
from repro.experiments.tables import render_table
from repro.heuristics.registry import make_heuristic
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator


def main() -> None:
    cases = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    out_path = sys.argv[2] if len(sys.argv) > 2 else None
    # ~3x the §5.3 destination-request volume: the "items" reading.
    config = GeneratorConfig.paper().replace(
        requests_per_machine=(60, 120)
    )
    generator = ScenarioGenerator(config)
    scenarios = generator.generate_suite(cases, base_seed=0)

    rows = []
    for criterion in ("C1", "C3", "C4"):
        ratios = (2.0,) if criterion == "C3" else (2.0, 3.0)
        best = float("-inf")
        best_ratio = None
        for ratio in ratios:
            total = 0.0
            for scenario in scenarios:
                run = make_heuristic("full_one", criterion, ratio).run(
                    scenario
                )
                total += evaluate_schedule(
                    scenario, run.schedule
                ).weighted_sum
            mean = total / cases
            if mean > best:
                best, best_ratio = mean, ratio
        rows.append([criterion, f"{best:.1f}", f"{best_ratio:g}"])
    table = render_table(
        ["criterion", "best mean weighted sum", "at log10(E-U)"],
        rows,
        title=(
            f"heavy-load (60-120 req/machine) criterion ranking, "
            f"full_one, {cases} cases"
        ),
    )
    oversub = (
        f"mean possible/upper: "
        f"{sum(possible_satisfy(s) / upper_bound(s) for s in scenarios) / cases:.3f}"
    )
    print(table + "\n" + oversub, flush=True)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(table + "\n" + oversub + "\n")


if __name__ == "__main__":
    main()
