#!/usr/bin/env python3
"""Criterion ranking at the paper's full request load (not a pytest bench).

The reduced-load figures flip the paper's C4-over-C1 ranking; the paper's
regime is 20–40 requests per machine.  This script measures the criterion
ranking for the full_one and partial heuristics at the §5.3 load on a
handful of cases, at the informative E-U points, to check whether heavier
congestion restores the paper's ordering.

Run (slow, ~minutes per case):
    python benchmarks/paper_load_ranking.py [cases] [out_path]
"""

import sys

from repro.core.evaluation import evaluate_schedule
from repro.baselines.bounds import possible_satisfy, upper_bound
from repro.experiments.tables import render_table
from repro.heuristics.registry import make_heuristic
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator

RATIOS = (0.0, 1.0, 2.0, 3.0)
CRITERIA = ("C1", "C2", "C3", "C4")


def main() -> None:
    cases = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    out_path = sys.argv[2] if len(sys.argv) > 2 else None
    generator = ScenarioGenerator(GeneratorConfig.paper())
    scenarios = generator.generate_suite(cases, base_seed=0)

    lines = []
    for heuristic in ("full_one", "partial"):
        totals = {}
        for criterion in CRITERIA:
            ratios = (RATIOS[0],) if criterion == "C3" else RATIOS
            for ratio in ratios:
                value = 0.0
                for scenario in scenarios:
                    run = make_heuristic(heuristic, criterion, ratio).run(
                        scenario
                    )
                    value += evaluate_schedule(
                        scenario, run.schedule
                    ).weighted_sum
                totals[(criterion, ratio)] = value / cases
        rows = []
        for criterion in CRITERIA:
            best_ratio, best_value = max(
                (
                    (ratio, value)
                    for (crit, ratio), value in totals.items()
                    if crit == criterion
                ),
                key=lambda pair: pair[1],
            )
            rows.append(
                [criterion, f"{best_value:.1f}", f"{best_ratio:g}"]
            )
        table = render_table(
            ["criterion", "best mean weighted sum", "at log10(E-U)"],
            rows,
            title=(
                f"paper-load criterion ranking, {heuristic}, "
                f"{cases} cases @ 20-40 req/machine"
            ),
        )
        lines.append(table)
        print(table + "\n", flush=True)

    bounds = [
        f"mean possible_satisfy: "
        f"{sum(possible_satisfy(s) for s in scenarios) / cases:.1f}",
        f"mean upper_bound:      "
        f"{sum(upper_bound(s) for s in scenarios) / cases:.1f}",
    ]
    lines.extend(bounds)
    print("\n".join(bounds))
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(lines) + "\n")


if __name__ == "__main__":
    main()
