#!/usr/bin/env python3
"""Heuristic vs priority-tier scheme at the paper's full request load.

At the reduced load recorded in EXPERIMENTS.md the simplified tier scheme
slightly outperforms full_one/C4 — contention is too light for tier
rigidity to hurt.  The paper's claim ("the heuristic/cost criterion
combinations performed better than this simplified scheduling scheme in
all cases") belongs to the §5.3 regime of 20–40 requests per machine;
this script measures the comparison there.

Run:  python benchmarks/paper_load_tier.py [cases] [out_path]
"""

import sys

from repro.experiments.studies import priority_tier_comparison
from repro.experiments.tables import render_table
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator


def main() -> None:
    cases = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    out_path = sys.argv[2] if len(sys.argv) > 2 else None
    scenarios = ScenarioGenerator(GeneratorConfig.paper()).generate_suite(
        cases, base_seed=0
    )
    rows = []
    for ratio in (1.0, 2.0, 3.0):
        comparison = priority_tier_comparison(
            scenarios, heuristic="full_one", criterion="C4", weights=ratio
        )
        rows.append(
            [
                f"log10(E-U)={ratio:g}",
                f"{comparison.heuristic_weighted_sum:.1f}",
                f"{comparison.tier_weighted_sum:.1f}",
                f"{comparison.heuristic_satisfied_by_priority[2]:.2f}",
                f"{comparison.tier_satisfied_by_priority[2]:.2f}",
                f"{comparison.wins}/{comparison.ties}/{comparison.cases}",
            ]
        )
    table = render_table(
        [
            "E-U point",
            "heuristic ws",
            "tier ws",
            "heur high",
            "tier high",
            "win/tie/n",
        ],
        rows,
        title=(
            f"paper-load tier comparison, full_one/C4, {cases} cases "
            f"@ 20-40 req/machine"
        ),
    )
    print(table, flush=True)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            handle.write(table + "\n")


if __name__ == "__main__":
    main()
