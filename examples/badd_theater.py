#!/usr/bin/env python3
"""A hand-built theater data-staging scenario from the paper's motivation.

The paper's introduction describes a warfighter in a remote location who
needs terrain maps, enemy locations, and weather predictions staged from
rear data centers over an intermittently available satellite network.
This example models exactly that situation with explicit machines, links,
windows, and priorities — no random generation — and shows how each
heuristic schedules it and who gets their data by the deadline.

Run:  python examples/badd_theater.py
"""

from repro import (
    ScheduleValidator,
    evaluate_schedule,
    make_heuristic,
    possible_satisfy,
    upper_bound,
)
from repro.analysis import render_gantt, schedule_stats
from repro.core import units
from repro.workload import badd_theater


def main() -> None:
    scenario = badd_theater()
    print(f"{scenario}\n")
    print(f"upper_bound:      {upper_bound(scenario):.0f}")
    print(f"possible_satisfy: {possible_satisfy(scenario):.0f}\n")

    names = {
        request.request_id: (
            scenario.item(request.item_id).name,
            scenario.network.machine(request.destination).name,
        )
        for request in scenario.requests
    }
    best_schedule = None
    for heuristic in ("partial", "full_one", "full_all"):
        scheduler = make_heuristic(heuristic, criterion="C4", weights=2.0)
        result = scheduler.run(scenario)
        ScheduleValidator(scenario).validate(result.schedule)
        effect = evaluate_schedule(scenario, result.schedule)
        print(f"== {scheduler.label()}: {effect}")
        for request in scenario.requests:
            delivery = result.schedule.delivery(request.request_id)
            item, destination = names[request.request_id]
            if delivery is None:
                status = "NOT satisfied"
            else:
                status = (
                    f"arrives {units.format_time(delivery.arrival)} "
                    f"({delivery.hops} hops, deadline "
                    f"{units.format_time(request.deadline)})"
                )
            print(f"   {item:18s} -> {destination:12s} {status}")
        print()
        best_schedule = result.schedule

    stats = schedule_stats(scenario, best_schedule)
    print(
        f"full_all stats: {stats.steps} transfers, "
        f"{units.format_size(stats.bytes_transferred)} moved, "
        f"peak storage {100 * stats.peak_storage_fraction:.1f}% of the "
        f"tightest machine, busiest link "
        f"{100 * stats.max_link_utilization:.1f}% occupied"
    )
    print("\nlink occupancy (first 90 minutes):")
    print(
        render_gantt(
            scenario, best_schedule, width=72, until=units.minutes(90)
        )
    )


if __name__ == "__main__":
    main()
