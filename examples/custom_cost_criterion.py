#!/usr/bin/env python3
"""Extend the scheduler with a user-defined cost criterion.

The cost-criterion interface (:class:`repro.CostCriterion`) is open: any
function of the per-destination ``Sat``/``Efp``/``Urgency`` terms can drive
the heuristics.  This example registers a "deadline-density" criterion —
the weighted priority per second of remaining slack, summed over the
group — and races it against the paper's C4 on generated scenarios.

Run:  python examples/custom_cost_criterion.py
"""

from repro import (
    CostCriterion,
    GeneratorConfig,
    ScenarioGenerator,
    evaluate_schedule,
    make_heuristic,
    register_criterion,
)
from repro.cost.criteria import CostResult
from repro.cost.terms import most_urgent_satisfiable


@register_criterion
class DeadlineDensity(CostCriterion):
    """Weighted priority per unit of slack, summed over the group.

    Like C3 this is a priority/urgency ratio — but it sums the *density*
    ``Efp / (slack + s0)`` with a softening constant ``s0`` so that one
    near-zero slack cannot dominate the whole sum (the failure mode the
    paper attributes to C3 in §5.4).
    """

    name = "DD"
    #: One minute of softening keeps single tight deadlines from
    #: dominating.
    softening_seconds = 60.0

    def evaluate(self, evaluations, weights):
        selected = most_urgent_satisfiable(evaluations)
        if selected is None:
            return CostResult(cost=float("inf"), selected=None)
        cost = -sum(
            e.effective_priority / (e.slack + self.softening_seconds)
            for e in evaluations
            if e.satisfiable
        )
        return CostResult(cost=cost, selected=selected)


def main() -> None:
    generator = ScenarioGenerator(GeneratorConfig.reduced())
    scenarios = generator.generate_suite(4, base_seed=900)

    print("scenario        C4@2        DD    (weighted priority sums)")
    print("-" * 58)
    totals = {"C4": 0.0, "DD": 0.0}
    for scenario in scenarios:
        row = [scenario.name]
        for criterion in ("C4", "DD"):
            result = make_heuristic(
                "full_one", criterion=criterion, weights=2.0
            ).run(scenario)
            achieved = evaluate_schedule(
                scenario, result.schedule
            ).weighted_sum
            totals[criterion] += achieved
            row.append(f"{achieved:10.1f}")
        print("  ".join(row))
    print("-" * 58)
    print(
        f"totals      {totals['C4']:10.1f}  {totals['DD']:10.1f}   "
        f"(DD/C4 = {totals['DD'] / totals['C4']:.3f})"
    )
    print(
        "\nLike C3, DD needs no E-U tuning; its softened denominator "
        "avoids C3's scaling pathology."
    )


if __name__ == "__main__":
    main()
