#!/usr/bin/env python3
"""Dynamic re-scheduling: ad-hoc requests and copy losses.

The paper solves a static snapshot and points at the dynamic problem as
future work (§6).  The :mod:`repro.dynamic` extension re-runs the static
heuristics at every event: here, requests are revealed only when their
data items first exist, and mid-simulation a forward site loses its copy
of an item it had already received — the driver re-serves it from the
copies still resident in the network (the §4.4 fault-tolerance rationale
for holding intermediate copies).

Run:  python examples/dynamic_staging.py
"""

from repro import (
    CopyLoss,
    DynamicDriver,
    GeneratorConfig,
    ScenarioGenerator,
    reveal_at_item_start,
)
from repro.core import units


def main() -> None:
    scenario = ScenarioGenerator(GeneratorConfig.reduced()).generate(seed=21)
    print(f"scenario: {scenario}\n")

    driver = DynamicDriver(heuristic="partial", criterion="C4", weights=2.0)

    # 1. Clairvoyant run: every request known at t=0.
    clairvoyant = driver.run(scenario, ())
    print(f"clairvoyant (all known at t=0):   {clairvoyant.effect}")

    # 2. Online run: a request becomes known only when its item exists.
    arrivals = reveal_at_item_start(scenario)
    online = driver.run(scenario, arrivals)
    print(f"online (reveal at item start):    {online.effect}")
    ratio = online.effect.weighted_sum / clairvoyant.effect.weighted_sum
    print(f"value of foresight: online achieves {100 * ratio:.1f}% of "
          "the clairvoyant schedule\n")

    # 3. Fault injection: the first three satisfied destinations lose
    #    their copies ten minutes before their deadlines.
    losses = []
    for request_id in online.satisfied_request_ids[:3]:
        request = scenario.request(request_id)
        losses.append(
            CopyLoss(
                time=max(request.deadline - units.minutes(10), 1.0),
                item_id=request.item_id,
                machine=request.destination,
            )
        )
    faulted = driver.run(scenario, list(arrivals) + losses)
    print(f"online + {len(losses)} destination losses: {faulted.effect}")

    recovered = sum(
        1
        for loss in losses
        for request in scenario.requests
        if request.item_id == loss.item_id
        and request.destination == loss.machine
        and faulted.schedule.is_satisfied(request.request_id)
    )
    print(f"re-served after loss: {recovered}/{len(losses)} "
          "(recovery uses copies still held at sources, destinations, "
          "and gamma-retained intermediates)\n")

    print("re-scheduling passes (time, revealed, losses, hops booked):")
    for outcome in faulted.outcomes:
        if not (outcome.revealed or outcome.losses or outcome.hops_booked):
            continue
        print(
            f"  t={units.format_time(outcome.time):>9s}  "
            f"revealed={len(outcome.revealed):3d}  "
            f"losses={len(outcome.losses)}  "
            f"reopened={len(outcome.reopened)}  "
            f"hops={outcome.hops_booked}"
        )


if __name__ == "__main__":
    main()
