#!/usr/bin/env python3
"""Sweep the E-U ratio and watch the criteria respond (paper Figures 3–5).

The §4.8 cost criteria (except C3) weight "effective priority" against
"urgency" through the ratio W_E/W_U.  This example reproduces a miniature
Figure 4: the full path/one destination heuristic under all four criteria
across the ratio grid, on a handful of generated cases.

Run:  python examples/eu_ratio_study.py [cases]
"""

import sys

from repro import GeneratorConfig, ScenarioGenerator
from repro.experiments import heuristic_figure, render_figure, render_minmax


def main() -> None:
    cases = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    ratios = (float("-inf"), -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, float("inf"))

    generator = ScenarioGenerator(GeneratorConfig.reduced())
    scenarios = generator.generate_suite(cases, base_seed=500)
    print(
        f"averaging {cases} random cases "
        f"({scenarios[0].request_count} requests in the first)\n"
    )

    data = heuristic_figure(scenarios, "full_one", ratios)
    print(render_figure(data))

    print()
    print(render_minmax(data, "0"))

    # The paper's qualitative findings, restated from the data:
    best_c4 = max(data.by_name("full_one/C4").values())
    flat_c3 = data.by_name("full_one/C3").values()[0]
    print(
        f"\nC4 at its best ratio: {best_c4:.1f}; "
        f"C3 (ratio-independent): {flat_c3:.1f} "
        f"({100 * flat_c3 / best_c4:.1f}% of C4's best) — in environments "
        "where the right E-U ratio is unknown, C3 is a safe choice (§5.4)."
    )


if __name__ == "__main__":
    main()
