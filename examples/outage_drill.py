#!/usr/bin/env python3
"""Outage drill: losing the satellite downlink mid-campaign.

The theater preset's forward sites hang off a single satellite downlink
(relay -> FOB).  This drill runs the campaign twice — nominal, and with
the downlink failing permanently 15 minutes in — and diffs the outcomes:
which requests survive, which are lost with the link, and how the dynamic
driver re-plans around the failure where a route exists.

Run:  python examples/outage_drill.py
"""

from repro import DynamicDriver, reveal_at_item_start
from repro.analysis import compare_schedules, render_comparison
from repro.core import units
from repro.dynamic import LinkOutage
from repro.workload import badd_theater, describe, render_description

#: The theater preset's satellite downlink (relay -> FOB) physical id.
DOWNLINK_PHYSICAL_ID = 5


def main() -> None:
    scenario = badd_theater()
    print(render_description(describe(scenario)))
    print()

    driver = DynamicDriver(heuristic="partial", criterion="C4", weights=2.0)

    # Requests become known only when their items exist (the fresh intel
    # appears 20 minutes in), so nothing can be pre-staged before then.
    arrivals = list(reveal_at_item_start(scenario))
    nominal = driver.run(scenario, arrivals)
    print(f"nominal (online reveals):  {nominal.effect}")

    # The downlink dies at minute 15 — after the first satellite pass, but
    # before the 20-minute intel even exists.
    outage = LinkOutage(
        time=units.minutes(15), physical_id=DOWNLINK_PHYSICAL_ID
    )
    degraded = driver.run(scenario, arrivals + [outage])
    print(f"downlink lost at 15min:    {degraded.effect}\n")

    comparison = compare_schedules(
        scenario, nominal.schedule, degraded.schedule
    )
    print(render_comparison(comparison, "nominal", "degraded"))
    print()

    names = {
        request.request_id: (
            scenario.item(request.item_id).name,
            scenario.network.machine(request.destination).name,
        )
        for request in scenario.requests
    }
    lost = [rid for rid in comparison.only_first]
    if lost:
        print("lost to the outage:")
        for request_id in lost:
            item, destination = names[request_id]
            print(f"  {item} -> {destination}")
    survived_forward = [
        request_id
        for request_id in comparison.both
        if scenario.request(request_id).destination in (3, 4)
    ]
    print(
        f"\nforward-site deliveries that beat the outage: "
        f"{len(survived_forward)} (staged before the link died — the "
        "pre-positioning the paper's data staging problem is about)"
    )


if __name__ == "__main__":
    main()
