#!/usr/bin/env python3
"""Quickstart: generate a BADD-like scenario, schedule it, inspect results.

Run:  python examples/quickstart.py
"""

from repro import (
    GeneratorConfig,
    ScenarioGenerator,
    ScheduleValidator,
    evaluate_schedule,
    make_heuristic,
    possible_satisfy,
    upper_bound,
)


def main() -> None:
    # 1. Draw a random scenario from the paper's §5.3 distribution
    #    (the "reduced" profile keeps the topology but trims request volume
    #    so this demo runs in under a second).
    generator = ScenarioGenerator(GeneratorConfig.reduced())
    scenario = generator.generate(seed=7)
    print(f"scenario: {scenario}")
    print(
        f"network:  {scenario.network.machine_count} machines, "
        f"{len(scenario.network.physical_links)} physical links, "
        f"{len(scenario.network.virtual_links)} virtual links"
    )

    # 2. Schedule it with the paper's best pair: full path/one destination
    #    driven by Cost4 at log10(W_E/W_U) = 2.
    scheduler = make_heuristic("full_one", criterion="C4", weights=2.0)
    result = scheduler.run(scenario)

    # 3. Every emitted schedule passes the independent feasibility checker.
    ScheduleValidator(scenario).validate(result.schedule)

    # 4. Score it against the §5.2 bounds.
    effect = evaluate_schedule(scenario, result.schedule)
    print(f"\nscheduler: {scheduler.label()}")
    print(f"achieved:  {effect}")
    print(f"bounds:    possible_satisfy={possible_satisfy(scenario):.0f}, "
          f"upper_bound={upper_bound(scenario):.0f}")
    print(
        f"engine:    {result.schedule.step_count} transfers booked, "
        f"{result.stats.dijkstra_runs} Dijkstra runs, "
        f"{result.stats.elapsed_seconds:.2f}s"
    )

    # 5. Peek at the first few communication steps.
    print("\nfirst communication steps:")
    for step in result.schedule.steps[:5]:
        print(f"  {step}")


if __name__ == "__main__":
    main()
