"""datastage — scheduling heuristics for data staging in oversubscribed networks.

A complete, self-contained reproduction of *"Scheduling Heuristics for Data
Requests in an Oversubscribed Network with Priorities and Deadlines"*
(Theys, Tan, Beck, Siegel, Jurczyk — ICDCS 2000): the basic data staging
model, the adapted multiple-source shortest-path routing, the four cost
criteria, the three scheduling heuristics, the §5.2 bounds and baselines,
the §5.3 random workload generator, and the full simulation study harness.

Quickstart::

    from repro import ScenarioGenerator, GeneratorConfig, make_heuristic
    from repro import evaluate_schedule

    scenario = ScenarioGenerator(GeneratorConfig.reduced()).generate(seed=7)
    result = make_heuristic("full_one", "C4", weights=0.0).run(scenario)
    print(evaluate_schedule(scenario, result.schedule))

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the reproduced figures and tables.
"""

from repro.baselines import (
    PriorityTierScheduler,
    RandomDijkstraBaseline,
    SingleDijkstraRandomBaseline,
    possible_satisfy,
    upper_bound,
)
from repro.core import (
    CapacityTimeline,
    CommunicationStep,
    DataItem,
    Delivery,
    Interval,
    IntervalSet,
    Machine,
    Network,
    NetworkState,
    PhysicalLink,
    Priority,
    PriorityWeighting,
    Request,
    Scenario,
    Schedule,
    ScheduleEffect,
    ScheduleValidator,
    SourceLocation,
    TransferPlan,
    VirtualLink,
    WEIGHTING_1_5_10,
    WEIGHTING_1_10_100,
    evaluate_satisfied,
    evaluate_schedule,
)
from repro.cost import (
    Cost1,
    Cost2,
    Cost3,
    Cost4,
    CostCriterion,
    EUWeights,
    get_criterion,
    paper_sweep,
    register_criterion,
)
from repro.dynamic import (
    CopyLoss,
    DynamicDriver,
    DynamicResult,
    RequestArrival,
    reveal_at_item_start,
)
from repro.exhaustive import ExhaustiveSearch, SearchLimits, SearchResult
from repro.errors import (
    CapacityError,
    ConfigurationError,
    DataStagingError,
    InfeasibleTransferError,
    LinkBusyError,
    ModelError,
    ScenarioError,
    SchedulingError,
    ValidationError,
)
from repro.heuristics import (
    FullPathAllDestinationsHeuristic,
    FullPathOneDestinationHeuristic,
    HeuristicResult,
    PartialPathHeuristic,
    StagingHeuristic,
    heuristic_names,
    make_heuristic,
    paper_pairings,
)
from repro.routing import compute_shortest_path_tree
from repro.serialization import (
    load_scenario,
    load_schedule,
    save_scenario,
    save_schedule,
)
from repro.workload import GeneratorConfig, ScenarioGenerator

__version__ = "1.0.0"

__all__ = [
    "CapacityError",
    "CapacityTimeline",
    "CommunicationStep",
    "ConfigurationError",
    "Cost1",
    "Cost2",
    "Cost3",
    "CopyLoss",
    "Cost4",
    "CostCriterion",
    "DataItem",
    "DataStagingError",
    "Delivery",
    "DynamicDriver",
    "DynamicResult",
    "EUWeights",
    "ExhaustiveSearch",
    "FullPathAllDestinationsHeuristic",
    "FullPathOneDestinationHeuristic",
    "GeneratorConfig",
    "HeuristicResult",
    "InfeasibleTransferError",
    "Interval",
    "IntervalSet",
    "LinkBusyError",
    "Machine",
    "ModelError",
    "Network",
    "NetworkState",
    "PartialPathHeuristic",
    "PhysicalLink",
    "Priority",
    "PriorityTierScheduler",
    "PriorityWeighting",
    "RandomDijkstraBaseline",
    "Request",
    "RequestArrival",
    "Scenario",
    "ScenarioError",
    "ScenarioGenerator",
    "Schedule",
    "ScheduleEffect",
    "ScheduleValidator",
    "SchedulingError",
    "SearchLimits",
    "SearchResult",
    "SingleDijkstraRandomBaseline",
    "SourceLocation",
    "StagingHeuristic",
    "TransferPlan",
    "ValidationError",
    "VirtualLink",
    "WEIGHTING_1_5_10",
    "WEIGHTING_1_10_100",
    "compute_shortest_path_tree",
    "evaluate_satisfied",
    "evaluate_schedule",
    "get_criterion",
    "heuristic_names",
    "load_scenario",
    "load_schedule",
    "make_heuristic",
    "paper_pairings",
    "paper_sweep",
    "possible_satisfy",
    "register_criterion",
    "reveal_at_item_start",
    "save_scenario",
    "save_schedule",
    "upper_bound",
]
