"""Post-hoc analysis of schedules: statistics and ASCII visualization."""

from repro.analysis.compare import (
    ArrivalDelta,
    ScheduleComparison,
    compare_schedules,
    render_comparison,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.stats import (
    DeliveryLatency,
    LinkUtilization,
    ScheduleStats,
    StoragePeak,
    delivery_latency,
    link_utilization,
    schedule_stats,
    storage_peaks,
)

__all__ = [
    "ArrivalDelta",
    "DeliveryLatency",
    "LinkUtilization",
    "ScheduleComparison",
    "ScheduleStats",
    "StoragePeak",
    "compare_schedules",
    "delivery_latency",
    "link_utilization",
    "render_comparison",
    "render_gantt",
    "schedule_stats",
    "storage_peaks",
]
