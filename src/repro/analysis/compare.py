"""Schedule comparison: what two schedulers did differently on one scenario.

:func:`compare_schedules` diffs two schedules of the *same* scenario —
who satisfied which requests, how arrival times differ on the shared
deliveries, and how much transfer work each booked.  Useful when studying
why one heuristic/criterion pair beats another on a specific case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.scenario import Scenario
from repro.core.schedule import Schedule
from repro.errors import ModelError


@dataclass(frozen=True)
class ArrivalDelta:
    """One request delivered by both schedules, with differing arrivals.

    Attributes:
        request_id: the shared delivery.
        first_arrival: arrival time under the first schedule.
        second_arrival: arrival time under the second schedule.
    """

    request_id: int
    first_arrival: float
    second_arrival: float

    @property
    def delta(self) -> float:
        """``second − first`` (positive: the second schedule was later)."""
        return self.second_arrival - self.first_arrival


@dataclass(frozen=True)
class ScheduleComparison:
    """The diff of two schedules over one scenario.

    Attributes:
        only_first: request ids satisfied only by the first schedule.
        only_second: request ids satisfied only by the second schedule.
        both: request ids satisfied by both.
        weighted_sum_first: first schedule's weighted priority sum.
        weighted_sum_second: second schedule's weighted priority sum.
        arrival_deltas: per-shared-request arrival differences (only
            entries with a non-zero delta), sorted by |delta| descending.
        steps_first: transfer count of the first schedule.
        steps_second: transfer count of the second schedule.
    """

    only_first: Tuple[int, ...]
    only_second: Tuple[int, ...]
    both: Tuple[int, ...]
    weighted_sum_first: float
    weighted_sum_second: float
    arrival_deltas: Tuple[ArrivalDelta, ...]
    steps_first: int
    steps_second: int

    @property
    def weighted_gap(self) -> float:
        """``second − first`` weighted sums (positive: second wins)."""
        return self.weighted_sum_second - self.weighted_sum_first


def compare_schedules(
    scenario: Scenario, first: Schedule, second: Schedule
) -> ScheduleComparison:
    """Diff two schedules of the same scenario.

    Raises:
        ModelError: when either schedule references a request the scenario
            does not contain (a sign the schedules belong elsewhere).
    """
    known = {request.request_id for request in scenario.requests}
    for schedule in (first, second):
        extra = set(schedule.deliveries) - known
        if extra:
            raise ModelError(
                f"schedule {schedule.name!r} delivers unknown requests "
                f"{sorted(extra)} — not a schedule of this scenario?"
            )

    satisfied_first = set(first.deliveries)
    satisfied_second = set(second.deliveries)
    both = satisfied_first & satisfied_second

    def weighted(ids) -> float:
        return sum(
            scenario.weighting.weight(scenario.request(rid).priority)
            for rid in ids
        )

    deltas = []
    for request_id in both:
        a = first.delivery(request_id).arrival
        b = second.delivery(request_id).arrival
        if a != b:
            deltas.append(
                ArrivalDelta(
                    request_id=request_id,
                    first_arrival=a,
                    second_arrival=b,
                )
            )
    deltas.sort(key=lambda d: (-abs(d.delta), d.request_id))

    return ScheduleComparison(
        only_first=tuple(sorted(satisfied_first - satisfied_second)),
        only_second=tuple(sorted(satisfied_second - satisfied_first)),
        both=tuple(sorted(both)),
        weighted_sum_first=weighted(satisfied_first),
        weighted_sum_second=weighted(satisfied_second),
        arrival_deltas=tuple(deltas),
        steps_first=first.step_count,
        steps_second=second.step_count,
    )


def render_comparison(
    comparison: ScheduleComparison,
    first_name: str = "first",
    second_name: str = "second",
) -> str:
    """Render a comparison as a compact text block."""
    lines = [
        f"{first_name}: weighted {comparison.weighted_sum_first:g} "
        f"({len(comparison.only_first) + len(comparison.both)} deliveries, "
        f"{comparison.steps_first} steps)",
        f"{second_name}: weighted {comparison.weighted_sum_second:g} "
        f"({len(comparison.only_second) + len(comparison.both)} deliveries, "
        f"{comparison.steps_second} steps)",
        f"shared deliveries: {len(comparison.both)}; "
        f"only {first_name}: {list(comparison.only_first)}; "
        f"only {second_name}: {list(comparison.only_second)}",
    ]
    if comparison.arrival_deltas:
        worst = comparison.arrival_deltas[0]
        lines.append(
            f"largest arrival shift: request {worst.request_id} "
            f"({worst.first_arrival:g}s -> {worst.second_arrival:g}s)"
        )
    return "\n".join(lines)
