"""ASCII Gantt rendering of schedules.

A terminal-friendly visualization of who used which link when — handy for
debugging heuristics, demonstrating contention in examples, and inspecting
small schedules without a plotting stack.  Each used virtual link gets one
row; time runs left to right; each cell is one time bucket showing the item
occupying the link (``.`` for idle inside the window, a space outside it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import units
from repro.core.scenario import Scenario
from repro.core.schedule import Schedule

#: Items beyond this count reuse symbols (schedules that large should be
#: inspected with the stats API instead).
_SYMBOLS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_gantt(
    scenario: Scenario,
    schedule: Schedule,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """Render the schedule's link occupancy as an ASCII chart.

    Args:
        scenario: the scheduled problem instance.
        schedule: the schedule to draw.
        width: number of time buckets (characters) per row.
        until: right edge of the time axis; defaults to just after the
            last transfer ends (or the horizon for empty schedules).

    Returns:
        A multi-line string: one row per *used* virtual link, a time axis,
        and a legend mapping symbols to item names.
    """
    if width < 10:
        raise ValueError(f"width must be at least 10 columns, got {width}")
    steps = schedule.steps
    if until is None:
        until = (
            max(step.end for step in steps) * 1.02
            if steps
            else scenario.horizon
        )
    if until <= 0:
        until = scenario.horizon
    bucket = until / width

    used_links = sorted({step.link_id for step in steps})
    item_ids = sorted({step.item_id for step in steps})
    symbol_of = {
        item_id: _SYMBOLS[index % len(_SYMBOLS)]
        for index, item_id in enumerate(item_ids)
    }

    lines: List[str] = []
    label_width = max(
        (len(_link_label(scenario, link_id)) for link_id in used_links),
        default=8,
    )
    for link_id in used_links:
        link = scenario.network.link(link_id)
        row = []
        for column in range(width):
            t = (column + 0.5) * bucket
            row.append("." if link.window.contains(t) else " ")
        for step in steps:
            if step.link_id != link_id:
                continue
            first = int(step.start / bucket)
            last = max(int(step.end / bucket), first)
            for column in range(first, min(last + 1, width)):
                row[column] = symbol_of[step.item_id]
        lines.append(
            f"{_link_label(scenario, link_id):<{label_width}} |"
            + "".join(row)
            + "|"
        )

    axis = (
        " " * label_width
        + " |0"
        + " " * (width - len(units.format_time(until)) - 1)
        + units.format_time(until)
        + "|"
    )
    lines.append(axis)
    legend = ", ".join(
        f"{symbol_of[item_id]}={scenario.item(item_id).name}"
        for item_id in item_ids
    )
    if legend:
        lines.append(f"legend: {legend}  (.=window open)")
    return "\n".join(lines)


def _link_label(scenario: Scenario, link_id: int) -> str:
    link = scenario.network.link(link_id)
    return f"L{link_id}[{link.source}->{link.destination}]"
