"""Post-hoc schedule analysis: utilization, latency, storage statistics.

These functions inspect a finished :class:`~repro.core.schedule.Schedule`
against its scenario and answer the operational questions the paper's
companion TR tabulates (and that any deployment would ask): how busy were
the links, how close to their deadlines did deliveries land, and how much
storage did staging consume on each machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.scenario import Scenario
from repro.core.schedule import Schedule


@dataclass(frozen=True)
class LinkUtilization:
    """Occupancy of one virtual link over its availability window.

    Attributes:
        link_id: the virtual link.
        busy_seconds: total booked transfer time.
        window_seconds: the availability window's length.
        transfers: number of transfers carried.
    """

    link_id: int
    busy_seconds: float
    window_seconds: float
    transfers: int

    @property
    def utilization(self) -> float:
        """Busy fraction of the window, in [0, 1]."""
        if self.window_seconds <= 0:
            return 0.0
        return min(self.busy_seconds / self.window_seconds, 1.0)


def link_utilization(
    scenario: Scenario, schedule: Schedule
) -> Dict[int, LinkUtilization]:
    """Per-virtual-link occupancy (links never used are included)."""
    busy: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for step in schedule.steps:
        busy[step.link_id] = busy.get(step.link_id, 0.0) + step.duration
        counts[step.link_id] = counts.get(step.link_id, 0) + 1
    return {
        link.link_id: LinkUtilization(
            link_id=link.link_id,
            busy_seconds=busy.get(link.link_id, 0.0),
            window_seconds=link.window.duration,
            transfers=counts.get(link.link_id, 0),
        )
        for link in scenario.network.virtual_links
    }


@dataclass(frozen=True)
class DeliveryLatency:
    """Slack statistics over a schedule's deliveries.

    Attributes:
        deliveries: number of satisfied requests.
        mean_slack: mean of (deadline − arrival) over deliveries.
        min_slack: tightest delivery's slack.
        mean_hops: mean links traversed per delivery.
    """

    deliveries: int
    mean_slack: float
    min_slack: float
    mean_hops: float


def delivery_latency(
    scenario: Scenario, schedule: Schedule
) -> DeliveryLatency:
    """Slack and hop statistics of the satisfied requests."""
    slacks: List[float] = []
    hops: List[int] = []
    for request_id, delivery in schedule.deliveries.items():
        request = scenario.request(request_id)
        slacks.append(request.deadline - delivery.arrival)
        hops.append(delivery.hops)
    if not slacks:
        return DeliveryLatency(
            deliveries=0, mean_slack=0.0, min_slack=0.0, mean_hops=0.0
        )
    return DeliveryLatency(
        deliveries=len(slacks),
        mean_slack=sum(slacks) / len(slacks),
        min_slack=min(slacks),
        mean_hops=sum(hops) / len(hops),
    )


@dataclass(frozen=True)
class StoragePeak:
    """Peak staged storage on one machine.

    Attributes:
        machine: the machine index.
        peak_bytes: maximum bytes of scheduler-placed copies resident at
            any instant.
        capacity: the machine's total capacity.
    """

    machine: int
    peak_bytes: float
    capacity: float

    @property
    def peak_fraction(self) -> float:
        """Peak staged bytes as a fraction of capacity."""
        if self.capacity <= 0:
            return 0.0
        return self.peak_bytes / self.capacity


def storage_peaks(
    scenario: Scenario, schedule: Schedule
) -> Dict[int, StoragePeak]:
    """Per-machine peak storage consumed by scheduled copies.

    Each inbound transfer to a machine reserves the item's size from the
    transfer start until the copy's release (garbage collection for
    intermediates, the horizon for sources/destinations) — the same
    residency rule the scheduler booked against.
    """
    events: Dict[int, List[Tuple[float, float]]] = {
        machine.index: [] for machine in scenario.network.machines
    }
    destination_machines = {
        (request.item_id, request.destination)
        for request in scenario.requests
    }
    for step in schedule.steps:
        item = scenario.item(step.item_id)
        if (step.item_id, step.destination) in destination_machines or (
            step.destination in item.source_machines
        ):
            release = scenario.horizon
        else:
            release = scenario.gc_release_time(step.item_id)
        events[step.destination].append((step.start, item.size))
        events[step.destination].append((release, -item.size))
    peaks = {}
    for machine in scenario.network.machines:
        level = 0.0
        peak = 0.0
        for __, delta in sorted(events[machine.index]):
            level += delta
            peak = max(peak, level)
        peaks[machine.index] = StoragePeak(
            machine=machine.index,
            peak_bytes=peak,
            capacity=machine.capacity,
        )
    return peaks


@dataclass(frozen=True)
class ScheduleStats:
    """One-call summary bundle for reports and examples."""

    steps: int
    deliveries: int
    bytes_transferred: float
    mean_link_utilization: float
    max_link_utilization: float
    latency: DeliveryLatency
    peak_storage_fraction: float


def schedule_stats(scenario: Scenario, schedule: Schedule) -> ScheduleStats:
    """Aggregate the individual analyses into one summary record."""
    utilizations = link_utilization(scenario, schedule)
    used = [u.utilization for u in utilizations.values()]
    latency = delivery_latency(scenario, schedule)
    peaks = storage_peaks(scenario, schedule)
    sizes = {item.item_id: item.size for item in scenario.items}
    return ScheduleStats(
        steps=schedule.step_count,
        deliveries=len(schedule.deliveries),
        bytes_transferred=schedule.total_bytes_transferred(sizes),
        mean_link_utilization=sum(used) / len(used) if used else 0.0,
        max_link_utilization=max(used) if used else 0.0,
        latency=latency,
        peak_storage_fraction=max(
            (peak.peak_fraction for peak in peaks.values()), default=0.0
        ),
    )
