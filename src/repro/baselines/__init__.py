"""Lower/upper bounds and comparison schedulers (paper §5.2 and §5.4)."""

from repro.baselines.bounds import (
    isolated_satisfiable_requests,
    possible_satisfy,
    possible_satisfy_effect,
    upper_bound,
    upper_bound_effect,
)
from repro.baselines.priority_tier import PriorityTierScheduler
from repro.baselines.random_dijkstra import RandomDijkstraBaseline
from repro.baselines.single_dijkstra_random import SingleDijkstraRandomBaseline

__all__ = [
    "PriorityTierScheduler",
    "RandomDijkstraBaseline",
    "SingleDijkstraRandomBaseline",
    "isolated_satisfiable_requests",
    "possible_satisfy",
    "possible_satisfy_effect",
    "upper_bound",
    "upper_bound_effect",
]
