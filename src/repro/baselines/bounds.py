"""The two upper bounds of §5.2.

* ``upper_bound`` — the total weighted priority of *all* requests, i.e. the
  score of a hypothetical schedule satisfying everything (loose).
* ``possible_satisfy`` — the weighted priority of the requests that could be
  satisfied if each were alone in the network: one shortest-path run per
  item against a pristine (booking-free) state decides, per destination,
  whether even the uncontended network can beat the deadline.  Requests can
  fail this test purely for lack of bandwidth or storage, which is why
  ``possible_satisfy`` sits below ``upper_bound`` on oversubscribed inputs.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.evaluation import evaluate_satisfied
from repro.core.scenario import Scenario
from repro.core.schedule import ScheduleEffect
from repro.core.state import NetworkState
from repro.routing.dijkstra import compute_shortest_path_tree


def upper_bound(scenario: Scenario) -> float:
    """The loose upper bound: every request counted as satisfied."""
    return scenario.total_weighted_priority()


def upper_bound_effect(scenario: Scenario) -> ScheduleEffect:
    """The loose upper bound with per-priority-class counts."""
    return evaluate_satisfied(
        scenario, (request.request_id for request in scenario.requests)
    )


def isolated_satisfiable_requests(scenario: Scenario) -> Tuple[int, ...]:
    """Ids of requests satisfiable when alone in the network.

    One earliest-arrival tree per requested item is computed against a
    pristine state; a request passes when its predicted arrival meets its
    deadline.  If the uncontended shortest path misses the deadline, no
    schedule can satisfy the request at all.
    """
    pristine = NetworkState(scenario)
    satisfiable = []
    for item_id in scenario.requested_item_ids():
        tree = compute_shortest_path_tree(pristine, item_id)
        for request in scenario.requests_for_item(item_id):
            if tree.arrival(request.destination) <= request.deadline:
                satisfiable.append(request.request_id)
    return tuple(sorted(satisfiable))


def possible_satisfy(scenario: Scenario) -> float:
    """The tighter upper bound: weighted sum of isolation-satisfiable requests."""
    return possible_satisfy_effect(scenario).weighted_sum


def possible_satisfy_effect(scenario: Scenario) -> ScheduleEffect:
    """The tighter upper bound with per-priority-class counts."""
    return evaluate_satisfied(scenario, isolated_satisfiable_requests(scenario))
