"""The simplified priority-tier scheduler of §5.4.

Schedules *all* highest-priority requests before considering any
medium-priority request, and all medium before any low — a "cost-guided
(versus arbitrary) approach to basing scheduling decisions only on the
priority of individual requests".  Within a tier the requests are scheduled
by a regular heuristic/criterion pair sharing the same network state, so
the only difference from the paper's heuristics is the rigid tier ordering.

The paper reports that every heuristic/criterion combination beats this
scheme on the weighted-priority measure; the ``TAB-PT`` benchmark
reproduces that comparison.
"""

from __future__ import annotations

import time
from typing import Union

from repro.core.scenario import Scenario
from repro.core.state import NetworkState
from repro.cost.criteria import CostCriterion
from repro.cost.weights import EUWeights
from repro.heuristics.base import EngineStats, HeuristicResult, TreeCache
from repro.heuristics.registry import make_heuristic


class PriorityTierScheduler:
    """All higher-priority requests strictly before lower-priority ones.

    Args:
        heuristic: name of the inner heuristic running each tier
            (default ``"full_one"``, the paper's strongest).
        criterion: criterion name or instance used inside each tier.
        weights: E-U weights or raw ``log10`` ratio for the inner criterion.
        use_tree_cache: forwarded to the inner heuristic.
    """

    name = "priority_tier"
    figure_label = "priority_tier"

    def __init__(
        self,
        heuristic: str = "full_one",
        criterion: Union[str, CostCriterion] = "C4",
        weights: Union[float, EUWeights] = 0.0,
        use_tree_cache: bool = True,
    ) -> None:
        self._inner = make_heuristic(
            heuristic,
            criterion=criterion,
            weights=weights,
            use_tree_cache=use_tree_cache,
        )
        self._use_tree_cache = use_tree_cache

    def label(self) -> str:
        """Run label used in schedule names and reports."""
        return f"{self.name}({self._inner.label()})"

    def run(self, scenario: Scenario) -> HeuristicResult:
        """Build a schedule: one full drain per priority tier, descending."""
        started = time.perf_counter()
        stats = EngineStats()
        state = NetworkState(scenario, schedule_name=self.label())
        cache = TreeCache(state, stats, enabled=self._use_tree_cache)
        for priority in range(scenario.weighting.highest_priority, -1, -1):
            self._inner.drain(
                state, cache, stats, priorities=frozenset({priority})
            )
        stats.elapsed_seconds = time.perf_counter() - started
        return HeuristicResult(schedule=state.schedule, stats=stats)
