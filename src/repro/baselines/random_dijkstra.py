"""The Dijkstra random baseline (paper §5.2) — the tighter lower bound.

Identical to the partial path heuristic except that the next communication
step is drawn uniformly at random from the valid candidates instead of
being chosen by a cost criterion.  The gap between this baseline and the
cost-driven heuristics isolates the value of the cost criteria themselves.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Tuple

from repro.core.scenario import Scenario
from repro.core.state import NetworkState
from repro.cost.criteria import Cost4, CostResult
from repro.cost.terms import most_urgent_satisfiable
from repro.cost.weights import EUWeights
from repro.heuristics.base import HeuristicResult, TreeCache
from repro.heuristics.candidates import CandidateGroup, enumerate_groups
from repro.heuristics.partial_path import PartialPathHeuristic


class RandomDijkstraBaseline(PartialPathHeuristic):
    """Partial-path scheduling with uniformly random step selection.

    Args:
        seed: seed of the private RNG; runs with the same seed and scenario
            are identical.
        use_tree_cache: as for the heuristics.
    """

    name = "random_dijkstra"
    figure_label = "random_Dijkstra"

    def __init__(self, seed: int = 0, use_tree_cache: bool = True) -> None:
        # The criterion is never consulted; Cost4 with neutral weights only
        # satisfies the base-class constructor.
        super().__init__(
            criterion=Cost4(),
            weights=EUWeights(1.0, 1.0),
            use_tree_cache=use_tree_cache,
        )
        self._seed = seed
        self._rng = random.Random(seed)

    def label(self) -> str:
        """Run label used in schedule names and reports."""
        return self.name

    def run(self, scenario: Scenario) -> HeuristicResult:
        """Build a schedule, reseeding the private RNG per run.

        The RNG is reset from the stored seed on every invocation so
        repeated runs of one baseline instance produce identical
        schedules — the same-(scenario, scheduler) determinism contract
        the run cache and the staticcheck R1 rule enforce everywhere
        else.  (Previously the instance RNG carried state across runs,
        so a second ``run()`` on the same object diverged.)
        """
        self._rng = random.Random(self._seed)
        return super().run(scenario)

    def _best_choice(
        self,
        state: NetworkState,
        cache: TreeCache,
        priorities: Optional[FrozenSet[int]] = None,
        request_filter=None,
    ) -> Optional[Tuple[CandidateGroup, CostResult]]:
        scenario = state.scenario
        groups = []
        for item_id in scenario.requested_item_ids():
            if not state.unsatisfied_requests_for_item(item_id):
                continue
            entry = cache.entry_for(item_id)
            payload = entry.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != priorities
                or payload[1] is not request_filter
            ):
                payload = (
                    priorities,
                    request_filter,
                    enumerate_groups(
                        state,
                        item_id,
                        entry.tree,
                        scenario.weighting,
                        priorities,
                        request_filter,
                    ),
                )
                entry.payload = payload
            groups.extend(payload[2])
        if not groups:
            return None
        group = self._rng.choice(groups)
        selected = most_urgent_satisfiable(group.evaluations)
        return group, CostResult(cost=0.0, selected=selected)
