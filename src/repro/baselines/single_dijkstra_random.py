"""The single-Dijkstra random baseline (paper §5.2) — the looser lower bound.

Shortest paths are computed exactly once per requested item, against the
*pristine* network (as if the item were alone).  The items are then
scheduled one after another in a random order: each request's precomputed
path is booked hop by hop at its precomputed times, and whenever a booking
conflicts with resources consumed by earlier items the request is simply
dropped.  The gap between this baseline and the heuristics isolates the
value of re-running Dijkstra with updated state.
"""

from __future__ import annotations

import random
import time
from typing import Set

from repro.core.scenario import Scenario
from repro.core.state import NetworkState, TransferPlan
from repro.errors import InfeasibleTransferError
from repro.heuristics.base import EngineStats, HeuristicResult
from repro.routing.dijkstra import compute_shortest_path_tree


class SingleDijkstraRandomBaseline:
    """One Dijkstra per item, random item order, drop on conflict.

    Args:
        seed: seed of the private RNG controlling the item order.
    """

    name = "single_dij_random"
    figure_label = "single_Dij_random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def label(self) -> str:
        """Run label used in schedule names and reports."""
        return self.name

    def run(self, scenario: Scenario) -> HeuristicResult:
        """Build a schedule for one scenario."""
        started = time.perf_counter()
        rng = random.Random(self._seed)
        stats = EngineStats()
        state = NetworkState(scenario, schedule_name=self.label())
        # Trees are planned against a pristine state: no bookings, so every
        # item sees an empty network regardless of scheduling order.
        pristine = NetworkState(scenario)
        network = scenario.network
        item_ids = list(scenario.requested_item_ids())
        rng.shuffle(item_ids)
        for item_id in item_ids:
            tree = compute_shortest_path_tree(pristine, item_id)
            stats.dijkstra_runs += 1
            booked_receivers: Set[int] = set()
            for request in scenario.requests_for_item(item_id):
                stats.iterations += 1
                path = tree.path_to(request.destination)
                if path is None or not path.hops:
                    continue
                if tree.arrival(request.destination) > request.deadline:
                    continue
                try:
                    for hop in path.hops:
                        if hop.receiver in booked_receivers:
                            continue
                        plan = TransferPlan(
                            item_id=item_id,
                            link=network.link(hop.link_id),
                            start=hop.start,
                            end=hop.end,
                            release=state.release_time_at(
                                item_id, hop.receiver
                            ),
                        )
                        state.book_transfer(plan)
                        booked_receivers.add(hop.receiver)
                        stats.hops_booked += 1
                except InfeasibleTransferError:
                    # Conflict with an earlier item's bookings: the request
                    # is dropped; already-booked hops stay in the schedule.
                    continue
        stats.elapsed_seconds = time.perf_counter() - started
        return HeuristicResult(schedule=state.schedule, stats=stats)
