"""Machine-readable performance benchmarking of the scheduler library.

:mod:`repro.benchmarks.harness` runs a pinned
scenario × heuristic × criterion matrix at a chosen experiment scale
under the span profiler and emits a schema-versioned ``BENCH_*.json``
document: per-phase :class:`~repro.observability.metrics.TimingStat`
breakdowns, hotspot ranking, run-cache hit rates, and an environment
fingerprint.  :mod:`repro.benchmarks.compare` diffs two such documents
against configurable regression thresholds, for perf gating in CI and
locally (``python -m repro.cli bench`` / ``bench compare``).
"""

from repro.benchmarks.compare import (
    EXIT_FLAT,
    EXIT_IMPROVED,
    EXIT_REGRESSED,
    VERDICT_FLAT,
    VERDICT_IMPROVED,
    VERDICT_REGRESSED,
    Comparison,
    PhaseDelta,
    Thresholds,
    compare_documents,
    render_comparison,
    verdict_exit_code,
)
from repro.benchmarks.harness import (
    BENCH_SCHEMA_VERSION,
    BenchMatrix,
    environment_fingerprint,
    load_bench_document,
    render_bench,
    run_bench,
    validate_bench_document,
)

__all__ = [
    "EXIT_FLAT",
    "EXIT_IMPROVED",
    "EXIT_REGRESSED",
    "VERDICT_FLAT",
    "VERDICT_IMPROVED",
    "VERDICT_REGRESSED",
    "Comparison",
    "PhaseDelta",
    "Thresholds",
    "compare_documents",
    "render_comparison",
    "verdict_exit_code",
    "BENCH_SCHEMA_VERSION",
    "BenchMatrix",
    "environment_fingerprint",
    "load_bench_document",
    "render_bench",
    "run_bench",
    "validate_bench_document",
]
