"""Perf-regression gating: diff two bench documents phase by phase.

:func:`compare_documents` walks every (scheduler entry, span path) pair
present in a baseline and a candidate bench document, computes the
candidate/baseline wall-time ratio, and classifies each phase — and the
comparison as a whole — as ``REGRESSED``, ``IMPROVED``, or ``FLAT``
against configurable :class:`Thresholds`.  The CLI maps the overall
verdict onto distinct exit codes so shell pipelines and CI jobs can gate
on it::

    python -m repro.cli bench compare baseline.json candidate.json
    # exit 0 = FLAT, 3 = IMPROVED, 4 = REGRESSED (2 = usage/IO error)

Phases faster than the noise floor on both sides are always FLAT —
micro-phase jitter must not fail a build — and entries or phases present
on only one side are reported informationally but never affect the
verdict (a new phase has no baseline to regress from).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Exit code for an overall FLAT comparison (also: no comparable data).
EXIT_FLAT = 0
#: Exit code for an overall IMPROVED comparison.
EXIT_IMPROVED = 3
#: Exit code for an overall REGRESSED comparison.
EXIT_REGRESSED = 4

VERDICT_FLAT = "FLAT"
VERDICT_IMPROVED = "IMPROVED"
VERDICT_REGRESSED = "REGRESSED"


@dataclass(frozen=True)
class Thresholds:
    """Classification thresholds for one comparison.

    Attributes:
        max_regression: a phase slower by more than this fraction is
            REGRESSED (0.20 = +20%).
        min_improvement: a phase faster by more than this fraction is
            IMPROVED (0.20 = -20%).
        noise_floor_seconds: phases under this wall time on *both* sides
            are always FLAT — ratios of micro-timings are noise.
    """

    max_regression: float = 0.20
    min_improvement: float = 0.20
    noise_floor_seconds: float = 0.05


@dataclass(frozen=True)
class PhaseDelta:
    """One compared (entry, phase) pair.

    Attributes:
        entry: the scheduler label (``"partial/C4"``), or ``"harness"``
            for the harness-level profile.
        path: the span path (``"tree/dijkstra"``) or ``"elapsed"`` for
            the entry's total scheduled time.
        baseline_seconds: baseline wall total.
        candidate_seconds: candidate wall total.
        ratio: ``candidate / baseline`` (``inf`` for a zero baseline).
        verdict: VERDICT_FLAT / VERDICT_IMPROVED / VERDICT_REGRESSED.
    """

    entry: str
    path: str
    baseline_seconds: float
    candidate_seconds: float
    ratio: float
    verdict: str


@dataclass(frozen=True)
class Comparison:
    """The outcome of diffing two bench documents.

    Attributes:
        deltas: every compared (entry, phase) pair, document order.
        only_baseline: (entry, path) pairs present only in the baseline.
        only_candidate: (entry, path) pairs present only in the
            candidate.
        verdict: the overall verdict — REGRESSED if any phase regressed,
            else IMPROVED if any phase improved, else FLAT.
    """

    deltas: Tuple[PhaseDelta, ...]
    only_baseline: Tuple[Tuple[str, str], ...]
    only_candidate: Tuple[Tuple[str, str], ...]
    verdict: str

    @property
    def regressions(self) -> Tuple[PhaseDelta, ...]:
        """The deltas classified REGRESSED."""
        return tuple(
            delta
            for delta in self.deltas
            if delta.verdict == VERDICT_REGRESSED
        )

    @property
    def improvements(self) -> Tuple[PhaseDelta, ...]:
        """The deltas classified IMPROVED."""
        return tuple(
            delta
            for delta in self.deltas
            if delta.verdict == VERDICT_IMPROVED
        )


def verdict_exit_code(verdict: str) -> int:
    """The process exit code for an overall verdict."""
    if verdict == VERDICT_REGRESSED:
        return EXIT_REGRESSED
    if verdict == VERDICT_IMPROVED:
        return EXIT_IMPROVED
    return EXIT_FLAT


def _classify(
    baseline: float, candidate: float, thresholds: Thresholds
) -> Tuple[float, str]:
    if (
        baseline < thresholds.noise_floor_seconds
        and candidate < thresholds.noise_floor_seconds
    ):
        ratio = candidate / baseline if baseline > 0.0 else float("inf")
        return ratio, VERDICT_FLAT
    if baseline <= 0.0:
        return float("inf"), VERDICT_REGRESSED
    ratio = candidate / baseline
    if ratio > 1.0 + thresholds.max_regression:
        return ratio, VERDICT_REGRESSED
    if ratio < 1.0 - thresholds.min_improvement:
        return ratio, VERDICT_IMPROVED
    return ratio, VERDICT_FLAT


def _phase_walls(document: Mapping[str, Any]) -> Dict[Tuple[str, str], float]:
    """Flatten a bench document into ``(entry, path) -> wall total``."""
    walls: Dict[Tuple[str, str], float] = {}
    harness = document.get("harness")
    if harness is not None:
        for path, stat in harness.get("spans", {}).items():
            walls[("harness", path)] = float(stat["wall"]["total"])
    for scheduler, entry in document.get("entries", {}).items():
        walls[(scheduler, "elapsed")] = float(entry["elapsed_seconds"])
        profile = entry.get("profile")
        if profile is None:
            continue
        for path, stat in profile.get("spans", {}).items():
            walls[(scheduler, path)] = float(stat["wall"]["total"])
    return walls


def compare_documents(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    thresholds: Optional[Thresholds] = None,
) -> Comparison:
    """Diff two bench documents (both already schema-validated)."""
    thresholds = thresholds if thresholds is not None else Thresholds()
    baseline_walls = _phase_walls(baseline)
    candidate_walls = _phase_walls(candidate)
    deltas: List[PhaseDelta] = []
    for key in sorted(set(baseline_walls) & set(candidate_walls)):
        entry, path = key
        base = baseline_walls[key]
        cand = candidate_walls[key]
        ratio, verdict = _classify(base, cand, thresholds)
        deltas.append(
            PhaseDelta(
                entry=entry,
                path=path,
                baseline_seconds=base,
                candidate_seconds=cand,
                ratio=ratio,
                verdict=verdict,
            )
        )
    only_baseline = tuple(
        sorted(set(baseline_walls) - set(candidate_walls))
    )
    only_candidate = tuple(
        sorted(set(candidate_walls) - set(baseline_walls))
    )
    if any(delta.verdict == VERDICT_REGRESSED for delta in deltas):
        verdict = VERDICT_REGRESSED
    elif any(delta.verdict == VERDICT_IMPROVED for delta in deltas):
        verdict = VERDICT_IMPROVED
    else:
        verdict = VERDICT_FLAT
    return Comparison(
        deltas=tuple(deltas),
        only_baseline=only_baseline,
        only_candidate=only_candidate,
        verdict=verdict,
    )


def render_comparison(
    comparison: Comparison,
    baseline: Optional[Mapping[str, Any]] = None,
    candidate: Optional[Mapping[str, Any]] = None,
) -> str:
    """A plain-text report of one comparison, non-FLAT phases first."""
    lines: List[str] = []
    if baseline is not None and candidate is not None:
        base_env = baseline.get("environment", {})
        cand_env = candidate.get("environment", {})
        lines.append(
            f"comparing {baseline.get('label')!r} -> "
            f"{candidate.get('label')!r}"
        )
        if base_env != cand_env:
            lines.append(
                "  WARNING: environment fingerprints differ; absolute "
                "timings may not be comparable"
            )
    interesting = [
        delta
        for delta in comparison.deltas
        if delta.verdict != VERDICT_FLAT
    ]
    for delta in interesting:
        change = (
            f"{(delta.ratio - 1.0) * 100.0:+.0f}%"
            if delta.ratio != float("inf")
            else "new cost"
        )
        lines.append(
            f"  {delta.verdict:<9} {delta.entry} / {delta.path}: "
            f"{delta.baseline_seconds:.3f}s -> "
            f"{delta.candidate_seconds:.3f}s ({change})"
        )
    flat = len(comparison.deltas) - len(interesting)
    lines.append(
        f"  {flat} phase(s) flat, "
        f"{len(comparison.improvements)} improved, "
        f"{len(comparison.regressions)} regressed"
    )
    for entry, path in comparison.only_baseline:
        lines.append(f"  note: {entry} / {path} only in baseline")
    for entry, path in comparison.only_candidate:
        lines.append(f"  note: {entry} / {path} only in candidate")
    lines.append(f"verdict: {comparison.verdict}")
    return "\n".join(lines)
