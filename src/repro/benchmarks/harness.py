"""The ``bench`` harness: a pinned perf matrix emitting BENCH documents.

One :func:`run_bench` call executes the pinned
scenario × heuristic × criterion matrix of a
:class:`BenchMatrix` with per-cell span profiling enabled and folds the
results into one JSON-ready *bench document*::

    {
      "format_version": 1,
      "kind": "bench",
      "schema_version": 1,
      "label": "ci",
      "scale": "ci",
      "environment": {"platform": ..., "python": ..., "cpu_count": ...},
      "cache": {"cells": 15, "computed": 15, "cache_hits": 0,
                "hit_rate": 0.0},
      "harness": {... profile document: scenario_generation,
                  serialization ...},
      "entries": {
        "partial/C4": {
          "tree_cache": {"hits": 120, "misses": 30, "hit_rate": 0.8,
                         "reasons": {"clean": 90, "revalidated": 30,
                                     "item_changed": 30}},
          "timeline": {"runs": 5, "requests": 250, "satisfied": 180,
                       "unsatisfied": 70, "peak_link": 12,
                       "peak_utilization": 0.91,
                       "top_rejection": "no_feasible_window"},
          "elapsed_seconds": 1.23,
          "cells": 5,
          "profile": {... profile document: tree, tree/dijkstra,
                      scoring, booking, gc ...},
          "hotspots": [{"path": "tree/dijkstra", ...}, ...]
        },
        ...
      }
    }

Phase timings come from two non-overlapping sources, so nothing is
double-counted: the harness's own :class:`ProfileCollector` observes only
scenario generation and an explicit codec round-trip (the
``serialization`` phase), while cell-internal phases (``tree``,
``dijkstra``, ``scoring``, ``booking``, ``gc``) ride back on the records
through :class:`~repro.experiments.executor.SweepExecutor`'s per-cell
profiles — crossing worker processes and the run cache, exactly like
:class:`~repro.observability.metrics.RunMetrics`.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.cost.weights import as_weights
from repro.errors import ModelError
from repro.experiments.executor import SweepCell, SweepExecutor
from repro.experiments.scale import ExperimentScale, scale_by_name
from repro.faults.plan import FaultPlan
from repro.observability.profiling import (
    PHASE_SERIALIZATION,
    ProfileCollector,
    span,
    validate_profile_document,
)
from repro.observability.tracer import use_tracer
from repro.serialization import (
    FORMAT_VERSION,
    profile_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.workload.generator import ScenarioGenerator

#: Version stamp written into every bench document.
BENCH_SCHEMA_VERSION = 1

#: The pinned heuristic/criterion pairs benchmarked at every scale — one
#: entry per paper heuristic, all under the paper's best criterion C4,
#: at the balanced E-U point.
BENCH_PAIRINGS: Tuple[Tuple[str, str], ...] = (
    ("partial", "C4"),
    ("full_one", "C4"),
    ("full_all", "C4"),
)

#: The E-U point the matrix is pinned to (log10(W_E/W_U)).
BENCH_LOG_RATIO = 0.0

#: Hotspot table length recorded per entry.
BENCH_HOTSPOT_LIMIT = 10


@dataclass(frozen=True)
class BenchMatrix:
    """The pinned perf matrix: a scale plus fixed scheduler coordinates.

    Attributes:
        scale: the experiment scale (cases, generator config, seeds).
        pairings: the benchmarked (heuristic, criterion) pairs.
        log_ratio: the single E-U point every pair runs at.
        fault_intensity: when positive, every cell runs under a seeded
            static :class:`~repro.faults.plan.FaultPlan` of this
            intensity — a faulted perf baseline that exercises capacity
            masking in the hot path.
        fault_seed: base seed for generated fault plans (case ``i`` uses
            ``fault_seed + i``).
    """

    scale: ExperimentScale
    pairings: Tuple[Tuple[str, str], ...] = BENCH_PAIRINGS
    log_ratio: float = BENCH_LOG_RATIO
    fault_intensity: float = 0.0
    fault_seed: int = 0

    @staticmethod
    def pinned(
        scale_name: str,
        fault_intensity: float = 0.0,
        fault_seed: int = 0,
    ) -> "BenchMatrix":
        """The standard matrix at a named scale (``ci``/``full``/``paper``).

        Raises:
            ConfigurationError: for unknown scale names.
        """
        return BenchMatrix(
            scale=scale_by_name(scale_name),
            fault_intensity=fault_intensity,
            fault_seed=fault_seed,
        )

    @property
    def cell_count(self) -> int:
        """Total grid cells the matrix expands to."""
        return self.scale.cases * len(self.pairings)


def environment_fingerprint() -> Dict[str, Any]:
    """The host coordinates stamped into every bench document.

    Comparisons across different fingerprints are still possible but the
    renderer flags them — absolute timings are only comparable on the
    same class of hardware.
    """
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "cpu_count": os.cpu_count() or 1,
    }


def run_bench(
    matrix: BenchMatrix,
    label: str = "",
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Execute the matrix under profiling and build the bench document.

    Args:
        matrix: the pinned perf matrix to run.
        label: document label (defaults to the scale name).
        workers: process fan-out for the sweep grid.
        cache_dir: optional run-record cache.  Replayed cells contribute
            their *original* phase timings; the document's ``cache``
            section records the hit rate so a mostly-replayed bench is
            recognizable.

    Returns:
        The JSON-ready bench document (validated by
        :func:`validate_bench_document`).
    """
    harness = ProfileCollector()
    with use_tracer(harness):
        generator = ScenarioGenerator(matrix.scale.config)
        scenarios = generator.generate_suite(
            matrix.scale.cases, matrix.scale.base_seed
        )
        with span(PHASE_SERIALIZATION):
            for scenario in scenarios:
                scenario_from_dict(scenario_to_dict(scenario))

    plans: List[Optional[FaultPlan]] = [None] * len(scenarios)
    if matrix.fault_intensity > 0.0:
        plans = [
            FaultPlan.generate(
                scenario,
                matrix.fault_intensity,
                seed=matrix.fault_seed + case,
                churn=False,
            )
            for case, scenario in enumerate(scenarios)
        ]
    cells = [
        SweepCell(
            scenario=scenario,
            heuristic=heuristic,
            criterion=criterion,
            weights=as_weights(matrix.log_ratio),
            faults=plans[case],
        )
        for heuristic, criterion in matrix.pairings
        for case, scenario in enumerate(scenarios)
    ]
    with SweepExecutor(
        workers=workers,
        cache_dir=cache_dir,
        profile=True,
        metrics=True,
        timeline=True,
    ) as executor:
        records = executor.run_cells(cells)
        summary = executor.last_summary
        profiles = dict(executor.profile_by_scheduler)
        metrics = dict(executor.metrics_by_scheduler)
        timelines = dict(executor.timeline_by_scheduler)

    elapsed: Dict[str, float] = {}
    cell_counts: Dict[str, int] = {}
    for record in records:
        elapsed[record.scheduler] = (
            elapsed.get(record.scheduler, 0.0) + record.elapsed_seconds
        )
        cell_counts[record.scheduler] = (
            cell_counts.get(record.scheduler, 0) + 1
        )

    entries: Dict[str, Any] = {}
    for scheduler in sorted(elapsed):
        profile = profiles.get(scheduler)
        scheduler_metrics = metrics.get(scheduler)
        hits = misses = 0
        reasons: Dict[str, int] = {}
        if scheduler_metrics is not None:
            hits = scheduler_metrics.counters.get("tree_cache_hits", 0)
            misses = scheduler_metrics.counters.get("tree_cache_misses", 0)
            reasons = dict(scheduler_metrics.tree_cache_reasons)
        probes = hits + misses
        timeline = timelines.get(scheduler)
        entries[scheduler] = {
            "tree_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / probes if probes else 0.0,
                "reasons": reasons,
            },
            "timeline": (
                timeline.summary() if timeline is not None else None
            ),
            "elapsed_seconds": elapsed[scheduler],
            "cells": cell_counts[scheduler],
            "profile": (
                profile_to_dict(profile)
                if profile is not None
                else None
            ),
            "hotspots": [
                {
                    "path": hotspot.path,
                    "self_wall_seconds": hotspot.self_wall_seconds,
                    "total_wall_seconds": hotspot.total_wall_seconds,
                    "count": hotspot.count,
                    "share": hotspot.share,
                }
                for hotspot in (
                    profile.hotspots(BENCH_HOTSPOT_LIMIT)
                    if profile is not None
                    else ()
                )
            ],
        }

    cache_hits = summary.cache_hits if summary is not None else 0
    total_cells = summary.cells if summary is not None else len(cells)
    return {
        "format_version": FORMAT_VERSION,
        "kind": "bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label or matrix.scale.name,
        "scale": matrix.scale.name,
        "environment": environment_fingerprint(),
        "cache": {
            "cells": total_cells,
            "computed": total_cells - cache_hits,
            "cache_hits": cache_hits,
            "hit_rate": (
                cache_hits / total_cells if total_cells else 0.0
            ),
        },
        "harness": profile_to_dict(harness.finalize()),
        "entries": entries,
    }


def validate_bench_document(document: Mapping[str, Any]) -> None:
    """Structurally validate a parsed bench JSON document.

    Raises:
        ModelError: on a wrong kind, unsupported schema version, or any
            structurally invalid section.  Returns silently when the
            document conforms to the layout produced by
            :func:`run_bench`.
    """
    if document.get("kind") != "bench":
        raise ModelError(
            f"expected a bench document, got "
            f"kind={document.get('kind')!r}"
        )
    if document.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ModelError(
            f"unsupported bench schema version "
            f"{document.get('schema_version')!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    for key in ("label", "scale"):
        if not isinstance(document.get(key), str):
            raise ModelError(f"bench document key {key!r} must be a string")
    if not isinstance(document.get("environment"), Mapping):
        raise ModelError(
            "bench document key 'environment' must be a mapping"
        )
    cache = document.get("cache")
    if not isinstance(cache, Mapping):
        raise ModelError("bench document key 'cache' must be a mapping")
    for key in ("cells", "computed", "cache_hits", "hit_rate"):
        value = cache.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ModelError(
                f"bench document cache.{key} has invalid value {value!r}"
            )
    harness = document.get("harness")
    if harness is not None:
        validate_profile_document(harness)
    entries = document.get("entries")
    if not isinstance(entries, Mapping):
        raise ModelError("bench document key 'entries' must be a mapping")
    for scheduler, entry in entries.items():
        context = f"bench entries[{scheduler!r}]"
        if not isinstance(entry, Mapping):
            raise ModelError(f"{context} must be a mapping")
        value = entry.get("elapsed_seconds")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ModelError(
                f"{context}.elapsed_seconds has invalid value {value!r}"
            )
        # ``tree_cache`` is additive (absent from schema-1 documents
        # written before it existed), but must be well-formed when given.
        tree_cache = entry.get("tree_cache")
        if tree_cache is not None:
            if not isinstance(tree_cache, Mapping):
                raise ModelError(f"{context}.tree_cache must be a mapping")
            for key in ("hits", "misses", "hit_rate"):
                value = tree_cache.get(key)
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    raise ModelError(
                        f"{context}.tree_cache.{key} has invalid "
                        f"value {value!r}"
                    )
            reasons = tree_cache.get("reasons")
            if not isinstance(reasons, Mapping) or any(
                not isinstance(count, int) or isinstance(count, bool)
                for count in reasons.values()
            ):
                raise ModelError(
                    f"{context}.tree_cache.reasons must map reason "
                    f"codes to integer counts"
                )
        # ``timeline`` is additive (absent from schema-1 documents
        # written before it existed), but must be well-formed when given.
        timeline = entry.get("timeline")
        if timeline is not None:
            if not isinstance(timeline, Mapping):
                raise ModelError(f"{context}.timeline must be a mapping")
            for key in (
                "runs",
                "requests",
                "satisfied",
                "unsatisfied",
                "peak_link",
            ):
                value = timeline.get(key)
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ModelError(
                        f"{context}.timeline.{key} has invalid "
                        f"value {value!r}"
                    )
            value = timeline.get("peak_utilization")
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                raise ModelError(
                    f"{context}.timeline.peak_utilization has invalid "
                    f"value {value!r}"
                )
            value = timeline.get("top_rejection")
            if value is not None and not isinstance(value, str):
                raise ModelError(
                    f"{context}.timeline.top_rejection has invalid "
                    f"value {value!r}"
                )
        if entry.get("profile") is not None:
            validate_profile_document(entry["profile"])
        hotspots = entry.get("hotspots")
        if not isinstance(hotspots, list):
            raise ModelError(f"{context}.hotspots must be a list")
        for hotspot in hotspots:
            if not isinstance(hotspot, Mapping) or not isinstance(
                hotspot.get("path"), str
            ):
                raise ModelError(
                    f"{context}.hotspots entries must be mappings "
                    f"with a 'path'"
                )


def load_bench_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate a bench document from ``path``.

    Raises:
        ModelError: when the file is not valid JSON or fails
            :func:`validate_bench_document`.
        OSError: when the file cannot be read.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ModelError(f"{path} is not valid JSON: {exc}") from exc
    validate_bench_document(document)
    return document


def render_bench(document: Mapping[str, Any], top: int = 5) -> str:
    """A plain-text summary of one bench document."""
    lines: List[str] = []
    lines.append(
        f"bench {document['label']} (scale {document['scale']}, "
        f"python {document['environment'].get('python', '?')})"
    )
    cache = document["cache"]
    lines.append(
        f"  cells: {cache['cells']} "
        f"({cache['computed']} computed, {cache['cache_hits']} cached, "
        f"hit rate {cache['hit_rate']:.0%})"
    )
    for scheduler, entry in sorted(document["entries"].items()):
        lines.append(
            f"  {scheduler}: {entry['elapsed_seconds']:.2f}s scheduled"
        )
        tree_cache = entry.get("tree_cache")
        if tree_cache is not None:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(tree_cache["reasons"].items())
            )
            lines.append(
                f"    tree cache: {tree_cache['hits']} hits / "
                f"{tree_cache['misses']} misses "
                f"({tree_cache['hit_rate']:.0%})"
                + (f"  [{reasons}]" if reasons else "")
            )
        timeline = entry.get("timeline")
        if timeline is not None:
            rejection = timeline.get("top_rejection") or "-"
            lines.append(
                f"    timeline: {timeline['satisfied']}/"
                f"{timeline['requests']} satisfied, peak link "
                f"L{timeline['peak_link']} at "
                f"{timeline['peak_utilization']:.0%}, "
                f"top rejection {rejection}"
            )
        for hotspot in entry["hotspots"][:top]:
            lines.append(
                f"    {hotspot['path']:<24} "
                f"self {hotspot['self_wall_seconds']:8.3f}s "
                f"({hotspot['share']:5.1%})  x{hotspot['count']}"
            )
    return "\n".join(lines)
