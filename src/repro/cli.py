"""Command-line interface: ``datastage`` / ``python -m repro``.

Subcommands:

* ``generate`` — draw a random BADD-like scenario and write it to JSON;
* ``run`` — schedule a scenario with one heuristic/criterion pair, print
  the outcome, optionally save the schedule;
* ``bounds`` — print the §5.2 bounds of a scenario;
* ``figure`` — reproduce one of Figures 2–5 as an ASCII table;
* ``validate`` — check a saved schedule against a saved scenario;
* ``bench`` — run the pinned perf matrix under the span profiler and
  emit a schema-versioned ``BENCH_*.json`` document; ``bench compare``
  diffs two documents against regression thresholds (exit 0 flat /
  3 improved / 4 regressed).

The ``sweep`` and ``figure`` subcommands accept ``--workers`` (process
fan-out), ``--cache-dir`` (persistent run-record cache), and
``--no-cache`` (ignore an otherwise-configured cache); see
:mod:`repro.experiments.executor`.  They also accept the observability
flags ``--metrics PATH`` (collect per-scheduler metrics and write the
merged aggregate as schema-versioned JSON), ``--timeline PATH``
(collect simulated-time telemetry — link utilization, slack
trajectories, per-request forensics — and write the merged timeline
document as JSON), and ``--trace-out PATH`` (stream structured
scheduler events as JSON lines); see ``docs/OBSERVABILITY.md``.

The ``report`` subcommand doubles as the telemetry exporter: with
``--timeline TL.json`` it prints the plain-text digest and can render a
self-contained HTML report (``--html``) and a Perfetto-compatible
Chrome trace (``--chrome-trace``), optionally unified with a profile
document (``--profile``).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import List, Optional

from repro.analysis.gantt import render_gantt
from repro.analysis.stats import schedule_stats
from repro.baselines.bounds import possible_satisfy, upper_bound
from repro.core.evaluation import evaluate_schedule
from repro.core.validation import ScheduleValidator
from repro.cost.criteria import criterion_names
from repro.errors import (
    ConfigurationError,
    DataStagingError,
    ValidationError,
)
from repro.experiments.executor import SweepExecutor, SweepSummary
from repro.experiments.figures import figure2, heuristic_figure
from repro.experiments.report import build_report
from repro.experiments.runner import run_pair
from repro.experiments.scale import scale_by_name
from repro.experiments.tables import render_figure
from repro.heuristics.registry import heuristic_names, make_heuristic
from repro.observability import (
    JsonlTracer,
    render_link_utilization,
    render_scheduler_summaries,
    render_timeline,
    use_tracer,
    write_chrome_trace,
    write_html_report,
)
from repro.serialization import (
    load_scenario,
    load_schedule,
    profile_from_dict,
    run_metrics_to_dict,
    save_scenario,
    save_schedule,
    timeline_from_dict,
    timeline_to_dict,
)
from repro.staticcheck.cli import add_lint_arguments, run_lint
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator
from repro.workload.describe import describe, render_description
from repro.workload.presets import badd_theater, two_route_diamond


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep grid (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="run-record cache directory; repeat runs replay cached cells",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir and recompute every cell",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help=(
            "collect scheduler metrics, print per-scheduler summaries, "
            "and write the merged aggregate to PATH as JSON"
        ),
    )
    parser.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help=(
            "collect simulated-time telemetry, print its digest, and "
            "write the merged timeline document to PATH as JSON "
            "(render it with 'datastage report --timeline PATH')"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="stream structured scheduler events to PATH as JSON lines",
    )


def _executor_from_args(args: argparse.Namespace) -> SweepExecutor:
    cache_dir = None if args.no_cache else args.cache_dir
    return SweepExecutor(
        workers=args.workers,
        cache_dir=cache_dir,
        metrics=args.metrics is not None,
        timeline=args.timeline is not None,
    )


def _install_tracer(args: argparse.Namespace, stack: ExitStack) -> None:
    """Make a ``--trace-out`` stream the ambient tracer for the block.

    With ``--workers N > 1`` the stream only captures main-process events
    (cell accounting); scheduler events from worker processes are
    aggregated through ``--metrics`` instead.
    """
    if args.trace_out:
        tracer = stack.enter_context(JsonlTracer(args.trace_out))
        stack.enter_context(use_tracer(tracer))


def _emit_metrics(args: argparse.Namespace, executor: SweepExecutor) -> None:
    """Print metric summaries and write the merged aggregate JSON."""
    if not executor.metrics:
        return
    total = executor.metrics_total()
    if executor.metrics_by_scheduler:
        print(render_scheduler_summaries(executor.metrics_by_scheduler))
    if total.link_busy_seconds:
        print(render_link_utilization(total))
    Path(args.metrics).write_text(
        json.dumps(run_metrics_to_dict(total), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    print(f"metrics written to {args.metrics}")


def _emit_timeline(args: argparse.Namespace, executor: SweepExecutor) -> None:
    """Print the timeline digest and write the merged document JSON."""
    if not executor.timeline:
        return
    total = executor.timeline_total()
    print(render_timeline(total))
    Path(args.timeline).write_text(
        json.dumps(timeline_to_dict(total), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    print(f"timeline written to {args.timeline}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="datastage",
        description=(
            "Data staging scheduling heuristics for oversubscribed "
            "networks with priorities and deadlines (Theys et al., "
            "ICDCS 2000)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="draw a random scenario and write it to JSON"
    )
    generate.add_argument("output", help="output JSON path")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--profile",
        choices=("paper", "reduced", "tiny", "theater", "diamond"),
        default="reduced",
        help=(
            "generator parameter profile, or a hand-built preset "
            "(theater / diamond); default: reduced"
        ),
    )

    run = sub.add_parser(
        "run", help="schedule a scenario with one heuristic/criterion pair"
    )
    run.add_argument("scenario", help="scenario JSON path")
    run.add_argument(
        "--heuristic", choices=heuristic_names(), default="full_one"
    )
    run.add_argument("--criterion", choices=criterion_names(), default="C4")
    run.add_argument(
        "--log-ratio",
        type=float,
        default=0.0,
        help="log10(W_E/W_U); use inf or -inf for the extremes",
    )
    run.add_argument("--save-schedule", help="write the schedule to JSON")

    bounds = sub.add_parser("bounds", help="print the §5.2 bounds")
    bounds.add_argument("scenario", help="scenario JSON path")

    figure = sub.add_parser(
        "figure", help="reproduce a paper figure as an ASCII table"
    )
    figure.add_argument(
        "figure_id", choices=("2", "3", "4", "5"), help="paper figure number"
    )
    figure.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "full", "paper"),
        help="experiment scale (default: ci)",
    )
    _add_executor_flags(figure)

    validate = sub.add_parser(
        "validate", help="check a saved schedule against its scenario"
    )
    validate.add_argument("scenario", help="scenario JSON path")
    validate.add_argument("schedule", help="schedule JSON path")

    stats = sub.add_parser(
        "stats", help="summarize a saved schedule (utilization, slack)"
    )
    stats.add_argument("scenario", help="scenario JSON path")
    stats.add_argument("schedule", help="schedule JSON path")

    gantt = sub.add_parser(
        "gantt", help="render a saved schedule's link occupancy as ASCII"
    )
    gantt.add_argument("scenario", help="scenario JSON path")
    gantt.add_argument("schedule", help="schedule JSON path")
    gantt.add_argument("--width", type=int, default=72)

    describe = sub.add_parser(
        "describe", help="print workload statistics of a saved scenario"
    )
    describe.add_argument("scenario", help="scenario JSON path")

    sweep = sub.add_parser(
        "sweep",
        help="E-U sweep of one heuristic/criterion pair over random cases",
    )
    sweep.add_argument(
        "--heuristic", choices=heuristic_names(), default="full_one"
    )
    sweep.add_argument("--criterion", choices=criterion_names(), default="C4")
    sweep.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "full", "paper"),
    )
    _add_executor_flags(sweep)

    chaos = sub.add_parser(
        "chaos",
        help=(
            "sweep fault intensities over random cases and report "
            "per-heuristic deadline-miss deltas vs the healthy baseline"
        ),
    )
    chaos.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "full", "paper"),
        help="experiment scale (default: ci)",
    )
    chaos.add_argument(
        "--cases",
        type=int,
        default=None,
        help="cap the number of test cases (default: the scale's count)",
    )
    chaos.add_argument(
        "--heuristic",
        action="append",
        choices=heuristic_names(),
        dest="heuristics",
        help="heuristic to include (repeatable; default: all registered)",
    )
    chaos.add_argument(
        "--criterion", choices=criterion_names(), default="C4"
    )
    chaos.add_argument(
        "--log-ratio",
        type=float,
        default=2.0,
        help="log10(W_E/W_U) for all runs (default: 2.0)",
    )
    chaos.add_argument(
        "--intensities",
        default="0,0.25,0.5",
        help=(
            "comma-separated fault intensities in [0, 1]; 0 (the healthy "
            "baseline) is always included (default: 0,0.25,0.5)"
        ),
    )
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="base seed for generated fault plans (default: 0)",
    )
    chaos.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the robustness report to PATH as JSON",
    )
    _add_executor_flags(chaos)

    bench = sub.add_parser(
        "bench",
        help=(
            "run the pinned perf matrix under the span profiler and "
            "emit a BENCH JSON document; 'bench compare A B' diffs two "
            "documents (exit 0 flat / 3 improved / 4 regressed)"
        ),
    )
    bench.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "full", "paper"),
        help="experiment scale of the matrix (default: ci)",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the bench document to PATH as JSON",
    )
    bench.add_argument(
        "--label",
        default=None,
        help="document label (default: the scale name)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the matrix (default: 1, serial)",
    )
    bench.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "run-record cache directory; replayed cells contribute "
            "their original phase timings"
        ),
    )
    bench.add_argument(
        "--fault-intensity",
        type=float,
        default=0.0,
        help=(
            "run the matrix under generated fault plans of this "
            "intensity (default: 0, healthy)"
        ),
    )
    bench.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="base seed for generated fault plans (default: 0)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command")
    compare = bench_sub.add_parser(
        "compare",
        help="diff two bench documents against regression thresholds",
    )
    compare.add_argument("baseline", help="baseline bench JSON path")
    compare.add_argument("candidate", help="candidate bench JSON path")
    compare.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="fractional slowdown classified REGRESSED (default: 0.20)",
    )
    compare.add_argument(
        "--min-improvement",
        type=float,
        default=0.20,
        help="fractional speedup classified IMPROVED (default: 0.20)",
    )
    compare.add_argument(
        "--noise-floor",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help=(
            "phases under this wall time on both sides are always FLAT "
            "(default: 0.05)"
        ),
    )
    compare.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI smoke mode)",
    )
    compare.add_argument(
        "--fail-on-regression",
        action="store_true",
        help=(
            "exit nonzero only on a REGRESSED verdict — IMPROVED and "
            "FLAT both map to 0 (the CI perf gate)"
        ),
    )

    report = sub.add_parser(
        "report",
        help=(
            "assemble recorded benchmark artifacts into markdown, or — "
            "with --timeline — render a timeline document as HTML and "
            "Chrome trace-event JSON"
        ),
    )
    report.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="results directory written by the benchmarks",
    )
    report.add_argument(
        "--scale",
        default="ci",
        choices=("ci", "full", "paper"),
    )
    report.add_argument("--output", help="write to a file instead of stdout")
    report.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help=(
            "timeline JSON written by a sweep/figure/chaos run's "
            "--timeline flag; switches the subcommand to telemetry mode"
        ),
    )
    report.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help=(
            "optional profile JSON unified into the Chrome trace as an "
            "aggregate flame (telemetry mode only)"
        ),
    )
    report.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="write the self-contained HTML report to PATH",
    )
    report.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help=(
            "write Chrome trace-event JSON to PATH (load in Perfetto or "
            "chrome://tracing)"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "run the repro.staticcheck domain lint (rules R0-R9, "
            "SARIF export, baseline ratchet)"
        ),
    )
    add_lint_arguments(lint)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    presets = {"theater": badd_theater, "diamond": two_route_diamond}
    if args.profile in presets:
        scenario = presets[args.profile]()
    else:
        profiles = {
            "paper": GeneratorConfig.paper,
            "reduced": GeneratorConfig.reduced,
            "tiny": GeneratorConfig.tiny,
        }
        generator = ScenarioGenerator(profiles[args.profile]())
        scenario = generator.generate(args.seed)
    save_scenario(scenario, args.output)
    print(
        f"wrote {scenario.name}: {scenario.network.machine_count} machines, "
        f"{scenario.item_count} items, {scenario.request_count} requests "
        f"-> {args.output}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    record = run_pair(
        scenario, args.heuristic, args.criterion, args.log_ratio
    )
    print(
        f"{record.scheduler} @ log10(E-U)={record.eu_label}: "
        f"weighted sum {record.weighted_sum:g} "
        f"({record.satisfied_count}/{sum(record.total_by_priority)} "
        f"requests), {record.steps} steps, "
        f"{record.dijkstra_runs} Dijkstra runs, "
        f"{record.elapsed_seconds:.2f}s"
    )
    if args.save_schedule:
        scheduler = make_heuristic(
            args.heuristic, args.criterion, args.log_ratio
        )
        result = scheduler.run(scenario)
        save_schedule(result.schedule, args.save_schedule)
        print(f"schedule written to {args.save_schedule}")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    print(f"upper_bound      {upper_bound(scenario):g}")
    print(f"possible_satisfy {possible_satisfy(scenario):g}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = scale_by_name(args.scale)
    generator = ScenarioGenerator(scale.config)
    scenarios = generator.generate_suite(scale.cases, scale.base_seed)
    with ExitStack() as stack:
        _install_tracer(args, stack)
        executor = stack.enter_context(_executor_from_args(args))
        if args.figure_id == "2":
            data = figure2(
                scenarios, scale.log_ratios, executor=executor
            )
        else:
            heuristic = {"3": "partial", "4": "full_one", "5": "full_all"}[
                args.figure_id
            ]
            data = heuristic_figure(
                scenarios, heuristic, scale.log_ratios, executor=executor
            )
    print(render_figure(data))
    _emit_metrics(args, executor)
    _emit_timeline(args, executor)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    schedule = load_schedule(args.schedule)
    try:
        ScheduleValidator(scenario).validate(schedule)
    except ValidationError as exc:
        print(f"INVALID: {exc}")
        return 1
    effect = evaluate_schedule(scenario, schedule)
    print(f"valid; {effect}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    schedule = load_schedule(args.schedule)
    stats = schedule_stats(scenario, schedule)
    print(f"steps:                 {stats.steps}")
    print(f"deliveries:            {stats.deliveries}")
    print(f"bytes transferred:     {stats.bytes_transferred:.0f}")
    print(f"mean link utilization: {stats.mean_link_utilization:.4f}")
    print(f"max link utilization:  {stats.max_link_utilization:.4f}")
    print(f"mean delivery slack:   {stats.latency.mean_slack:.1f}s")
    print(f"min delivery slack:    {stats.latency.min_slack:.1f}s")
    print(f"mean hops/delivery:    {stats.latency.mean_hops:.2f}")
    print(f"peak storage fraction: {stats.peak_storage_fraction:.4f}")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    schedule = load_schedule(args.schedule)
    print(render_gantt(scenario, schedule, width=args.width))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    scenario = load_scenario(args.scenario)
    print(render_description(describe(scenario)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.aggregate import mean_by_scheduler
    from repro.experiments.sweep import resolve_ratios, sweep_pair
    from repro.experiments.tables import render_table

    scale = scale_by_name(args.scale)
    generator = ScenarioGenerator(scale.config)
    scenarios = generator.generate_suite(scale.cases, scale.base_seed)
    grid = resolve_ratios(scale.log_ratios)
    with ExitStack() as stack:
        _install_tracer(args, stack)
        executor = stack.enter_context(_executor_from_args(args))
        records = sweep_pair(
            scenarios, args.heuristic, args.criterion, grid, executor
        )
        summary = executor.last_summary
    means = mean_by_scheduler(records)
    labels = [weights.label() for weights in grid]
    scheduler = records[0].scheduler
    eu_labels = {record.eu_label for record in records}
    row = [scheduler]
    for label in labels:
        key = label if label in eu_labels else "-"
        row.append(f"{means[(scheduler, key)].mean:.1f}")
    print(
        render_table(
            ["series"] + labels,
            [row],
            title=(
                f"E-U sweep, {scale.cases} cases at scale {scale.name}"
            ),
        )
    )
    _print_summary(summary)
    _emit_metrics(args, executor)
    _emit_timeline(args, executor)
    return 0


def _print_summary(summary: Optional[SweepSummary]) -> None:
    """Print the executor's cell accounting, flagging degraded runs."""
    if summary is None:
        return
    print(
        f"[{summary.cells} cells: {summary.computed} computed, "
        f"{summary.cache_hits} cached; {summary.wall_seconds:.2f}s "
        f"wall, speedup {summary.speedup:.1f}x]"
    )
    if summary.degraded:
        print(
            f"[degraded mode: {summary.retries} transient retries, "
            f"{summary.quarantined} cache records quarantined]"
        )


def _parse_intensities(text: str) -> List[float]:
    values: List[float] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            values.append(float(token))
        except ValueError:
            raise ConfigurationError(
                f"--intensities expects comma-separated floats, got "
                f"{token!r}"
            ) from None
    if not values:
        raise ConfigurationError("--intensities must name at least one value")
    return values


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import (
        chaos_report_to_dict,
        render_chaos_report,
        run_chaos,
    )

    intensities = _parse_intensities(args.intensities)
    scale = scale_by_name(args.scale)
    cases = scale.cases if args.cases is None else args.cases
    if cases < 1:
        raise ConfigurationError("--cases must be at least 1")
    generator = ScenarioGenerator(scale.config)
    scenarios = generator.generate_suite(cases, scale.base_seed)
    with ExitStack() as stack:
        _install_tracer(args, stack)
        executor = stack.enter_context(_executor_from_args(args))
        report = run_chaos(
            scenarios,
            heuristics=args.heuristics,
            criterion=args.criterion,
            log_ratio=args.log_ratio,
            intensities=intensities,
            fault_seed=args.fault_seed,
            executor=executor,
            scale=scale.name,
        )
        summary = executor.last_summary
    print(render_chaos_report(report))
    _print_summary(summary)
    if args.out:
        Path(args.out).write_text(
            json.dumps(
                chaos_report_to_dict(report), indent=2, sort_keys=True
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"chaos report written to {args.out}")
    _emit_metrics(args, executor)
    _emit_timeline(args, executor)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchmarks import (
        BenchMatrix,
        render_bench,
        run_bench,
        validate_bench_document,
    )

    if getattr(args, "bench_command", None) == "compare":
        return _cmd_bench_compare(args)
    matrix = BenchMatrix.pinned(
        args.scale,
        fault_intensity=args.fault_intensity,
        fault_seed=args.fault_seed,
    )
    document = run_bench(
        matrix,
        label=args.label or args.scale,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    validate_bench_document(document)
    print(render_bench(document))
    if args.out:
        Path(args.out).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"bench document written to {args.out}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.benchmarks import (
        EXIT_FLAT,
        EXIT_REGRESSED,
        Thresholds,
        compare_documents,
        load_bench_document,
        render_comparison,
        verdict_exit_code,
    )

    baseline = load_bench_document(args.baseline)
    candidate = load_bench_document(args.candidate)
    comparison = compare_documents(
        baseline,
        candidate,
        Thresholds(
            max_regression=args.max_regression,
            min_improvement=args.min_improvement,
            noise_floor_seconds=args.noise_floor,
        ),
    )
    print(render_comparison(comparison, baseline, candidate))
    if args.warn_only:
        return EXIT_FLAT
    code = verdict_exit_code(comparison.verdict)
    if args.fail_on_regression and code != EXIT_REGRESSED:
        return EXIT_FLAT
    return code


def _cmd_report(args: argparse.Namespace) -> int:
    if args.timeline is not None:
        return _cmd_report_timeline(args)
    if args.html or args.chrome_trace or args.profile:
        raise ConfigurationError(
            "--html/--chrome-trace/--profile require --timeline PATH"
        )
    text = build_report(args.results_dir, args.scale)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _load_json(path: str) -> dict:
    from repro.errors import ModelError

    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ModelError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ModelError(f"{path} must hold a JSON object")
    return document


def _cmd_report_timeline(args: argparse.Namespace) -> int:
    """Telemetry mode: render a saved timeline document."""
    timeline = timeline_from_dict(_load_json(args.timeline))
    profile = (
        profile_from_dict(_load_json(args.profile))
        if args.profile
        else None
    )
    print(render_timeline(timeline))
    if args.html:
        write_html_report(timeline, args.html, profile=profile)
        print(f"HTML report written to {args.html}")
    if args.chrome_trace:
        write_chrome_trace(timeline, args.chrome_trace, profile=profile)
        print(f"Chrome trace written to {args.chrome_trace}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "run": _cmd_run,
    "bounds": _cmd_bounds,
    "figure": _cmd_figure,
    "validate": _cmd_validate,
    "stats": _cmd_stats,
    "gantt": _cmd_gantt,
    "describe": _cmd_describe,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "lint": run_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except DataStagingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
