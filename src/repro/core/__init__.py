"""Core model of the basic data staging problem (paper §3).

This subpackage contains the immutable entities of the mathematical model
(machines, links, data items, requests, scenarios), the mutable scheduling
state, the schedule representation, and the independent feasibility
validator.  Everything else in the library — routing, cost criteria,
heuristics, the workload generator — is built on these types.
"""

from repro.core.data import DataItem, SourceLocation
from repro.core.evaluation import evaluate_satisfied, evaluate_schedule
from repro.core.intervals import Interval, IntervalSet
from repro.core.link import PhysicalLink, VirtualLink
from repro.core.machine import Machine
from repro.core.network import Network, machines_with_uniform_capacity
from repro.core.priority import (
    Priority,
    PriorityWeighting,
    WEIGHTING_1_5_10,
    WEIGHTING_1_10_100,
)
from repro.core.request import Request
from repro.core.scenario import Scenario, requests_from_tuples
from repro.core.schedule import (
    CommunicationStep,
    Delivery,
    Schedule,
    ScheduleEffect,
)
from repro.core.state import (
    BookingResult,
    CopyRecord,
    NetworkState,
    TransferPlan,
)
from repro.core.timeline import CapacityTimeline
from repro.core.validation import ScheduleValidator

__all__ = [
    "BookingResult",
    "CapacityTimeline",
    "CommunicationStep",
    "CopyRecord",
    "DataItem",
    "Delivery",
    "Interval",
    "IntervalSet",
    "Machine",
    "Network",
    "NetworkState",
    "PhysicalLink",
    "Priority",
    "PriorityWeighting",
    "Request",
    "Scenario",
    "Schedule",
    "ScheduleEffect",
    "ScheduleValidator",
    "SourceLocation",
    "TransferPlan",
    "VirtualLink",
    "WEIGHTING_1_5_10",
    "WEIGHTING_1_10_100",
    "evaluate_satisfied",
    "evaluate_schedule",
    "machines_with_uniform_capacity",
    "requests_from_tuples",
]
