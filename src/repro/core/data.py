"""Data items and their initial source locations.

A :class:`DataItem` is the model's ``δ[i]`` — a uniquely named block of
information with a size and one or more initial locations.  A
:class:`SourceLocation` is one entry of the data-location table:
``(Source[i,j], δst[i,j])`` — the machine holding the copy and the time at
which the copy becomes available there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core import units
from repro.errors import ModelError


@dataclass(frozen=True)
class SourceLocation:
    """One initial location of a data item.

    Attributes:
        machine: index of the machine holding the initial copy.
        available_from: ``δst`` — the time the copy exists on that machine.
    """

    machine: int
    available_from: float = 0.0

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ModelError(
                f"source machine index must be >= 0, got {self.machine}"
            )
        if self.available_from < 0:
            raise ModelError(
                f"source availability time must be >= 0, "
                f"got {self.available_from}"
            )


@dataclass(frozen=True)
class DataItem:
    """A uniquely named data item ``δ[i]`` with its initial locations.

    Attributes:
        item_id: index of the item within its scenario (the ``i`` of
            ``δ[i]``); unique per scenario.
        name: the distinctive identifier of the item (e.g.
            ``"weather-map-europe-1400"``); unique per scenario.
        size: ``|δ[i]|`` in bytes.
        sources: the initial locations; at least one, with distinct machines.
    """

    item_id: int
    name: str
    size: float
    sources: Tuple[SourceLocation, ...]

    def __post_init__(self) -> None:
        if self.item_id < 0:
            raise ModelError(f"item id must be >= 0, got {self.item_id}")
        if not self.name:
            raise ModelError("data items need a non-empty name")
        if self.size <= 0:
            raise ModelError(
                f"data item {self.name!r} size must be positive, "
                f"got {self.size}"
            )
        sources = tuple(self.sources)
        object.__setattr__(self, "sources", sources)
        if not sources:
            raise ModelError(f"data item {self.name!r} has no sources")
        machines = [src.machine for src in sources]
        if len(set(machines)) != len(machines):
            raise ModelError(
                f"data item {self.name!r} lists machine(s) "
                f"{sorted(machines)} more than once as a source"
            )

    @property
    def source_machines(self) -> Tuple[int, ...]:
        """Indices of the machines initially holding the item."""
        return tuple(src.machine for src in self.sources)

    def earliest_availability(self) -> float:
        """The earliest ``δst`` across all initial locations."""
        return min(src.available_from for src in self.sources)

    def __str__(self) -> str:
        return f"{self.name}({units.format_size(self.size)})"
