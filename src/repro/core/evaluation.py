"""Scoring schedules against the paper's global optimization criterion.

The effect of a schedule is ``E[S_h] = -Σ W[Priority[j,k]]`` over all
satisfiable requests; the schedulers maximize the weighted sum (minimize the
effect).  :func:`evaluate_schedule` computes the weighted sum together with
per-priority-class satisfaction counts, which the §5.4 weighting-scheme and
priority-tier comparisons report.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.scenario import Scenario
from repro.core.schedule import Schedule, ScheduleEffect


def evaluate_satisfied(
    scenario: Scenario, satisfied_request_ids: Iterable[int]
) -> ScheduleEffect:
    """Score an explicit set of satisfied request ids.

    Args:
        scenario: the problem instance (supplies priorities and weighting).
        satisfied_request_ids: ids of the requests considered satisfied.

    Returns:
        The weighted sum and per-class counts as a
        :class:`~repro.core.schedule.ScheduleEffect`.
    """
    classes = scenario.weighting.highest_priority + 1
    satisfied_counts = [0] * classes
    total_counts = [0] * classes
    for request in scenario.requests:
        total_counts[request.priority] += 1
    weighted_sum = 0.0
    # Sorted so the float summation order (and thus the exact weighted
    # sum) is independent of the caller's iteration order.
    for request_id in sorted(set(satisfied_request_ids)):
        request = scenario.request(request_id)
        satisfied_counts[request.priority] += 1
        weighted_sum += scenario.weighting.weight(request.priority)
    return ScheduleEffect(
        weighted_sum=weighted_sum,
        satisfied_by_priority=tuple(satisfied_counts),
        total_by_priority=tuple(total_counts),
    )


def evaluate_schedule(scenario: Scenario, schedule: Schedule) -> ScheduleEffect:
    """Score a schedule by its recorded deliveries."""
    return evaluate_satisfied(scenario, schedule.satisfied_request_ids())
