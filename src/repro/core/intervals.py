"""Half-open time intervals and sorted disjoint interval sets.

Intervals are half-open ``[start, end)`` so that back-to-back bookings
(``[0, 5)`` then ``[5, 9)``) do not collide.  :class:`IntervalSet` keeps a
sorted list of pairwise-disjoint intervals and supports the three operations
the scheduler needs:

* overlap queries (is a candidate booking free?),
* insertion of a new busy interval,
* earliest-fit search: the first start time ``>= earliest`` at which a gap of
  a given duration exists inside a bounding window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.units import duration_is_zero


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)`` in canonical seconds.

    Raises:
        ValueError: if ``end`` precedes ``start``.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True for zero-length intervals, which overlap nothing."""
        return self.end <= self.start

    def contains(self, t: float) -> bool:
        """True if time ``t`` lies inside the half-open interval."""
        return self.start <= t < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True if ``other`` lies entirely within this interval."""
        if other.is_empty():
            return self.start <= other.start <= self.end
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True if the two half-open intervals share any instant."""
        if self.is_empty() or other.is_empty():
            return False
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The overlapping sub-interval, or ``None`` if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def shifted(self, delta: float) -> "Interval":
        """A copy translated by ``delta`` seconds."""
        return Interval(self.start + delta, self.end + delta)

    def __repr__(self) -> str:
        return f"Interval({self.start:g}, {self.end:g})"


class IntervalSet:
    """A mutable, sorted collection of pairwise-disjoint intervals.

    Used for virtual-link busy time.  Insertion of an interval overlapping an
    existing member raises :class:`ValueError` — the scheduler must query
    :meth:`is_free` / :meth:`earliest_fit` first, so an overlapping insert is
    a logic error worth failing loudly on.
    """

    __slots__ = ("_starts", "_intervals")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: List[float] = []
        self._intervals: List[Interval] = []
        for interval in sorted(intervals):
            self.add(interval)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __contains__(self, interval: Interval) -> bool:
        idx = bisect.bisect_left(self._starts, interval.start)
        return idx < len(self._intervals) and self._intervals[idx] == interval

    def __repr__(self) -> str:
        return f"IntervalSet({self._intervals!r})"

    def copy(self) -> "IntervalSet":
        """An independent copy (intervals themselves are immutable)."""
        clone = IntervalSet()
        clone._starts = list(self._starts)
        clone._intervals = list(self._intervals)
        return clone

    def total_duration(self) -> float:
        """Sum of the durations of all member intervals."""
        return sum(interval.duration for interval in self._intervals)

    def is_free(self, candidate: Interval) -> bool:
        """True if ``candidate`` overlaps no member interval."""
        if candidate.is_empty():
            return True
        # The only members that can overlap are the one starting at or before
        # the candidate and the ones starting inside it.
        idx = bisect.bisect_right(self._starts, candidate.start)
        if idx > 0 and self._intervals[idx - 1].overlaps(candidate):
            return False
        while idx < len(self._intervals):
            member = self._intervals[idx]
            if member.start >= candidate.end:
                break
            if member.overlaps(candidate):
                return False
            idx += 1
        return True

    def add(self, interval: Interval) -> None:
        """Insert a new busy interval.

        Raises:
            ValueError: if the interval overlaps an existing member.
        """
        if interval.is_empty():
            return
        if not self.is_free(interval):
            raise ValueError(
                f"{interval!r} overlaps an existing interval in {self!r}"
            )
        idx = bisect.bisect_left(self._starts, interval.start)
        self._starts.insert(idx, interval.start)
        self._intervals.insert(idx, interval)

    def remove(self, interval: Interval) -> None:
        """Remove an exact member interval.

        Raises:
            KeyError: if the exact interval is not a member.
        """
        idx = bisect.bisect_left(self._starts, interval.start)
        if idx < len(self._intervals) and self._intervals[idx] == interval:
            del self._starts[idx]
            del self._intervals[idx]
            return
        raise KeyError(f"{interval!r} is not a member of the set")

    def earliest_fit(
        self,
        duration: float,
        window: Interval,
        earliest: float = float("-inf"),
    ) -> Optional[float]:
        """Earliest start ``>= max(window.start, earliest)`` of a free gap.

        The returned start time ``s`` guarantees ``[s, s + duration)`` is
        disjoint from every member interval and contained in ``window``.
        Returns ``None`` when no such start exists.

        Args:
            duration: required gap length in seconds (must be >= 0).
            window: bounding availability window (e.g. a virtual link's
                ``[Lst, Let)``).
            earliest: additional lower bound on the start time (e.g. the
                moment the sender holds the data item).
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        cursor = max(window.start, earliest)
        if cursor + duration > window.end:
            return None
        if duration_is_zero(duration):
            # A zero-length booking overlaps nothing, but its start must
            # still lie *inside* the half-open window: ``window.end`` is
            # not a member of ``[Lst, Let)``, so a cursor clamped to the
            # window's end (or an empty window) yields no fit.
            if cursor >= window.end:
                return None
            return cursor
        # Skip members ending at or before the cursor.
        idx = bisect.bisect_right(self._starts, cursor)
        if idx > 0 and self._intervals[idx - 1].end > cursor:
            # Cursor lands inside a member; move to its end.
            cursor = self._intervals[idx - 1].end
        while True:
            if cursor + duration > window.end:
                return None
            if idx >= len(self._intervals):
                return cursor
            member = self._intervals[idx]
            if member.start >= cursor + duration:
                return cursor
            cursor = max(cursor, member.end)
            idx += 1

    def intervals(self) -> Tuple[Interval, ...]:
        """The member intervals in ascending order (immutable snapshot)."""
        return tuple(self._intervals)
