"""Half-open time intervals and sorted disjoint interval sets.

Intervals are half-open ``[start, end)`` so that back-to-back bookings
(``[0, 5)`` then ``[5, 9)``) do not collide.  :class:`IntervalSet` keeps a
sorted list of pairwise-disjoint intervals and supports the three operations
the scheduler needs:

* overlap queries (is a candidate booking free?),
* insertion of a new busy interval,
* earliest-fit search: the first start time ``>= earliest`` at which a gap of
  a given duration exists inside a bounding window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.units import duration_is_zero


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)`` in canonical seconds.

    Raises:
        ValueError: if ``end`` precedes ``start``.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    def is_empty(self) -> bool:
        """True for zero-length intervals, which overlap nothing."""
        return self.end <= self.start

    def contains(self, t: float) -> bool:
        """True if time ``t`` lies inside the half-open interval."""
        return self.start <= t < self.end

    def contains_interval(self, other: "Interval") -> bool:
        """True if ``other`` lies entirely within this interval."""
        if other.is_empty():
            return self.start <= other.start <= self.end
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """True if the two half-open intervals share any instant."""
        if self.is_empty() or other.is_empty():
            return False
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> Optional["Interval"]:
        """The overlapping sub-interval, or ``None`` if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return Interval(start, end)

    def shifted(self, delta: float) -> "Interval":
        """A copy translated by ``delta`` seconds."""
        return Interval(self.start + delta, self.end + delta)

    def __repr__(self) -> str:
        return f"Interval({self.start:g}, {self.end:g})"


class IntervalSet:
    """A mutable, sorted collection of pairwise-disjoint intervals.

    Used for virtual-link busy time.  Insertion of an interval overlapping an
    existing member raises :class:`ValueError` — the scheduler must query
    :meth:`is_free` / :meth:`earliest_fit` first, so an overlapping insert is
    a logic error worth failing loudly on.
    """

    __slots__ = ("_starts", "_ends", "_intervals")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._intervals: List[Interval] = []
        for interval in sorted(intervals):
            self.add(interval)

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __contains__(self, interval: Interval) -> bool:
        idx = bisect.bisect_left(self._starts, interval.start)
        return idx < len(self._intervals) and self._intervals[idx] == interval

    def __repr__(self) -> str:
        return f"IntervalSet({self._intervals!r})"

    def copy(self) -> "IntervalSet":
        """An independent copy (intervals themselves are immutable).

        Built through ``__new__`` — the members are already sorted and
        pairwise disjoint, so re-validating them through ``add`` would be
        pure overhead on the clone-per-candidate paths (rollout,
        exhaustive search).
        """
        clone = IntervalSet.__new__(IntervalSet)
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        clone._intervals = list(self._intervals)
        return clone

    def total_duration(self) -> float:
        """Sum of the durations of all member intervals."""
        return sum(interval.duration for interval in self._intervals)

    def is_free(self, candidate: Interval) -> bool:
        """True if ``candidate`` overlaps no member interval."""
        if candidate.is_empty():
            return True
        return self.span_is_free(candidate.start, candidate.end)

    def span_is_free(self, start: float, end: float) -> bool:
        """Float-core overlap query over the half-open ``[start, end)``.

        Equivalent to :meth:`is_free` for a non-empty candidate, but takes
        the bounds as plain floats so hot callers need not build an
        :class:`Interval`.  Members are non-empty and pairwise disjoint, so
        the only candidates for overlap are the member starting at or
        before ``start`` (overlaps iff it ends after ``start``) and the
        first member starting after ``start`` (overlaps iff it starts
        before ``end``).
        """
        starts = self._starts
        idx = bisect.bisect_right(starts, start)
        if idx > 0 and self._ends[idx - 1] > start:
            return False
        return not (idx < len(starts) and starts[idx] < end)

    def add(self, interval: Interval) -> None:
        """Insert a new busy interval.

        Raises:
            ValueError: if the interval overlaps an existing member.
        """
        if interval.is_empty():
            return
        if not self.is_free(interval):
            raise ValueError(
                f"{interval!r} overlaps an existing interval in {self!r}"
            )
        idx = bisect.bisect_left(self._starts, interval.start)
        self._starts.insert(idx, interval.start)
        self._ends.insert(idx, interval.end)
        self._intervals.insert(idx, interval)

    def remove(self, interval: Interval) -> None:
        """Remove an exact member interval.

        Raises:
            KeyError: if the exact interval is not a member.
        """
        idx = bisect.bisect_left(self._starts, interval.start)
        if idx < len(self._intervals) and self._intervals[idx] == interval:
            del self._starts[idx]
            del self._ends[idx]
            del self._intervals[idx]
            return
        raise KeyError(f"{interval!r} is not a member of the set")

    def earliest_fit(
        self,
        duration: float,
        window: Interval,
        earliest: float = float("-inf"),
    ) -> Optional[float]:
        """Earliest start ``>= max(window.start, earliest)`` of a free gap.

        The returned start time ``s`` guarantees ``[s, s + duration)`` is
        disjoint from every member interval and contained in ``window``.
        Returns ``None`` when no such start exists.

        Args:
            duration: required gap length in seconds (must be >= 0).
            window: bounding availability window (e.g. a virtual link's
                ``[Lst, Let)``).
            earliest: additional lower bound on the start time (e.g. the
                moment the sender holds the data item).
        """
        return self.first_fit(duration, window.start, window.end, earliest)

    def first_fit(
        self,
        duration: float,
        window_start: float,
        window_end: float,
        earliest: float = float("-inf"),
    ) -> Optional[float]:
        """Float-core of :meth:`earliest_fit` (no :class:`Interval` input).

        Identical semantics, but the bounding window arrives as two plain
        floats and the scan reads the parallel ``_starts``/``_ends``
        lists, so the feasibility probes of
        :meth:`~repro.core.state.NetworkState.earliest_transfer` allocate
        nothing when they reject.

        Raises:
            ValueError: if ``duration`` is negative.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        cursor = max(window_start, earliest)
        if cursor + duration > window_end:
            return None
        if duration_is_zero(duration):
            # A zero-length booking overlaps nothing, but its start must
            # still lie *inside* the half-open window: ``window.end`` is
            # not a member of ``[Lst, Let)``, so a cursor clamped to the
            # window's end (or an empty window) yields no fit.
            if cursor >= window_end:
                return None
            return cursor
        starts = self._starts
        ends = self._ends
        count = len(starts)
        # Skip members ending at or before the cursor.
        idx = bisect.bisect_right(starts, cursor)
        if idx > 0 and ends[idx - 1] > cursor:
            # Cursor lands inside a member; move to its end.
            cursor = ends[idx - 1]
        while True:
            if cursor + duration > window_end:
                return None
            if idx >= count:
                return cursor
            member_start = starts[idx]
            if member_start >= cursor + duration:
                return cursor
            member_end = ends[idx]
            if member_end > cursor:
                cursor = member_end
            idx += 1

    def intervals(self) -> Tuple[Interval, ...]:
        """The member intervals in ascending order (immutable snapshot)."""
        return tuple(self._intervals)
