"""Physical and virtual communication links.

A *physical link* is a unidirectional transmission facility between two
machines that is available only part of the day (e.g. a satellite pass).  The
model represents each availability window of a physical link as a separate
*virtual link* ``L[i,j][k]`` with window ``[Lst, Let)``; all virtual links of
one physical link share its bandwidth and latency.  A bidirectional facility
is modelled as two physical links, one per direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core import units
from repro.core.intervals import Interval
from repro.errors import ModelError


@dataclass(frozen=True)
class VirtualLink:
    """One availability window of a physical link — the model's ``L[i,j][k]``.

    Attributes:
        link_id: identifier unique across the whole network (assigned by
            :class:`repro.core.network.Network`); used as the key for busy-
            interval bookkeeping.
        source: index of the sending machine ``M[i]``.
        destination: index of the receiving machine ``M[j]``.
        start: ``Lst[i,j][k]`` — the instant the window opens (seconds).
        end: ``Let[i,j][k]`` — the instant the window closes (seconds).
        bandwidth: bytes per second available inside the window.
        latency: fixed per-transfer overhead in seconds (network latency plus
            data-format conversion, per the paper's ``D[i,j][k]``).
        physical_id: index of the owning physical link, shared by sibling
            windows of the same facility (-1 when constructed stand-alone).
    """

    link_id: int
    source: int
    destination: int
    start: float
    end: float
    bandwidth: float
    latency: float = 0.0
    physical_id: int = -1

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ModelError(
                f"virtual link {self.link_id} loops on machine {self.source}"
            )
        if self.source < 0 or self.destination < 0:
            raise ModelError(
                f"virtual link {self.link_id} has a negative endpoint"
            )
        if self.end <= self.start:
            raise ModelError(
                f"virtual link {self.link_id} window [{self.start}, "
                f"{self.end}) is empty or inverted"
            )
        if self.bandwidth <= 0:
            raise ModelError(
                f"virtual link {self.link_id} bandwidth must be positive, "
                f"got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ModelError(
                f"virtual link {self.link_id} latency must be >= 0, "
                f"got {self.latency}"
            )

    @property
    def window(self) -> Interval:
        """The availability window ``[Lst, Let)`` as an interval."""
        return Interval(self.start, self.end)

    def transfer_seconds(
        self, size_bytes: float, bandwidth: Optional[float] = None
    ) -> float:
        """Communication time ``D`` for a data item of the given size.

        This is transmission time plus the link's fixed latency.  An
        explicit ``bandwidth`` overrides the link's nominal rate — the
        hook fault injection uses to price transfers on a degraded link
        (see :mod:`repro.faults`); everything downstream of the duration
        (window fitting, exclusivity, validation) is rate-agnostic.
        """
        rate = self.bandwidth if bandwidth is None else bandwidth
        return units.transfer_seconds(size_bytes, rate) + self.latency

    def can_ever_carry(self, size_bytes: float) -> bool:
        """True if an item of this size fits in the window at all."""
        return self.transfer_seconds(size_bytes) <= self.window.duration

    def __str__(self) -> str:
        return (
            f"L[{self.source},{self.destination}]#{self.link_id}"
            f"[{units.format_time(self.start)}..{units.format_time(self.end)}"
            f" @{units.format_size(self.bandwidth)}/s]"
        )


@dataclass(frozen=True)
class PhysicalLink:
    """A unidirectional transmission facility and its availability windows.

    Scenario generators build physical links first (choosing bandwidth,
    latency, and the daily availability pattern) and then derive the virtual
    links; the network only schedules on virtual links, but keeping the
    physical grouping allows reports such as "average links traversed".

    Attributes:
        physical_id: identifier unique within a network.
        source: index of the sending machine.
        destination: index of the receiving machine.
        bandwidth: bytes/second, shared by all windows.
        latency: per-transfer overhead in seconds, shared by all windows.
        windows: the availability windows, ascending and non-overlapping.
    """

    physical_id: int
    source: int
    destination: int
    bandwidth: float
    latency: float
    windows: Tuple[Interval, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ModelError(
                f"physical link {self.physical_id} loops on machine "
                f"{self.source}"
            )
        if self.bandwidth <= 0:
            raise ModelError(
                f"physical link {self.physical_id} bandwidth must be "
                f"positive, got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ModelError(
                f"physical link {self.physical_id} latency must be >= 0, "
                f"got {self.latency}"
            )
        windows = tuple(self.windows)
        object.__setattr__(self, "windows", windows)
        for earlier, later in zip(windows, windows[1:]):
            if later.start < earlier.end:
                raise ModelError(
                    f"physical link {self.physical_id} windows overlap or "
                    f"are unsorted: {earlier!r}, {later!r}"
                )

    def virtual_links(self, first_link_id: int) -> Tuple[VirtualLink, ...]:
        """Materialize one :class:`VirtualLink` per availability window.

        Args:
            first_link_id: network-wide id assigned to the first window;
                subsequent windows get consecutive ids.
        """
        return tuple(
            VirtualLink(
                link_id=first_link_id + k,
                source=self.source,
                destination=self.destination,
                start=window.start,
                end=window.end,
                bandwidth=self.bandwidth,
                latency=self.latency,
                physical_id=self.physical_id,
            )
            for k, window in enumerate(self.windows)
        )

    def __str__(self) -> str:
        return (
            f"P[{self.source}->{self.destination}]#{self.physical_id}"
            f"({len(self.windows)} windows)"
        )
