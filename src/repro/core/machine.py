"""Machines — the nodes ``M[i]`` of the communication system.

A machine may simultaneously act as a source of data items, an intermediate
staging node, and a requesting destination; the roles are determined by the
data-location and request tables, not by the machine object itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import units
from repro.errors import ModelError


@dataclass(frozen=True)
class Machine:
    """A node of the communication system.

    Attributes:
        index: the machine number ``i`` of ``M[i]``; unique within a network.
        capacity: available storage capacity in bytes (the ceiling of the
            free-capacity function ``Cap[i](t)``).
        name: optional human-readable label used in reports; defaults to
            ``"M[i]"``.
    """

    index: int
    capacity: float
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"machine index must be >= 0, got {self.index}")
        if self.capacity < 0:
            raise ModelError(
                f"machine capacity must be >= 0, got {self.capacity}"
            )
        if not self.name:
            object.__setattr__(self, "name", f"M[{self.index}]")

    def __str__(self) -> str:
        return f"{self.name}({units.format_size(self.capacity)})"
