"""The communication system's topology graph ``G_nt``.

A :class:`Network` owns the machines and physical links, materializes the
virtual links (one per availability window), and maintains the adjacency
indexes the routing layer needs:

* ``outgoing(i)`` — all virtual links leaving machine ``M[i]``;
* ``links_between(i, j)`` — all virtual links from ``M[i]`` to ``M[j]``
  (the model's ``L[i,j][0..Nl[i,j]-1]``);
* ``link(link_id)`` — lookup by network-wide virtual link id.

The network is immutable after construction; all time-varying scheduling
state (busy intervals, free capacity) lives in
:class:`repro.core.state.NetworkState`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.link import PhysicalLink, VirtualLink
from repro.core.machine import Machine
from repro.errors import ModelError


class Network:
    """An immutable communication system: machines plus links.

    Args:
        machines: the machines, whose ``index`` fields must form the dense
            range ``0..m-1`` (in any order).
        physical_links: the unidirectional facilities; their endpoints must
            reference existing machines and their ``physical_id`` fields must
            be unique.

    Raises:
        ModelError: on any structural inconsistency.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        physical_links: Sequence[PhysicalLink],
    ) -> None:
        machines = sorted(machines, key=lambda mach: mach.index)
        if not machines:
            raise ModelError("a network needs at least one machine")
        indices = [mach.index for mach in machines]
        if indices != list(range(len(machines))):
            raise ModelError(
                f"machine indices must be dense 0..m-1, got {indices}"
            )
        self._machines: Tuple[Machine, ...] = tuple(machines)

        seen_physical: Set[int] = set()
        for plink in physical_links:
            if plink.physical_id in seen_physical:
                raise ModelError(
                    f"duplicate physical link id {plink.physical_id}"
                )
            seen_physical.add(plink.physical_id)
            for endpoint in (plink.source, plink.destination):
                if endpoint >= len(machines):
                    raise ModelError(
                        f"physical link {plink.physical_id} references "
                        f"unknown machine {endpoint}"
                    )
        self._physical_links: Tuple[PhysicalLink, ...] = tuple(physical_links)

        virtual: List[VirtualLink] = []
        for plink in self._physical_links:
            virtual.extend(plink.virtual_links(first_link_id=len(virtual)))
        self._virtual_links: Tuple[VirtualLink, ...] = tuple(virtual)

        self._outgoing: Tuple[Tuple[VirtualLink, ...], ...] = tuple(
            tuple(vl for vl in virtual if vl.source == mach.index)
            for mach in self._machines
        )
        pair_index: Dict[Tuple[int, int], List[VirtualLink]] = {}
        for vlink in virtual:
            pair_index.setdefault(
                (vlink.source, vlink.destination), []
            ).append(vlink)
        self._pair_index: Dict[Tuple[int, int], Tuple[VirtualLink, ...]] = {
            pair: tuple(links) for pair, links in pair_index.items()
        }

    # -- basic accessors ----------------------------------------------------

    @property
    def machine_count(self) -> int:
        """The number of machines ``m``."""
        return len(self._machines)

    @property
    def machines(self) -> Tuple[Machine, ...]:
        """All machines, ordered by index."""
        return self._machines

    @property
    def physical_links(self) -> Tuple[PhysicalLink, ...]:
        """All physical links."""
        return self._physical_links

    @property
    def virtual_links(self) -> Tuple[VirtualLink, ...]:
        """All virtual links, ordered by ``link_id``."""
        return self._virtual_links

    def machine(self, index: int) -> Machine:
        """The machine ``M[index]``.

        Raises:
            ModelError: if the index is out of range.
        """
        if not 0 <= index < len(self._machines):
            raise ModelError(f"no machine with index {index}")
        return self._machines[index]

    def link(self, link_id: int) -> VirtualLink:
        """The virtual link with the given network-wide id.

        Raises:
            ModelError: if the id is out of range.
        """
        if not 0 <= link_id < len(self._virtual_links):
            raise ModelError(f"no virtual link with id {link_id}")
        return self._virtual_links[link_id]

    def outgoing(self, machine_index: int) -> Tuple[VirtualLink, ...]:
        """All virtual links whose source is ``M[machine_index]``."""
        if not 0 <= machine_index < len(self._machines):
            raise ModelError(f"no machine with index {machine_index}")
        return self._outgoing[machine_index]

    def links_between(
        self, source: int, destination: int
    ) -> Tuple[VirtualLink, ...]:
        """All virtual links from ``M[source]`` to ``M[destination]``."""
        return self._pair_index.get((source, destination), ())

    def out_degree(self, machine_index: int) -> int:
        """Number of distinct machines reachable over one physical link."""
        return len(
            {
                plink.destination
                for plink in self._physical_links
                if plink.source == machine_index
            }
        )

    # -- graph-level queries --------------------------------------------------

    def physical_adjacency(self) -> Dict[int, Set[int]]:
        """Directed adjacency over physical links (ignoring windows)."""
        adjacency: Dict[int, Set[int]] = {
            mach.index: set() for mach in self._machines
        }
        for plink in self._physical_links:
            adjacency[plink.source].add(plink.destination)
        return adjacency

    def is_strongly_connected(self) -> bool:
        """True if every machine can reach every other over physical links.

        The §5.3 generator guarantees this; the check itself is a plain
        double BFS (forward from machine 0 and over reversed edges).
        """
        if len(self._machines) == 1:
            return True
        forward = self.physical_adjacency()
        backward: Dict[int, Set[int]] = {
            mach.index: set() for mach in self._machines
        }
        for source, targets in forward.items():
            for target in targets:
                backward[target].add(source)
        return self._reaches_all(forward) and self._reaches_all(backward)

    def _reaches_all(self, adjacency: Dict[int, Set[int]]) -> bool:
        visited = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        return len(visited) == len(self._machines)

    def to_networkx(self) -> Any:
        """Export the virtual-link multigraph as a ``networkx.MultiDiGraph``.

        Nodes carry ``capacity``; edges carry the virtual link attributes.
        Intended for ad-hoc analysis and example notebooks, not used by the
        schedulers themselves.
        """
        import networkx as nx

        graph = nx.MultiDiGraph()
        for mach in self._machines:
            graph.add_node(mach.index, capacity=mach.capacity, name=mach.name)
        for vlink in self._virtual_links:
            graph.add_edge(
                vlink.source,
                vlink.destination,
                key=vlink.link_id,
                start=vlink.start,
                end=vlink.end,
                bandwidth=vlink.bandwidth,
                latency=vlink.latency,
                physical_id=vlink.physical_id,
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"Network(machines={len(self._machines)}, "
            f"physical_links={len(self._physical_links)}, "
            f"virtual_links={len(self._virtual_links)})"
        )


def machines_with_uniform_capacity(
    count: int, capacity: float
) -> Tuple[Machine, ...]:
    """Convenience constructor for ``count`` identical machines."""
    return tuple(Machine(index=i, capacity=capacity) for i in range(count))


def validate_links_reference_machines(
    machines: Iterable[Machine], links: Iterable[PhysicalLink]
) -> None:
    """Standalone validation used by scenario loaders before construction.

    Raises:
        ModelError: if any link endpoint is not a known machine index.
    """
    known = {mach.index for mach in machines}
    for plink in links:
        if plink.source not in known or plink.destination not in known:
            raise ModelError(
                f"physical link {plink.physical_id} references unknown "
                f"machine(s): {plink.source}->{plink.destination}"
            )
