"""Request priorities and priority weighting schemes.

The paper uses three priority classes (low / medium / high) and two weighting
schemes: ``W = (1, 5, 10)`` and ``W = (1, 10, 100)``.  The model supports any
number of classes ``0..P`` with arbitrary non-negative weights; the two paper
schemes are provided as ready-made constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ModelError


class Priority(enum.IntEnum):
    """The three-level priority scale used in the paper's experiments.

    Higher numeric value means more important (``HIGH`` is the paper's ``P``).
    """

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class PriorityWeighting:
    """Relative weights ``W[0..P]`` of the priority classes.

    ``weights[p]`` is the contribution of one satisfied priority-``p`` request
    to the objective (the negated schedule effect ``-E[S_h]``).

    Raises:
        ModelError: if no weights are given, any weight is negative, or the
            weights are not non-decreasing in priority (a higher priority
            class must never be worth less than a lower one).
    """

    weights: Tuple[float, ...]
    name: str = ""

    def __init__(self, weights: Sequence[float], name: str = "") -> None:
        weights = tuple(float(w) for w in weights)
        if not weights:
            raise ModelError("a weighting needs at least one priority class")
        if any(w < 0 for w in weights):
            raise ModelError(f"priority weights must be non-negative: {weights}")
        if any(a > b for a, b in zip(weights, weights[1:])):
            raise ModelError(
                f"priority weights must be non-decreasing: {weights}"
            )
        object.__setattr__(self, "weights", weights)
        object.__setattr__(
            self, "name", name or "-".join(f"{w:g}" for w in weights)
        )

    @property
    def highest_priority(self) -> int:
        """The paper's ``P`` — index of the most important class."""
        return len(self.weights) - 1

    def weight(self, priority: int) -> float:
        """``W[priority]`` for an integer or :class:`Priority` value.

        Raises:
            ModelError: if the priority is outside ``0..P``.
        """
        if not 0 <= priority <= self.highest_priority:
            raise ModelError(
                f"priority {priority} outside 0..{self.highest_priority}"
            )
        return self.weights[priority]

    def __str__(self) -> str:
        return self.name


#: The paper's first weighting scheme: low=1, medium=5, high=10.
WEIGHTING_1_5_10 = PriorityWeighting((1, 5, 10), name="1-5-10")

#: The paper's second weighting scheme: low=1, medium=10, high=100.
#: All figures in the paper use this scheme.
WEIGHTING_1_10_100 = PriorityWeighting((1, 10, 100), name="1-10-100")
