"""Data requests — the entries of the request table.

A :class:`Request` is one ``(Rq[j], Request[j,k], Priority[j,k], Rft[j,k])``
tuple: a destination machine asking for one data item with a priority and a
deadline.  Requests are identified by a scenario-wide ``request_id`` so that
schedules and results can reference them compactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.errors import ModelError


@dataclass(frozen=True)
class Request:
    """One request of the data-request table.

    Attributes:
        request_id: scenario-wide identifier (dense, starting at 0).
        item_id: the requested data item's ``item_id``.
        destination: index of the requesting machine ``Request[j,k]``.
        priority: integer priority class (0 = lowest; the weighting scheme
            maps classes to weights).
        deadline: ``Rft[j,k]`` — the instant after which delivery is useless.
    """

    request_id: int
    item_id: int
    destination: int
    priority: int
    deadline: float

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ModelError(
                f"request id must be >= 0, got {self.request_id}"
            )
        if self.item_id < 0:
            raise ModelError(
                f"request {self.request_id} has negative item id "
                f"{self.item_id}"
            )
        if self.destination < 0:
            raise ModelError(
                f"request {self.request_id} has negative destination "
                f"{self.destination}"
            )
        if self.priority < 0:
            raise ModelError(
                f"request {self.request_id} has negative priority "
                f"{self.priority}"
            )
        if self.deadline < 0:
            raise ModelError(
                f"request {self.request_id} has negative deadline "
                f"{self.deadline}"
            )

    def is_satisfied_by_arrival(self, arrival: float) -> bool:
        """True if delivery at ``arrival`` meets the deadline."""
        return arrival <= self.deadline

    def __str__(self) -> str:
        return (
            f"Rq#{self.request_id}(item={self.item_id} -> "
            f"M[{self.destination}], p={self.priority}, "
            f"by {units.format_time(self.deadline)})"
        )
