"""Scenarios: one complete instance of the basic data staging problem.

A :class:`Scenario` bundles the three tables of the mathematical model —
the communication system, the data-location table, and the data-request
table — together with the scheduling parameters that apply to the whole
instance (priority weighting, garbage-collection delay ``γ``, and the
scheduling horizon).  Scenarios are immutable; schedulers derive all mutable
state from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.data import DataItem
from repro.core.network import Network
from repro.core.priority import PriorityWeighting, WEIGHTING_1_10_100
from repro.core.request import Request
from repro.errors import ScenarioError


@dataclass(frozen=True)
class Scenario:
    """An immutable data-staging problem instance.

    Attributes:
        network: the communication system (machines + links).
        items: the data items ``δ[0..n-1]``; ``item_id`` fields must be the
            dense range ``0..n-1`` and names must be unique.
        requests: the request table; ``request_id`` fields must be dense.
        weighting: the priority weighting scheme ``W``.
        gc_delay: the paper's ``γ`` — seconds after an item's latest deadline
            at which intermediate copies are garbage-collected.
        horizon: end of the scheduling period in seconds; sources and
            destination copies are held until this time.
        name: optional label used in reports.
    """

    network: Network
    items: Tuple[DataItem, ...]
    requests: Tuple[Request, ...]
    weighting: PriorityWeighting = WEIGHTING_1_10_100
    gc_delay: float = 360.0
    horizon: float = 9000.0
    name: str = field(default="scenario")

    def __post_init__(self) -> None:
        object.__setattr__(self, "items", tuple(self.items))
        object.__setattr__(self, "requests", tuple(self.requests))
        self._validate()
        # Precomputed indexes (stored via object.__setattr__ because the
        # dataclass is frozen).  These are derived data, not part of the
        # scenario's identity.
        by_item: Dict[int, List[Request]] = {
            item.item_id: [] for item in self.items
        }
        for request in self.requests:
            by_item[request.item_id].append(request)
        object.__setattr__(
            self,
            "_requests_by_item",
            {item_id: tuple(reqs) for item_id, reqs in by_item.items()},
        )
        object.__setattr__(
            self,
            "_requests_by_id",
            {request.request_id: request for request in self.requests},
        )

    # -- validation ---------------------------------------------------------

    def _validate(self) -> None:
        item_ids = [item.item_id for item in self.items]
        if item_ids != list(range(len(self.items))):
            raise ScenarioError(
                f"item ids must be dense 0..n-1, got {item_ids}"
            )
        names = [item.name for item in self.items]
        if len(set(names)) != len(names):
            raise ScenarioError("data item names must be unique")
        machine_count = self.network.machine_count
        for item in self.items:
            for src in item.sources:
                if src.machine >= machine_count:
                    raise ScenarioError(
                        f"item {item.name!r} lists unknown source machine "
                        f"{src.machine}"
                    )
        request_ids = [request.request_id for request in self.requests]
        if request_ids != list(range(len(self.requests))):
            raise ScenarioError(
                f"request ids must be dense 0..rho-1, got {request_ids}"
            )
        seen_pairs = set()
        for request in self.requests:
            if request.item_id >= len(self.items):
                raise ScenarioError(
                    f"request {request.request_id} references unknown item "
                    f"{request.item_id}"
                )
            if request.destination >= machine_count:
                raise ScenarioError(
                    f"request {request.request_id} references unknown "
                    f"machine {request.destination}"
                )
            item = self.items[request.item_id]
            if request.destination in item.source_machines:
                raise ScenarioError(
                    f"request {request.request_id} destination "
                    f"M[{request.destination}] is already a source of item "
                    f"{item.name!r}"
                )
            pair = (request.item_id, request.destination)
            if pair in seen_pairs:
                raise ScenarioError(
                    f"machine M[{request.destination}] requests item "
                    f"{request.item_id} more than once"
                )
            seen_pairs.add(pair)
            if request.priority > self.weighting.highest_priority:
                raise ScenarioError(
                    f"request {request.request_id} priority "
                    f"{request.priority} exceeds weighting's highest class "
                    f"{self.weighting.highest_priority}"
                )
            if request.deadline > self.horizon:
                raise ScenarioError(
                    f"request {request.request_id} deadline "
                    f"{request.deadline} lies beyond the horizon "
                    f"{self.horizon}"
                )
        if self.gc_delay < 0:
            raise ScenarioError(f"gc_delay must be >= 0, got {self.gc_delay}")
        if self.horizon <= 0:
            raise ScenarioError(f"horizon must be > 0, got {self.horizon}")

    # -- derived accessors ----------------------------------------------------

    @property
    def item_count(self) -> int:
        """Number of distinct data items ``n``."""
        return len(self.items)

    @property
    def request_count(self) -> int:
        """Number of requests (the ``Σ Nrq[j]`` of the model)."""
        return len(self.requests)

    def item(self, item_id: int) -> DataItem:
        """The data item with the given id.

        Raises:
            ScenarioError: if the id is unknown.
        """
        if not 0 <= item_id < len(self.items):
            raise ScenarioError(f"no data item with id {item_id}")
        return self.items[item_id]

    def request(self, request_id: int) -> Request:
        """The request with the given id.

        Raises:
            ScenarioError: if the id is unknown.
        """
        requests: Mapping[int, Request] = self._requests_by_id  # type: ignore[attr-defined]
        if request_id not in requests:
            raise ScenarioError(f"no request with id {request_id}")
        return requests[request_id]

    def requests_for_item(self, item_id: int) -> Tuple[Request, ...]:
        """All requests for one data item (the item's ``Nrq`` entries)."""
        by_item: Mapping[int, Tuple[Request, ...]] = self._requests_by_item  # type: ignore[attr-defined]
        if item_id not in by_item:
            raise ScenarioError(f"no data item with id {item_id}")
        return by_item[item_id]

    def requested_item_ids(self) -> Tuple[int, ...]:
        """Ids of items with at least one request (the ``Rq`` set)."""
        return tuple(
            item.item_id
            for item in self.items
            if self.requests_for_item(item.item_id)
        )

    def latest_deadline(self, item_id: int) -> float:
        """The latest deadline among all requests for the item.

        Items with no requests report 0.0 (they are never transferred, so
        the value is only used for completeness).
        """
        requests = self.requests_for_item(item_id)
        if not requests:
            return 0.0
        return max(request.deadline for request in requests)

    def gc_release_time(self, item_id: int) -> float:
        """When intermediate copies of the item are garbage-collected.

        This is ``latest deadline + γ``, clamped to the horizon (a copy is
        never held beyond the scheduling period).
        """
        return min(self.latest_deadline(item_id) + self.gc_delay, self.horizon)

    def total_weighted_priority(self) -> float:
        """Weighted sum over *all* requests — the paper's loose upper bound."""
        return sum(
            self.weighting.weight(request.priority)
            for request in self.requests
        )

    def __repr__(self) -> str:
        return (
            f"Scenario({self.name!r}, machines="
            f"{self.network.machine_count}, items={len(self.items)}, "
            f"requests={len(self.requests)}, weighting={self.weighting})"
        )


def requests_from_tuples(
    entries: Sequence[Tuple[int, int, int, float]]
) -> Tuple[Request, ...]:
    """Build dense-id requests from ``(item_id, destination, priority,
    deadline)`` tuples, in order.  Convenience for tests and examples."""
    return tuple(
        Request(
            request_id=idx,
            item_id=item_id,
            destination=destination,
            priority=priority,
            deadline=deadline,
        )
        for idx, (item_id, destination, priority, deadline) in enumerate(
            entries
        )
    )
