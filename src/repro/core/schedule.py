"""Schedules — the output of every heuristic and baseline.

A schedule ``S_h`` is an ordered list of :class:`CommunicationStep` bookings
(item, sender, receiver, virtual link, transfer interval) plus the resulting
:class:`Delivery` records stating which requests were satisfied and when
their items arrived.  Schedules are plain data: all feasibility checking
lives in :mod:`repro.core.validation` and all scoring in
:mod:`repro.core.evaluation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core import units
from repro.errors import ModelError


@dataclass(frozen=True)
class CommunicationStep:
    """One booked transfer of a data item over a virtual link.

    Attributes:
        step_id: position of the step in scheduling order (dense from 0).
        item_id: the transferred data item.
        source: sending machine index (must hold a copy at ``start``).
        destination: receiving machine index.
        link_id: the virtual link carrying the transfer.
        start: transfer start time in seconds.
        end: transfer completion time (item available at ``destination``).
    """

    step_id: int
    item_id: int
    source: int
    destination: int
    link_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ModelError(
                f"step {self.step_id} ends ({self.end}) before it starts "
                f"({self.start})"
            )
        if self.source == self.destination:
            raise ModelError(
                f"step {self.step_id} sends item {self.item_id} from machine "
                f"{self.source} to itself"
            )

    @property
    def duration(self) -> float:
        """Transfer duration in seconds."""
        return self.end - self.start

    def __str__(self) -> str:
        return (
            f"step#{self.step_id}: item {self.item_id} "
            f"M[{self.source}]->M[{self.destination}] via link "
            f"{self.link_id} @[{units.format_time(self.start)}, "
            f"{units.format_time(self.end)}]"
        )


@dataclass(frozen=True)
class Delivery:
    """A satisfied request: the item reached its requester by the deadline.

    Attributes:
        request_id: the satisfied request.
        arrival: when the item arrived at the requesting machine.
        hops: number of communication steps on the delivery path from the
            source copy that ultimately served this request (used for the
            "average number of links traversed" report).
    """

    request_id: int
    arrival: float
    hops: int

    def __post_init__(self) -> None:
        if self.hops < 0:
            raise ModelError(
                f"delivery for request {self.request_id} has negative hop "
                f"count {self.hops}"
            )


class Schedule:
    """An append-only record of communication steps and deliveries.

    Heuristics build a schedule incrementally via :meth:`add_step` and
    :meth:`add_delivery`; afterwards the object is treated as immutable
    result data.
    """

    def __init__(self, name: str = "") -> None:
        self._name = name
        self._steps: List[CommunicationStep] = []
        self._deliveries: Dict[int, Delivery] = {}

    @property
    def name(self) -> str:
        """Label of the producing heuristic (for reports)."""
        return self._name

    @property
    def steps(self) -> Tuple[CommunicationStep, ...]:
        """All communication steps in scheduling order."""
        return tuple(self._steps)

    @property
    def deliveries(self) -> Mapping[int, Delivery]:
        """Deliveries keyed by ``request_id``."""
        return dict(self._deliveries)

    @property
    def step_count(self) -> int:
        """Number of booked communication steps."""
        return len(self._steps)

    def satisfied_request_ids(self) -> Tuple[int, ...]:
        """Ids of satisfied requests, ascending."""
        return tuple(sorted(self._deliveries))

    def is_satisfied(self, request_id: int) -> bool:
        """True if the request has a delivery record."""
        return request_id in self._deliveries

    def delivery(self, request_id: int) -> Optional[Delivery]:
        """The delivery record for a request, or ``None``."""
        return self._deliveries.get(request_id)

    def add_step(
        self,
        item_id: int,
        source: int,
        destination: int,
        link_id: int,
        start: float,
        end: float,
    ) -> CommunicationStep:
        """Append a transfer booking and return the created step."""
        step = CommunicationStep(
            step_id=len(self._steps),
            item_id=item_id,
            source=source,
            destination=destination,
            link_id=link_id,
            start=start,
            end=end,
        )
        self._steps.append(step)
        return step

    def add_delivery(self, request_id: int, arrival: float, hops: int) -> None:
        """Record that a request was satisfied.

        Raises:
            ModelError: if the request already has a delivery record (each
                request is satisfied at most once).
        """
        if request_id in self._deliveries:
            raise ModelError(
                f"request {request_id} already has a delivery record"
            )
        self._deliveries[request_id] = Delivery(
            request_id=request_id, arrival=arrival, hops=hops
        )

    def remove_delivery(self, request_id: int) -> None:
        """Retract a delivery record (dynamic copy-loss events only).

        Only the dynamic simulation driver uses this — a destination that
        loses its copy before the deadline must be re-served.  Static
        schedules never retract deliveries.

        Raises:
            ModelError: if the request has no delivery record.
        """
        if request_id not in self._deliveries:
            raise ModelError(
                f"request {request_id} has no delivery record to remove"
            )
        del self._deliveries[request_id]

    def steps_for_item(self, item_id: int) -> Tuple[CommunicationStep, ...]:
        """All steps transferring one data item, in scheduling order."""
        return tuple(
            step for step in self._steps if step.item_id == item_id
        )

    def total_bytes_transferred(self, item_sizes: Mapping[int, float]) -> float:
        """Total bytes moved, given a map from item id to size."""
        return sum(item_sizes[step.item_id] for step in self._steps)

    def average_hops_per_delivery(self) -> float:
        """Mean number of links traversed per satisfied request.

        Returns 0.0 when nothing was delivered.
        """
        if not self._deliveries:
            return 0.0
        total = sum(d.hops for d in self._deliveries.values())
        return total / len(self._deliveries)

    def extend_from(self, steps: Iterable[CommunicationStep]) -> None:
        """Re-append foreign steps (renumbering); used by serialization."""
        for step in steps:
            self.add_step(
                item_id=step.item_id,
                source=step.source,
                destination=step.destination,
                link_id=step.link_id,
                start=step.start,
                end=step.end,
            )

    def __repr__(self) -> str:
        return (
            f"Schedule({self._name!r}, steps={len(self._steps)}, "
            f"deliveries={len(self._deliveries)})"
        )


@dataclass(frozen=True)
class ScheduleEffect:
    """The evaluated quality of a schedule (see §3 of the paper).

    Attributes:
        weighted_sum: ``-E[S_h]`` — the weighted sum of priorities of the
            satisfied requests (larger is better).
        satisfied_by_priority: count of satisfied requests per priority
            class, indexed by priority value.
        total_by_priority: count of all requests per priority class.
    """

    weighted_sum: float
    satisfied_by_priority: Tuple[int, ...]
    total_by_priority: Tuple[int, ...]

    @property
    def effect(self) -> float:
        """The paper's ``E[S_h]`` (negative of the weighted sum)."""
        return -self.weighted_sum

    @property
    def satisfied_count(self) -> int:
        """Total number of satisfied requests."""
        return sum(self.satisfied_by_priority)

    @property
    def total_count(self) -> int:
        """Total number of requests in the scenario."""
        return sum(self.total_by_priority)

    def satisfaction_rate(self, priority: Optional[int] = None) -> float:
        """Fraction of requests satisfied, overall or for one class."""
        if priority is None:
            total = self.total_count
            done = self.satisfied_count
        else:
            total = self.total_by_priority[priority]
            done = self.satisfied_by_priority[priority]
        return done / total if total else 0.0

    def __str__(self) -> str:
        per_class = ", ".join(
            f"p{p}:{s}/{t}"
            for p, (s, t) in enumerate(
                zip(self.satisfied_by_priority, self.total_by_priority)
            )
        )
        return f"weighted_sum={self.weighted_sum:g} ({per_class})"
