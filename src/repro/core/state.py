"""Mutable scheduling state over an immutable scenario.

:class:`NetworkState` is the single authority on resource availability while
a schedule is being built.  It tracks:

* per virtual link — the booked busy intervals (a link carries one transfer
  at a time);
* per machine — the free-storage timeline ``Cap[i](t)``;
* per data item — the set of machines currently holding a copy, when each
  copy became available, and when it will be garbage-collected;
* which requests have been satisfied so far;
* monotonically increasing *revision counters* per link, per machine, and
  per item, which the heuristics use to decide whether a cached
  shortest-path tree is still valid;
* an append-only *mutation journal* of availability-removing changes
  (bookings and outage cutoffs) plus a global *capacity epoch* for
  availability-adding ones, which the
  :class:`~repro.heuristics.base.TreeCache` replays to revalidate cached
  trees lazily instead of recomputing them;
* a per-quiescent-period memo of :meth:`earliest_transfer` outcomes,
  cleared on every mutation, so repeated probes of the same
  ``(item, link, sender_ready)`` key between bookings are answered
  without re-searching.

All transfers are booked through :meth:`book_transfer`, which enforces every
model constraint (window containment, link exclusivity, receiver capacity
over the full residency, sender residency) and appends the step — plus any
resulting deliveries — to the state's :class:`~repro.core.schedule.Schedule`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.intervals import Interval, IntervalSet
from repro.core.link import VirtualLink
from repro.core.request import Request
from repro.core.schedule import Schedule
from repro.core.scenario import Scenario
from repro.core.timeline import CapacityTimeline
from repro.errors import InfeasibleTransferError, SchedulingError
from repro.observability.tracer import (
    REASON_ALREADY_AT_DESTINATION,
    REASON_LINK_BUSY,
    REASON_LINK_CUTOFF,
    REASON_NO_LINK_SLOT,
    REASON_NO_SENDER_COPY,
    REASON_NO_STORAGE,
    REASON_SENDER_NOT_AVAILABLE,
    REASON_SENDER_RELEASED,
    REASON_STORAGE_CONFLICT,
    REASON_WINDOW_CLOSED,
    REASON_WINDOW_ESCAPE,
    Tracer,
    current_tracer,
)
from repro.observability.profiling import PHASE_GC, span
from repro.faults.context import current_faults
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class CopyRecord:
    """One copy of a data item residing on a machine.

    Attributes:
        machine: the holding machine's index.
        available_from: the instant the copy can be forwarded or consumed.
        release: the instant the copy disappears (garbage collection for
            intermediates; the scheduling horizon for sources/destinations).
        hops: number of communication steps between the original source and
            this copy (0 for initial sources).
    """

    machine: int
    available_from: float
    release: float
    hops: int


#: Journal kind: a transfer was booked (link busy interval + receiver
#: storage reservation over the copy's residency).
MUTATION_BOOKING = "booking"
#: Journal kind: a dynamic outage tightened a virtual link's cutoff.
MUTATION_CUTOFF = "cutoff"


@dataclass(frozen=True)
class MutationRecord:
    """One availability-removing state mutation, for lazy cache revalidation.

    Only mutations that *remove* availability are journalled — bookings
    (link busy time plus a storage reservation at the receiver) and
    outage cutoffs.  Mutations that can *add* availability back
    (:meth:`NetworkState.remove_copy` releasing storage) instead bump the
    state's global :attr:`~NetworkState.capacity_epoch`, because freed
    capacity can improve paths through machines a cached tree never
    touched and therefore cannot be checked against a footprint.

    Attributes:
        kind: :data:`MUTATION_BOOKING` or :data:`MUTATION_CUTOFF`.
        link_id: the virtual link the mutation touched.
        busy: the booked transfer interval (bookings only).
        machine: the receiving machine (bookings only, else ``-1``).
        residency: the receiver-storage reservation interval (bookings
            only).
        cutoff: the new completion cutoff (cutoff records only).
    """

    kind: str
    link_id: int
    busy: Optional[Interval] = None
    machine: int = -1
    residency: Optional[Interval] = None
    cutoff: float = float("inf")


@dataclass(frozen=True)
class TransferPlan:
    """A feasible (but not yet booked) transfer found by :meth:`earliest_transfer`.

    Attributes:
        item_id: the data item to move.
        link: the virtual link to use.
        start: transfer start time.
        end: transfer completion time (``start`` + communication time).
        release: when the receiver's new copy will be released.
    """

    item_id: int
    link: VirtualLink
    start: float
    end: float
    release: float


@dataclass(frozen=True)
class BookingResult:
    """Outcome of a booked transfer.

    Attributes:
        step_id: index of the created communication step.
        copy: the receiver's new copy record.
        satisfied_request_ids: requests newly satisfied by this arrival.
    """

    step_id: int
    copy: CopyRecord
    satisfied_request_ids: Tuple[int, ...]


class NetworkState:
    """Resource and copy-location state during schedule construction."""

    #: Process-wide source of unique state identity tokens; every state —
    #: including every clone — gets its own, so a cache bound to one state
    #: can never silently validate against another whose revision counters
    #: restarted from zero.
    _epoch_source = itertools.count()

    def __init__(
        self,
        scenario: Scenario,
        schedule_name: str = "",
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._scenario = scenario
        # The ambient tracer is captured once at construction; the default
        # NullTracer keeps every event site down to one branch.
        self._tracer = tracer if tracer is not None else current_tracer()
        # Likewise the ambient fault plan (repro.faults.use_faults); an
        # empty plan normalizes to None so the healthy path is untouched.
        plan = faults if faults is not None else current_faults()
        if plan is not None and plan.is_empty():
            plan = None
        self._faults = plan
        network = scenario.network
        # Per-physical-link degradation factors (sub-1.0 only) and the
        # epoch counting their changes.  The per-virtual-link delivered
        # bandwidth list is derived lazily in effective_bandwidths() and
        # cached until the epoch moves, so tree computations share one
        # list instead of rebuilding it per search.
        self._degradation_factors: Dict[int, float] = {}
        self._degradation_epoch: int = 0
        self._effective_bandwidth: Optional[List[float]] = None
        self._effective_cache_epoch: int = -1
        self._busy: List[IntervalSet] = [
            IntervalSet() for _ in network.virtual_links
        ]
        self._timelines: List[CapacityTimeline] = [
            CapacityTimeline(machine.capacity) for machine in network.machines
        ]
        # copies[item_id] maps machine index -> CopyRecord.
        self._copies: List[Dict[int, CopyRecord]] = [
            {} for _ in scenario.items
        ]
        for item in scenario.items:
            for src in item.sources:
                self._copies[item.item_id][src.machine] = CopyRecord(
                    machine=src.machine,
                    available_from=src.available_from,
                    release=scenario.horizon,
                    hops=0,
                )
        self._satisfied: Dict[int, float] = {}
        # Per-virtual-link availability cutoff (dynamic outages): no new
        # transfer may *complete* after the cutoff.  inf = never cut.
        self._link_cutoff: List[float] = (
            [float("inf")] * len(network.virtual_links)
        )
        self._link_revision: List[int] = [0] * len(network.virtual_links)
        self._machine_revision: List[int] = [0] * network.machine_count
        self._item_revision: List[int] = [0] * len(scenario.items)
        self._epoch: int = next(NetworkState._epoch_source)
        self._capacity_epoch: int = 0
        self._journal: List[MutationRecord] = []
        # (item_id, link_id, sender_ready) -> (plan or None, reason or
        # None): memoized earliest_transfer outcomes, valid only while no
        # mutation occurs (every mutator clears the table).  The link's
        # communication time is a pure function of (item, link), so it is
        # not part of the key.
        self._transfer_memo: Dict[
            Tuple[int, int, float],
            Tuple[Optional[TransferPlan], Optional[str]],
        ] = {}
        self._schedule = Schedule(name=schedule_name)
        # Destination lookup: (item_id, machine) -> request, for delivery
        # detection on arrival.
        self._destination_requests: Dict[Tuple[int, int], int] = {
            (request.item_id, request.destination): request.request_id
            for request in scenario.requests
        }
        # Copy release times are static (DESIGN.md decision 3/4), and the
        # routing layer asks for them on every edge relaxation — precompute
        # the full item × machine matrix once.
        with span(PHASE_GC, self._tracer):
            machine_count = network.machine_count
            self._release_matrix: List[List[float]] = []
            for item in scenario.items:
                gc_release = scenario.gc_release_time(item.item_id)
                row = [gc_release] * machine_count
                for machine in item.source_machines:
                    row[machine] = scenario.horizon
                for request in scenario.requests_for_item(item.item_id):
                    row[request.destination] = scenario.horizon
                self._release_matrix.append(row)
        if self._faults is not None:
            self._apply_faults(self._faults)

    def _apply_faults(self, plan: FaultPlan) -> None:
        """Mask outage windows and degrade bandwidth per the fault plan.

        Outages become pre-booked busy intervals on every virtual link of
        the affected physical link, so schedulers route around them with
        the same interval machinery that handles contention; degradations
        lower the link's entry in ``_effective_bandwidth``, lengthening
        every duration computed from it.  Only the static (capacity)
        faults apply here — churn is replayed by the dynamic driver.
        """
        plan.check_against(self._scenario)
        factors = plan.bandwidth_factors()
        if factors:
            self._degradation_factors.update(factors)
            self._degradation_epoch += 1
        masked = 0
        degraded = 0
        for link in self._scenario.network.virtual_links:
            if link.physical_id in factors:
                degraded += 1
            for outage in plan.outage_intervals(link.physical_id):
                clipped = outage.intersection(link.window)
                if clipped is not None and not clipped.is_empty():
                    self._busy[link.link_id].add(clipped)
                    masked += 1
        if self._tracer.enabled:
            self._tracer.on_faults_applied(masked, degraded)

    def clone(self) -> "NetworkState":
        """An independent deep copy (used by exhaustive search).

        The clone shares the immutable scenario but owns private busy sets,
        timelines, copy tables, and a full copy of the schedule built so
        far.  Revision counters reset to zero (they only order events
        within one state's lifetime, and a fresh tree cache accompanies a
        fresh state); the clone receives a fresh :attr:`epoch` token, so a
        :class:`~repro.heuristics.base.TreeCache` bound to the parent
        refuses to serve the clone instead of silently validating stale
        trees against the restarted counters.
        """
        clone = NetworkState.__new__(NetworkState)
        clone._scenario = self._scenario
        clone._tracer = self._tracer
        clone._faults = self._faults
        # The cached bandwidth list is shared (a degradation in either
        # state rebuilds a fresh list rather than mutating the old one);
        # the factor table is copied because degrade_physical_link
        # mutates it in place.
        clone._degradation_factors = dict(self._degradation_factors)
        clone._degradation_epoch = self._degradation_epoch
        clone._effective_bandwidth = self._effective_bandwidth
        clone._effective_cache_epoch = self._effective_cache_epoch
        clone._busy = [busy.copy() for busy in self._busy]
        clone._timelines = [timeline.copy() for timeline in self._timelines]
        clone._copies = [dict(copies) for copies in self._copies]
        clone._satisfied = dict(self._satisfied)
        clone._link_cutoff = list(self._link_cutoff)
        clone._link_revision = [0] * len(self._link_revision)
        clone._machine_revision = [0] * len(self._machine_revision)
        clone._item_revision = [0] * len(self._item_revision)
        clone._epoch = next(NetworkState._epoch_source)
        clone._capacity_epoch = 0
        clone._journal = []
        clone._transfer_memo = {}
        schedule = Schedule(name=self._schedule.name)
        schedule.extend_from(self._schedule.steps)
        for delivery in self._schedule.deliveries.values():
            schedule.add_delivery(
                request_id=delivery.request_id,
                arrival=delivery.arrival,
                hops=delivery.hops,
            )
        clone._schedule = schedule
        clone._destination_requests = self._destination_requests
        clone._release_matrix = self._release_matrix
        return clone

    # -- read-only accessors --------------------------------------------------

    @property
    def scenario(self) -> Scenario:
        """The immutable problem instance this state belongs to."""
        return self._scenario

    @property
    def schedule(self) -> Schedule:
        """The schedule built so far (owned by this state)."""
        return self._schedule

    @property
    def tracer(self) -> Tracer:
        """The tracer observing this state (NullTracer when disabled)."""
        return self._tracer

    @property
    def faults(self) -> Optional[FaultPlan]:
        """The applied fault plan, or ``None`` for a healthy state."""
        return self._faults

    def effective_bandwidth(self, link_id: int) -> float:
        """Delivered bandwidth of a virtual link (nominal unless degraded)."""
        return self.effective_bandwidths()[link_id]

    def effective_bandwidths(self) -> List[float]:
        """Per-link delivered bandwidth, indexed by ``link_id``.

        The routing layer's relaxation loop indexes this list directly on
        its hot path instead of calling :meth:`effective_bandwidth` per
        edge.  The list is derived from the degradation table once per
        :attr:`degradation_epoch` and cached — a rebuild allocates a fresh
        list, so callers (and clones) may hold the returned one across
        degradations without seeing it change underneath them.  Do not
        mutate.
        """
        cached = self._effective_bandwidth
        if (
            cached is not None
            and self._effective_cache_epoch == self._degradation_epoch
        ):
            return cached
        network = self._scenario.network
        bandwidths = [link.bandwidth for link in network.virtual_links]
        factors = self._degradation_factors
        if factors:
            for link in network.virtual_links:
                factor = factors.get(link.physical_id)
                if factor is not None:
                    bandwidths[link.link_id] = link.bandwidth * factor
        self._effective_bandwidth = bandwidths
        self._effective_cache_epoch = self._degradation_epoch
        return bandwidths

    def copies(self, item_id: int) -> Dict[int, CopyRecord]:
        """Current copies of an item, keyed by machine (snapshot)."""
        return dict(self._copies[item_id])

    def copy_at(self, item_id: int, machine: int) -> Optional[CopyRecord]:
        """The copy of ``item_id`` on ``machine``, or ``None``."""
        return self._copies[item_id].get(machine)

    def holds(self, item_id: int, machine: int) -> bool:
        """True if the machine currently holds a copy of the item."""
        return machine in self._copies[item_id]

    def is_satisfied(self, request_id: int) -> bool:
        """True if the request has been satisfied."""
        return request_id in self._satisfied

    def satisfied_request_ids(self) -> Tuple[int, ...]:
        """Ids of all satisfied requests, ascending."""
        return tuple(sorted(self._satisfied))

    def unsatisfied_requests_for_item(self, item_id: int) -> Tuple[Request, ...]:
        """The item's requests that still lack a delivery."""
        return tuple(
            request
            for request in self._scenario.requests_for_item(item_id)
            if request.request_id not in self._satisfied
        )

    def link_busy_intervals(self, link_id: int) -> Tuple[Interval, ...]:
        """Booked busy intervals of one virtual link (snapshot)."""
        return self._busy[link_id].intervals()

    def machine_timeline(self, machine: int) -> CapacityTimeline:
        """The machine's free-capacity timeline (live object — do not mutate)."""
        return self._timelines[machine]

    def link_revision(self, link_id: int) -> int:
        """Revision counter of a virtual link (bumped on every booking)."""
        return self._link_revision[link_id]

    def machine_revision(self, machine: int) -> int:
        """Revision counter of a machine's storage timeline."""
        return self._machine_revision[machine]

    def item_revision(self, item_id: int) -> int:
        """Revision counter of an item's copy set."""
        return self._item_revision[item_id]

    @property
    def epoch(self) -> int:
        """This state's unique identity token (fresh per state and clone).

        Revision counters restart at zero in every clone, so two states
        can expose identical counters while holding different resources;
        caches bind to the epoch to tell states apart.
        """
        return self._epoch

    @property
    def degradation_epoch(self) -> int:
        """Bumped whenever a bandwidth degradation is applied or deepened.

        Transfer durations are computed from the effective bandwidths, so
        a moved epoch invalidates every cached duration (and, through the
        :class:`~repro.heuristics.base.TreeCache`, every cached tree) in
        one comparison.  Degradations are not journalled — they change
        durations globally rather than removing one resource — so caches
        must treat a changed bandwidth epoch as a global invalidation.
        """
        return self._degradation_epoch

    @property
    def capacity_epoch(self) -> int:
        """Bumped whenever storage capacity is *returned* to a machine.

        Freed capacity (a dynamic copy loss) can improve shortest paths
        through machines outside any cached footprint, so caches treat a
        changed capacity epoch as a global invalidation.
        """
        return self._capacity_epoch

    def journal_length(self) -> int:
        """Number of availability-removing mutations journalled so far."""
        return len(self._journal)

    def journal_since(self, position: int) -> Sequence[MutationRecord]:
        """The journal entries appended at or after ``position``."""
        return self._journal[position:]

    def release_time_at(self, item_id: int, machine: int) -> float:
        """How long a new copy of ``item_id`` would persist on ``machine``.

        Requesting destinations (and original sources) hold copies until the
        horizon; every other machine is an intermediate whose copy is
        garbage-collected ``γ`` after the item's latest deadline.
        """
        return self._release_matrix[item_id][machine]

    # -- feasibility search ---------------------------------------------------

    def earliest_transfer(
        self,
        item_id: int,
        link: VirtualLink,
        sender_ready: float,
        duration: Optional[float] = None,
    ) -> Optional[TransferPlan]:
        """Earliest feasible transfer of an item over one virtual link.

        Finds the smallest start time ``s >= max(sender_ready, Lst)`` such
        that:

        * the link is idle during ``[s, s + D)`` where ``D`` is the link's
          communication time for the item;
        * ``s + D <= Let`` (the transfer fits in the window);
        * ``s + D <=`` the sender's copy release time (the sender still holds
          the item when the transfer completes);
        * the receiver has ``|d|`` bytes free during the new copy's entire
          residency ``[s, release)``, and the transfer completes before the
          copy would be released.

        The sender does not need to *currently* hold a copy: the routing
        layer relaxes edges out of hypothetical intermediate holders whose
        copy would be created by earlier hops of the same path.  A
        hypothetical copy's release time equals
        :meth:`release_time_at`, which also equals the actual release time of
        every real copy, so one computation serves both cases.
        :meth:`book_transfer` re-validates that the sender really holds the
        item before mutating anything.

        Args:
            item_id: the item to move.
            link: the virtual link to try.
            sender_ready: when the sender's copy is (or would be) available.
            duration: the link's communication time for the item, when the
                caller already computed it (the routing layer's relaxation
                loop does); computed from the link otherwise.

        Returns:
            A :class:`TransferPlan`, or ``None`` when no feasible start
            exists on this link.
        """
        tracer = self._tracer
        tracing = tracer.enabled
        memo_key = (item_id, link.link_id, sender_ready)
        memoized = self._transfer_memo.get(memo_key)
        if memoized is not None:
            # Replay the original probe's events exactly, so observers
            # cannot distinguish a memo hit from a recomputation.
            plan, memo_reason = memoized
            if tracing:
                tracer.on_transfer_attempt(item_id, link.link_id)
                if memo_reason is not None:
                    tracer.on_transfer_rejected(
                        item_id, link.link_id, memo_reason
                    )
            return plan
        if tracing:
            tracer.on_transfer_attempt(item_id, link.link_id)
        if self.holds(item_id, link.destination):
            return self._memo_reject(
                memo_key, item_id, link.link_id, REASON_ALREADY_AT_DESTINATION
            )
        item = self._scenario.item(item_id)
        if duration is None:
            duration = link.transfer_seconds(
                item.size, self.effective_bandwidths()[link.link_id]
            )
        release = self._release_matrix[item_id][link.destination]
        sender_release = self._release_matrix[item_id][link.source]
        # Completion must respect the window (clipped by any dynamic
        # outage), the sender's residency, and the receiver's residency.
        window_end = min(
            link.end,
            sender_release,
            release,
            self._link_cutoff[link.link_id],
        )
        window_start = link.start
        if window_end <= window_start:
            return self._memo_reject(
                memo_key, item_id, link.link_id, REASON_WINDOW_CLOSED
            )
        # The probe loop below runs once per edge relaxation of every
        # Dijkstra search, so it stays in the float-core API: no Interval
        # is constructed unless a feasible plan is actually found.
        item_size = item.size
        timeline = self._timelines[link.destination]
        busy = self._busy[link.link_id]
        cursor = sender_ready
        while True:
            start = busy.first_fit(duration, window_start, window_end, cursor)
            if start is None:
                return self._memo_reject(
                    memo_key, item_id, link.link_id, REASON_NO_LINK_SLOT
                )
            if timeline.can_reserve_span(item_size, start, release):
                plan = TransferPlan(
                    item_id=item_id,
                    link=link,
                    start=start,
                    end=start + duration,
                    release=release,
                )
                self._transfer_memo[memo_key] = (plan, None)
                return plan
            next_start = timeline.next_sufficient_start(
                item_size, start, release
            )
            if next_start is None or next_start + duration > window_end:
                return self._memo_reject(
                    memo_key, item_id, link.link_id, REASON_NO_STORAGE
                )
            if next_start <= start:
                raise SchedulingError(
                    "earliest_transfer failed to make progress at "
                    f"start={start} on link {link.link_id}"
                )
            cursor = next_start

    def _memo_reject(
        self,
        memo_key: Tuple[int, int, float],
        item_id: int,
        link_id: int,
        reason: str,
    ) -> Optional[TransferPlan]:
        """Record an infeasible probe in the memo and emit its event."""
        self._transfer_memo[memo_key] = (None, reason)
        if self._tracer.enabled:
            self._tracer.on_transfer_rejected(item_id, link_id, reason)
        return None

    # -- mutation ---------------------------------------------------------------

    def _reject_booking(
        self, item_id: int, link_id: int, reason: str, message: str
    ) -> None:
        """Emit a booking-failure event and raise the diagnostic."""
        if self._tracer.enabled:
            self._tracer.on_booking_failed(item_id, link_id, reason)
        raise InfeasibleTransferError(message)

    def book_transfer(self, plan: TransferPlan) -> BookingResult:
        """Execute a :class:`TransferPlan`: reserve resources, place the copy.

        Raises:
            InfeasibleTransferError: if the plan no longer fits (it was
                computed against stale state) — states are single-writer, so
                this indicates a scheduler bug, but the precise diagnostic is
                kept because the random baselines book speculatively.
        """
        link = plan.link
        item = self._scenario.item(plan.item_id)
        if self.holds(plan.item_id, link.destination):
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_ALREADY_AT_DESTINATION,
                f"machine {link.destination} already holds item "
                f"{plan.item_id}",
            )
        sender_copy = self._copies[plan.item_id].get(link.source)
        if sender_copy is None:
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_NO_SENDER_COPY,
                f"machine {link.source} holds no copy of item "
                f"{plan.item_id}",
            )
        if plan.start < sender_copy.available_from:
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_SENDER_NOT_AVAILABLE,
                f"transfer starts at {plan.start} before the sender copy is "
                f"available at {sender_copy.available_from}",
            )
        if plan.end > sender_copy.release:
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_SENDER_RELEASED,
                f"transfer ends at {plan.end} after the sender copy is "
                f"released at {sender_copy.release}",
            )
        busy_interval = Interval(plan.start, plan.end)
        if not self._busy[link.link_id].is_free(busy_interval):
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_LINK_BUSY,
                f"link {link.link_id} is busy during {busy_interval!r}",
            )
        if not link.window.contains_interval(busy_interval):
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_WINDOW_ESCAPE,
                f"transfer {busy_interval!r} escapes link window "
                f"{link.window!r}",
            )
        if plan.end > self._link_cutoff[link.link_id]:
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_LINK_CUTOFF,
                f"transfer completes at {plan.end} after link "
                f"{link.link_id}'s outage cutoff "
                f"{self._link_cutoff[link.link_id]}",
            )
        residency = Interval(plan.start, plan.release)
        timeline = self._timelines[link.destination]
        if not timeline.can_reserve(item.size, residency):
            self._reject_booking(
                plan.item_id,
                link.link_id,
                REASON_STORAGE_CONFLICT,
                f"machine {link.destination} lacks {item.size} bytes over "
                f"{residency!r}",
            )
        # All checks passed; mutate.
        self._busy[link.link_id].add(busy_interval)
        timeline.reserve(item.size, residency)
        if self._tracer.enabled:
            self._tracer.on_storage_reserved(
                plan.item_id,
                link.destination,
                item.size,
                plan.start,
                plan.release,
            )
        copy = CopyRecord(
            machine=link.destination,
            available_from=plan.end,
            release=plan.release,
            hops=sender_copy.hops + 1,
        )
        self._copies[plan.item_id][link.destination] = copy
        self._link_revision[link.link_id] += 1
        self._machine_revision[link.destination] += 1
        self._item_revision[plan.item_id] += 1
        self._journal.append(
            MutationRecord(
                kind=MUTATION_BOOKING,
                link_id=link.link_id,
                busy=busy_interval,
                machine=link.destination,
                residency=residency,
            )
        )
        self._transfer_memo.clear()
        step = self._schedule.add_step(
            item_id=plan.item_id,
            source=link.source,
            destination=link.destination,
            link_id=link.link_id,
            start=plan.start,
            end=plan.end,
        )
        if self._tracer.enabled:
            self._tracer.on_transfer_booked(
                plan.item_id,
                link.link_id,
                plan.start,
                plan.end,
                link.window.end - link.window.start,
            )
        # Deliveries are recorded (and their satisfaction events emitted)
        # after the booking event: the transfer that causes a
        # satisfaction precedes it in every trace.
        satisfied = self._record_deliveries(plan.item_id, copy)
        return BookingResult(
            step_id=step.step_id,
            copy=copy,
            satisfied_request_ids=satisfied,
        )

    # -- dynamic-simulation surgery ---------------------------------------------

    def link_cutoff(self, link_id: int) -> float:
        """The virtual link's outage cutoff (``inf`` when never cut)."""
        return self._link_cutoff[link_id]

    def disable_link_from(self, link_id: int, at_time: float) -> None:
        """Forbid new transfers on a virtual link from ``at_time`` onwards.

        Models a dynamic link outage: no new transfer may complete after
        the cutoff.  Transfers already booked are grandfathered (an
        in-flight transfer either completes or its loss is modelled
        separately as a :class:`~repro.dynamic.events.CopyLoss` at the
        receiver).  Tightening an existing cutoff is allowed; loosening is
        not (outages are permanent in this model).

        Raises:
            SchedulingError: when attempting to move a cutoff later.
        """
        if at_time > self._link_cutoff[link_id]:
            raise SchedulingError(
                f"link {link_id} cutoff already at "
                f"{self._link_cutoff[link_id]}; cannot loosen to {at_time}"
            )
        self._link_cutoff[link_id] = at_time
        self._link_revision[link_id] += 1
        self._journal.append(
            MutationRecord(
                kind=MUTATION_CUTOFF, link_id=link_id, cutoff=at_time
            )
        )
        self._transfer_memo.clear()
        if self._tracer.enabled:
            self._tracer.on_link_disabled(link_id, at_time)

    def degrade_physical_link(self, physical_id: int, factor: float) -> None:
        """Scale a physical link's delivered bandwidth by ``factor``.

        Models a dynamic degradation: every virtual link of the physical
        link delivers ``nominal * factor`` from now on, lengthening all
        future transfer durations.  Like outages, degradations are
        permanent and may only tighten — replacing an existing factor
        with a larger one would shorten durations and is rejected.  Bumps
        the :attr:`degradation_epoch` (callers holding cached duration
        tables or trees must recompute) and the revision counter of every
        affected virtual link.

        Raises:
            ValueError: if ``factor`` is outside ``(0, 1]``.
            SchedulingError: if the physical link is unknown or the new
                factor does not tighten the existing one.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"degradation factor must be in (0, 1], got {factor}"
            )
        network = self._scenario.network
        if not any(
            plink.physical_id == physical_id
            for plink in network.physical_links
        ):
            raise SchedulingError(
                f"cannot degrade unknown physical link {physical_id}"
            )
        current = self._degradation_factors.get(physical_id, 1.0)
        if factor >= current:
            raise SchedulingError(
                f"physical link {physical_id} already degraded to "
                f"{current}; cannot loosen to {factor}"
            )
        self._degradation_factors[physical_id] = factor
        self._degradation_epoch += 1
        degraded = 0
        for link in network.virtual_links:
            if link.physical_id == physical_id:
                self._link_revision[link.link_id] += 1
                degraded += 1
        self._transfer_memo.clear()
        if self._tracer.enabled:
            self._tracer.on_faults_applied(0, degraded)

    def remove_copy(self, item_id: int, machine: int, at_time: float) -> None:
        """Delete a resident copy at ``at_time`` (a dynamic loss event).

        The copy's remaining storage reservation ``[at_time, release)`` is
        returned to the machine and the copy disappears from the item's
        location table; revision counters bump so cached trees recompute.
        Used only by :mod:`repro.dynamic` — the static model never loses
        copies.

        Raises:
            InfeasibleTransferError: if the machine holds no copy, or the
                loss time falls outside the copy's residency.
        """
        with span(PHASE_GC, self._tracer):
            copy = self._copies[item_id].get(machine)
            if copy is None:
                raise InfeasibleTransferError(
                    f"machine {machine} holds no copy of item {item_id} "
                    f"to lose"
                )
            if not copy.available_from <= at_time < copy.release:
                raise InfeasibleTransferError(
                    f"loss at {at_time} outside copy residency "
                    f"[{copy.available_from}, {copy.release})"
                )
            item = self._scenario.item(item_id)
            if copy.hops > 0:
                # Only scheduler-created copies carry a storage reservation;
                # initial source copies are not charged against Cap
                # (DESIGN.md decision 3).
                self._timelines[machine].release(
                    item.size, Interval(at_time, copy.release)
                )
            del self._copies[item_id][machine]
            self._machine_revision[machine] += 1
            self._item_revision[item_id] += 1
            # Freed storage can improve paths through machines outside any
            # cached footprint — bump the global capacity epoch instead of
            # journalling a footprint-checkable record.
            self._capacity_epoch += 1
            self._transfer_memo.clear()
            if self._tracer.enabled:
                self._tracer.on_copy_removed(item_id, machine, at_time)

    def reopen_request(self, request_id: int) -> None:
        """Mark a previously satisfied request as unsatisfied again.

        Used by the dynamic driver when a destination loses its copy
        before the deadline.  Bumps the item revision so cached candidate
        evaluations are invalidated.

        Raises:
            SchedulingError: if the request was not satisfied.
        """
        if request_id not in self._satisfied:
            raise SchedulingError(
                f"request {request_id} is not satisfied; nothing to reopen"
            )
        del self._satisfied[request_id]
        self._schedule.remove_delivery(request_id)
        request = self._scenario.request(request_id)
        self._item_revision[request.item_id] += 1
        self._transfer_memo.clear()
        if self._tracer.enabled:
            self._tracer.on_request_reopened(request_id)

    def _record_deliveries(
        self, item_id: int, copy: CopyRecord
    ) -> Tuple[int, ...]:
        """Mark requests satisfied by an arrival at their destination."""
        request_id = self._destination_requests.get((item_id, copy.machine))
        if request_id is None or request_id in self._satisfied:
            return ()
        request = self._scenario.request(request_id)
        if not request.is_satisfied_by_arrival(copy.available_from):
            return ()
        self._satisfied[request_id] = copy.available_from
        self._schedule.add_delivery(
            request_id=request_id,
            arrival=copy.available_from,
            hops=copy.hops,
        )
        if self._tracer.enabled:
            self._tracer.on_request_satisfied(
                request_id, copy.available_from, copy.hops
            )
        return (request_id,)
