"""Piecewise-constant capacity timelines — the model's ``Cap[i](t)``.

A :class:`CapacityTimeline` tracks one machine's *free* storage capacity as a
step function of time.  Reserving storage for a data-item copy subtracts the
item's size over the copy's residency interval; because garbage collection
times are known at booking time (``latest deadline + γ``), a reservation is
always a *finite* interval and no separate release operation is needed.

The representation is a sorted list of breakpoints ``(t, free)`` meaning the
free capacity equals ``free`` from ``t`` (inclusive) until the next
breakpoint.  The first breakpoint is always ``(-inf, initial_capacity)`` so
queries before any reservation are well-defined.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.core.intervals import Interval
from repro.core.units import size_is_zero, time_eq
from repro.errors import CapacityError


class CapacityTimeline:
    """Free-capacity step function with interval reservations.

    Args:
        capacity: the machine's total storage capacity in bytes; this is the
            initial free capacity at every instant.

    Raises:
        ValueError: if ``capacity`` is negative.
    """

    __slots__ = ("_capacity", "_times", "_values")

    def __init__(self, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._times: List[float] = [float("-inf")]
        self._values: List[float] = [capacity]

    @property
    def capacity(self) -> float:
        """The machine's total storage capacity in bytes."""
        return self._capacity

    def copy(self) -> "CapacityTimeline":
        """An independent deep copy."""
        clone = CapacityTimeline.__new__(CapacityTimeline)
        clone._capacity = self._capacity
        clone._times = list(self._times)
        clone._values = list(self._values)
        return clone

    def free_at(self, t: float) -> float:
        """Free capacity at instant ``t``."""
        idx = bisect.bisect_right(self._times, t) - 1
        return self._values[idx]

    def min_free(self, interval: Interval) -> float:
        """Minimum free capacity over the half-open ``interval``.

        An empty interval imposes no constraint and reports the total
        capacity.
        """
        return self.min_free_span(interval.start, interval.end)

    def min_free_span(self, start: float, end: float) -> float:
        """Float-core of :meth:`min_free` over half-open ``[start, end)``.

        Both breakpoints bounding the span are found by bisection, so the
        walk touches exactly the segments intersecting the span and the
        hot feasibility probes need not build an :class:`Interval`.
        """
        if end <= start:
            return self._capacity
        times = self._times
        values = self._values
        lo = bisect.bisect_right(times, start) - 1
        hi = bisect.bisect_left(times, end, lo + 1)
        minimum = values[lo]
        for idx in range(lo + 1, hi):
            value = values[idx]
            if value < minimum:
                minimum = value
        return minimum

    def can_reserve(self, amount: float, interval: Interval) -> bool:
        """True if ``amount`` bytes are free throughout ``interval``."""
        return self.can_reserve_span(amount, interval.start, interval.end)

    def can_reserve_span(self, amount: float, start: float, end: float) -> bool:
        """Float-core of :meth:`can_reserve` (no :class:`Interval` input)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        return self.min_free_span(start, end) >= amount

    def next_sufficient_start(
        self, amount: float, start: float, release: float
    ) -> Optional[float]:
        """Smallest ``t > start`` with ``amount`` free throughout ``[t, release)``.

        Later starts only shrink the residency interval, so the answer is
        the end of the *last* timeline segment intersecting
        ``[start, release)`` whose free capacity is below ``amount``.
        Returns ``None`` when that deficiency extends up to ``release``
        itself (no start can help).  Callers invoke this only after
        :meth:`can_reserve_span` failed, so a deficient segment always
        exists.
        """
        times = self._times
        values = self._values
        count = len(times)
        lo = bisect.bisect_right(times, start) - 1
        hi = bisect.bisect_left(times, release, lo + 1)
        last_deficient_end: Optional[float] = None
        for idx in range(lo, hi):
            if values[idx] >= amount:
                continue
            last_deficient_end = (
                times[idx + 1] if idx + 1 < count else float("inf")
            )
        if last_deficient_end is None or last_deficient_end >= release:
            return None
        return last_deficient_end

    def reserve(self, amount: float, interval: Interval) -> None:
        """Subtract ``amount`` bytes of free capacity over ``interval``.

        Raises:
            CapacityError: if the reservation would drive free capacity
                negative anywhere in the interval; the timeline is unchanged.
            ValueError: if ``amount`` is negative.
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        if size_is_zero(amount) or interval.is_empty():
            return
        if not self.can_reserve(amount, interval):
            raise CapacityError(
                f"cannot reserve {amount} bytes over {interval!r}: "
                f"minimum free is {self.min_free(interval)}"
            )
        self._ensure_breakpoint(interval.start)
        self._ensure_breakpoint(interval.end)
        lo = bisect.bisect_left(self._times, interval.start)
        hi = bisect.bisect_left(self._times, interval.end)
        for idx in range(lo, hi):
            self._values[idx] -= amount

    def release(self, amount: float, interval: Interval) -> None:
        """Add back ``amount`` bytes of free capacity over ``interval``.

        Only used when undoing a prior reservation (e.g. speculative booking
        in the random baselines).  Free capacity is allowed to exceed the
        total capacity only transiently inside paired reserve/release misuse;
        we clamp-check to catch that bug class.

        Raises:
            ValueError: if releasing would push free capacity above the
                machine's total capacity (indicates an unmatched release).
        """
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        if size_is_zero(amount) or interval.is_empty():
            return
        self._ensure_breakpoint(interval.start)
        self._ensure_breakpoint(interval.end)
        lo = bisect.bisect_left(self._times, interval.start)
        hi = bisect.bisect_left(self._times, interval.end)
        for idx in range(lo, hi):
            if self._values[idx] + amount > self._capacity + 1e-6:
                raise ValueError(
                    "release exceeds total capacity: unmatched release of "
                    f"{amount} bytes over {interval!r}"
                )
        for idx in range(lo, hi):
            self._values[idx] += amount

    def breakpoints(self) -> Tuple[Tuple[float, float], ...]:
        """Snapshot of ``(time, free_capacity)`` breakpoints, ascending."""
        return tuple(zip(self._times, self._values))

    def _ensure_breakpoint(self, t: float) -> None:
        """Split the step function at ``t`` without changing its value."""
        idx = bisect.bisect_right(self._times, t) - 1
        if time_eq(self._times[idx], t):
            return
        self._times.insert(idx + 1, t)
        self._values.insert(idx + 1, self._values[idx])

    def __repr__(self) -> str:
        steps = ", ".join(
            f"{t:g}:{v:g}" for t, v in zip(self._times, self._values)
        )
        return f"CapacityTimeline(capacity={self._capacity:g}, [{steps}])"
