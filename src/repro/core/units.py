"""Units and conversions used throughout the model.

The paper quotes sizes in KB/MB/GB, bandwidths in Kbit/s and Mbit/s, and
times in minutes and hours.  Internally the library uses a single canonical
unit for each dimension:

* **time** — seconds (float), measured from the start of the scheduling
  horizon (t = 0);
* **size** — bytes (float; values are large enough that float rounding is
  irrelevant at the modelled granularity);
* **bandwidth** — bytes per second.

The helpers below exist so scenario-construction code can speak the paper's
units (``megabits_per_second(1.5)``) while the model itself stays unit-free.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR


def minutes(value: float) -> float:
    """Convert minutes to canonical seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Convert hours to canonical seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Convert days to canonical seconds."""
    return value * DAY


# ---------------------------------------------------------------------------
# Size (the paper uses decimal K/M/G, as was conventional for link budgets)
# ---------------------------------------------------------------------------

BYTE: float = 1.0
KILOBYTE: float = 1_000.0
MEGABYTE: float = 1_000_000.0
GIGABYTE: float = 1_000_000_000.0


def kilobytes(value: float) -> float:
    """Convert kilobytes (decimal) to canonical bytes."""
    return value * KILOBYTE


def megabytes(value: float) -> float:
    """Convert megabytes (decimal) to canonical bytes."""
    return value * MEGABYTE


def gigabytes(value: float) -> float:
    """Convert gigabytes (decimal) to canonical bytes."""
    return value * GIGABYTE


# ---------------------------------------------------------------------------
# Comparators
# ---------------------------------------------------------------------------
#
# The model's times are floats produced by chains of arithmetic; the
# scheduler's invariants (booking identity, breakpoint splitting, event
# grouping) rely on *exact* equality of values that were computed by the
# same expression, never on "close enough".  Raw ``==`` at a call site
# cannot distinguish the two readings, so the ``repro.staticcheck`` R2
# rule bans it on time/bandwidth expressions and requires these named
# comparators instead: ``time_eq`` documents the identical-computation
# contract, ``times_close`` documents a tolerance.  The raw operators
# below each carry the one sanctioned suppression.

#: Tolerance for *approximate* time comparisons (analysis/reporting
#: only — scheduling decisions must use the exact comparators).
TIME_EPSILON: float = 1e-9


def time_eq(a: float, b: float) -> bool:
    """Exact equality of two canonical times.

    Both operands must originate from the *identical* computation (a
    stored breakpoint compared against the key it was inserted under, an
    event timestamp compared against the group timestamp it was read
    from).  For values produced by different arithmetic, use
    :func:`times_close`.
    """
    return a == b


def time_ne(a: float, b: float) -> bool:
    """Exact inequality of two canonical times (see :func:`time_eq`)."""
    return a != b


def times_close(a: float, b: float, tolerance: float = TIME_EPSILON) -> bool:
    """True when two times differ by at most ``tolerance`` seconds.

    For comparing times produced by *different* computations (analysis,
    assertions in tests, report thresholds).  Never use this to decide a
    booking — a tolerance there would make feasibility depend on float
    noise and break byte-identical replay.
    """
    return abs(a - b) <= tolerance


def duration_is_zero(duration: float) -> bool:
    """True for a zero-length duration (e.g. an empty booking)."""
    return duration == 0.0  # staticcheck: disable=R2


def size_is_zero(size_bytes: float) -> bool:
    """True for a zero-byte size (e.g. a no-op capacity reservation)."""
    return size_bytes == 0.0


def bandwidth_eq(a: float, b: float) -> bool:
    """Exact equality of two bandwidths (see :func:`time_eq`)."""
    return a == b


# ---------------------------------------------------------------------------
# Bandwidth
# ---------------------------------------------------------------------------

BITS_PER_BYTE: float = 8.0


def kilobits_per_second(value: float) -> float:
    """Convert Kbit/s to canonical bytes/second."""
    return value * 1_000.0 / BITS_PER_BYTE


def megabits_per_second(value: float) -> float:
    """Convert Mbit/s to canonical bytes/second."""
    return value * 1_000_000.0 / BITS_PER_BYTE


def transfer_seconds(size_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Pure transmission time for ``size_bytes`` at the given bandwidth.

    This is the ``|d| / bandwidth`` term of the paper's ``D[i,j][k](|d|)``
    communication time; per-link latency is added by the caller.

    Raises:
        ValueError: if either argument is non-positive where it must not be.
    """
    if size_bytes < 0:
        raise ValueError(f"data size must be non-negative, got {size_bytes}")
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(
            f"bandwidth must be positive, got {bandwidth_bytes_per_s}"
        )
    return size_bytes / bandwidth_bytes_per_s


def format_size(size_bytes: float) -> str:
    """Human-readable rendering of a byte count (for reports and repr)."""
    if size_bytes >= GIGABYTE:
        return f"{size_bytes / GIGABYTE:.2f}GB"
    if size_bytes >= MEGABYTE:
        return f"{size_bytes / MEGABYTE:.2f}MB"
    if size_bytes >= KILOBYTE:
        return f"{size_bytes / KILOBYTE:.2f}KB"
    return f"{size_bytes:.0f}B"


def format_time(seconds: float) -> str:
    """Human-readable rendering of a time offset (for reports and repr)."""
    if time_eq(seconds, float("inf")):
        return "inf"
    if seconds >= HOUR:
        return f"{seconds / HOUR:.2f}h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.2f}min"
    return f"{seconds:.2f}s"
