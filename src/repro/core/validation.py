"""Independent feasibility checking of schedules.

:class:`ScheduleValidator` replays a schedule from scratch against a fresh
view of the scenario and verifies every model constraint.  It shares no
mutable state with the schedulers (it rebuilds its own timelines and busy
sets), so a validator pass is genuine evidence that an emitted schedule is
feasible — the test suite runs it over the output of every heuristic and
baseline.

Checks performed:

1. every step references an existing virtual link and matches its endpoints;
2. the transfer duration equals the link's communication time for the item;
3. the transfer lies inside the link's availability window;
4. no two transfers on the same virtual link overlap (link exclusivity);
5. the sender holds a copy of the item for the whole transfer (causality:
   initial source availability or an earlier completed inbound transfer, and
   the sender's copy is not garbage-collected before completion);
6. the receiver does not already hold the item;
7. storage: summing all copy residencies never exceeds any machine's
   capacity at any instant;
8. every recorded delivery corresponds to an on-time arrival at the correct
   destination with a consistent hop count;
9. every on-time arrival at a requesting destination *is* recorded as a
   delivery (no under-reporting).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.intervals import Interval, IntervalSet
from repro.core.schedule import Schedule
from repro.core.scenario import Scenario
from repro.core.timeline import CapacityTimeline
from repro.errors import CapacityError, ValidationError
from repro.faults.plan import FaultPlan

#: Absolute slack for floating-point time comparisons.  The schedulers and
#: the validator compute durations through the same arithmetic, so any real
#: violation is far larger than this.
TIME_EPSILON = 1e-6


class ScheduleValidator:
    """Replays and checks one schedule against one scenario.

    Args:
        scenario: the scenario the schedule claims to serve.
        faults: optional static fault plan the schedule was produced
            under.  When given, two extra constraints apply: transfers
            must not overlap an outage window of their link's physical
            facility, and durations on degraded links must match the
            *degraded* communication time (check 2 uses the reduced
            bandwidth).  Churn events are a dynamic-driver concern and
            are ignored here.
    """

    def __init__(
        self,
        scenario: Scenario,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._scenario = scenario
        if faults is not None:
            faults.check_against(scenario)
            if faults.is_empty():
                faults = None
        self._faults = faults

    def validate(self, schedule: Schedule) -> None:
        """Raise :class:`ValidationError` on the first violated constraint.

        Returns silently for a feasible schedule.
        """
        scenario = self._scenario
        network = scenario.network
        busy: Dict[int, IntervalSet] = {}
        timelines: List[CapacityTimeline] = [
            CapacityTimeline(machine.capacity) for machine in network.machines
        ]
        # copies[item_id][machine] = (available_from, release, hops)
        copies: List[Dict[int, Tuple[float, float, int]]] = [
            {} for _ in scenario.items
        ]
        for item in scenario.items:
            for src in item.sources:
                copies[item.item_id][src.machine] = (
                    src.available_from,
                    scenario.horizon,
                    0,
                )
        destination_requests = {
            (request.item_id, request.destination): request
            for request in scenario.requests
        }
        expected_deliveries: Dict[int, Tuple[float, int]] = {}

        for step in schedule.steps:
            link = self._check_link(step)
            item = scenario.item(step.item_id)
            duration = self._expected_duration(link, item)
            if abs(step.duration - duration) > TIME_EPSILON:
                raise ValidationError(
                    f"{step}: duration {step.duration} does not match the "
                    f"link communication time {duration}"
                )
            transfer = Interval(step.start, step.end)
            if not link.window.contains_interval(transfer):
                raise ValidationError(
                    f"{step}: transfer escapes link window {link.window!r}"
                )
            self._check_outages(step, link, transfer)
            link_busy = busy.setdefault(link.link_id, IntervalSet())
            if not link_busy.is_free(transfer):
                raise ValidationError(
                    f"{step}: virtual link {link.link_id} already carries a "
                    f"transfer during {transfer!r}"
                )
            link_busy.add(transfer)

            sender = copies[step.item_id].get(step.source)
            if sender is None:
                raise ValidationError(
                    f"{step}: machine M[{step.source}] holds no copy of item "
                    f"{step.item_id}"
                )
            available_from, sender_release, sender_hops = sender
            if step.start + TIME_EPSILON < available_from:
                raise ValidationError(
                    f"{step}: transfer starts before the sender's copy is "
                    f"available at {available_from}"
                )
            if step.end > sender_release + TIME_EPSILON:
                raise ValidationError(
                    f"{step}: transfer completes after the sender's copy is "
                    f"garbage-collected at {sender_release}"
                )
            if step.destination in copies[step.item_id]:
                raise ValidationError(
                    f"{step}: machine M[{step.destination}] already holds "
                    f"item {step.item_id}"
                )
            release = self._release_time(step.item_id, step.destination)
            if step.end > release + TIME_EPSILON:
                raise ValidationError(
                    f"{step}: arrival at {step.end} is after the copy's own "
                    f"release time {release}"
                )
            try:
                timelines[step.destination].reserve(
                    item.size, Interval(step.start, release)
                )
            except CapacityError as exc:
                raise ValidationError(
                    f"{step}: receiver M[{step.destination}] storage "
                    f"violation: {exc}"
                ) from exc
            copies[step.item_id][step.destination] = (
                step.end,
                release,
                sender_hops + 1,
            )
            request = destination_requests.get(
                (step.item_id, step.destination)
            )
            if (
                request is not None
                and request.request_id not in expected_deliveries
                and request.is_satisfied_by_arrival(step.end)
            ):
                expected_deliveries[request.request_id] = (
                    step.end,
                    sender_hops + 1,
                )

        self._check_deliveries(schedule, expected_deliveries)

    def _expected_duration(self, link, item) -> float:
        """The link's communication time, honoring degraded bandwidth."""
        if self._faults is not None:
            factor = self._faults.bandwidth_factor(link.physical_id)
            if factor < 1.0:
                return link.transfer_seconds(
                    item.size, link.bandwidth * factor
                )
        return link.transfer_seconds(item.size)

    def _check_outages(self, step, link, transfer: Interval) -> None:
        """Reject transfers overlapping an outage of the link's facility."""
        if self._faults is None:
            return
        for outage in self._faults.outage_intervals(link.physical_id):
            if transfer.start < outage.end and outage.start < transfer.end:
                raise ValidationError(
                    f"{step}: transfer overlaps outage window {outage!r} "
                    f"of physical link {link.physical_id}"
                )

    def _check_link(self, step):
        network = self._scenario.network
        if not 0 <= step.link_id < len(network.virtual_links):
            raise ValidationError(f"{step}: unknown virtual link")
        link = network.link(step.link_id)
        if link.source != step.source or link.destination != step.destination:
            raise ValidationError(
                f"{step}: link {step.link_id} connects M[{link.source}]->"
                f"M[{link.destination}], not the step's endpoints"
            )
        return link

    def _release_time(self, item_id: int, machine: int) -> float:
        scenario = self._scenario
        for request in scenario.requests_for_item(item_id):
            if request.destination == machine:
                return scenario.horizon
        if machine in scenario.item(item_id).source_machines:
            return scenario.horizon
        return scenario.gc_release_time(item_id)

    def _check_deliveries(
        self,
        schedule: Schedule,
        expected: Dict[int, Tuple[float, int]],
    ) -> None:
        recorded = schedule.deliveries
        for request_id, delivery in recorded.items():
            if request_id not in expected:
                raise ValidationError(
                    f"delivery for request {request_id} has no matching "
                    f"on-time arrival in the schedule"
                )
            arrival, hops = expected[request_id]
            if abs(delivery.arrival - arrival) > TIME_EPSILON:
                raise ValidationError(
                    f"delivery for request {request_id} records arrival "
                    f"{delivery.arrival}, replay found {arrival}"
                )
            if delivery.hops != hops:
                raise ValidationError(
                    f"delivery for request {request_id} records {delivery.hops} "
                    f"hops, replay found {hops}"
                )
        for request_id in expected:
            if request_id not in recorded:
                raise ValidationError(
                    f"request {request_id} arrived on time but the schedule "
                    f"records no delivery for it"
                )

    def is_valid(self, schedule: Schedule) -> bool:
        """Boolean convenience wrapper around :meth:`validate`."""
        try:
            self.validate(schedule)
        except ValidationError:
            return False
        return True
