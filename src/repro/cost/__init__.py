"""Cost criteria for selecting the next communication step (paper §4.8)."""

from repro.cost.criteria import (
    Cost1,
    Cost2,
    Cost3,
    Cost4,
    CostCriterion,
    CostResult,
    criterion_names,
    get_criterion,
    register_criterion,
)
from repro.cost.terms import (
    URGENCY_EPSILON,
    DestinationEvaluation,
    evaluate_destination,
    most_urgent_satisfiable,
)
from repro.cost.weights import (
    PAPER_LOG_RATIOS,
    EUWeights,
    as_weights,
    paper_sweep,
)

__all__ = [
    "Cost1",
    "Cost2",
    "Cost3",
    "Cost4",
    "CostCriterion",
    "CostResult",
    "DestinationEvaluation",
    "EUWeights",
    "PAPER_LOG_RATIOS",
    "URGENCY_EPSILON",
    "as_weights",
    "criterion_names",
    "evaluate_destination",
    "get_criterion",
    "most_urgent_satisfiable",
    "paper_sweep",
    "register_criterion",
]
