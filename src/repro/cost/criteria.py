"""The four cost criteria of §4.8.

A *candidate communication step* moves item ``Rq[i]`` from a copy holder
``M[s]`` to the next machine ``M[r]`` of the current shortest paths; the set
of destinations whose paths run through ``M[r]`` is ``Drq[i,r]``.  Each
criterion maps the destination evaluations of one candidate to a scalar
cost — the heuristics schedule the candidate with the **smallest** cost —
and nominates the *selected destination* used by the full-path/one-
destination heuristic:

* **C1** — per-destination cost ``-W_E·Efp − W_U·Urgency``; the group cost
  is the best (smallest) destination cost, and that destination is selected.
* **C2** — ``-W_E·ΣEfp − W_U·max Urgency`` (the most urgent satisfiable
  destination supplies the urgency term and is selected).
* **C3** — ``Σ Efp/Urgency`` over satisfiable destinations; independent of
  ``W_E``/``W_U`` by construction.  The most urgent destination is selected.
* **C4** — ``-W_E·ΣEfp − W_U·ΣUrgency``; the most urgent destination is
  selected.

Unsatisfiable destinations contribute zero to every sum (their ``Efp`` and
``Urgency`` are zero), matching the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.cost.terms import DestinationEvaluation, most_urgent_satisfiable
from repro.cost.weights import EUWeights
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostResult:
    """A criterion's verdict on one candidate communication step.

    Attributes:
        cost: the scalar to minimize across candidates.
        selected: the destination the full-path/one-destination heuristic
            should complete, or ``None`` when no destination is satisfiable
            (such candidates are never scheduled).
    """

    cost: float
    selected: Optional[DestinationEvaluation]


class CostCriterion(abc.ABC):
    """Interface shared by the four §4.8 criteria (and user extensions).

    Subclasses are stateless; one instance can serve any number of
    concurrent scheduling runs.
    """

    #: Short identifier used in figures and the registry ("C1".."C4").
    name: str = ""

    #: ``False`` for criteria that cannot express multi-destination value;
    #: the full-path/all-destinations heuristic refuses such criteria
    #: (the paper excludes C1 from full_all for exactly this reason).
    supports_all_destinations: bool = True

    #: ``True`` when the cost is unaffected by ``W_E``/``W_U`` (C3); sweep
    #: drivers use this to evaluate the criterion once instead of per ratio.
    eu_independent: bool = False

    @abc.abstractmethod
    def evaluate(
        self,
        evaluations: Tuple[DestinationEvaluation, ...],
        weights: EUWeights,
    ) -> CostResult:
        """Score one candidate step given its ``Drq`` destination terms."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Cost1(CostCriterion):
    """Per-destination cost; the best destination prices the candidate."""

    name = "C1"
    supports_all_destinations = False

    def evaluate(
        self,
        evaluations: Tuple[DestinationEvaluation, ...],
        weights: EUWeights,
    ) -> CostResult:
        """Best per-destination ``-W_E·Efp − W_U·Urgency`` in the group."""
        best_cost = float("inf")
        best: Optional[DestinationEvaluation] = None
        for evaluation in evaluations:
            if not evaluation.satisfiable:
                continue
            cost = (
                -weights.effective * evaluation.effective_priority
                - weights.urgency * evaluation.urgency
            )
            if cost < best_cost or (
                cost == best_cost
                and best is not None
                and evaluation.request.request_id < best.request.request_id
            ):
                best_cost = cost
                best = evaluation
        if best is None:
            return CostResult(cost=float("inf"), selected=None)
        return CostResult(cost=best_cost, selected=best)


class Cost2(CostCriterion):
    """Sum of effective priorities, urgency of the most urgent destination."""

    name = "C2"

    def evaluate(
        self,
        evaluations: Tuple[DestinationEvaluation, ...],
        weights: EUWeights,
    ) -> CostResult:
        """``-W_E·ΣEfp − W_U·(most urgent satisfiable urgency)``."""
        most_urgent = most_urgent_satisfiable(evaluations)
        if most_urgent is None:
            return CostResult(cost=float("inf"), selected=None)
        efp_sum = sum(e.effective_priority for e in evaluations)
        cost = (
            -weights.effective * efp_sum
            - weights.urgency * most_urgent.urgency
        )
        return CostResult(cost=cost, selected=most_urgent)


class Cost3(CostCriterion):
    """Priority-to-urgency ratio, summed over satisfiable destinations.

    Independent of the E-U weights: scaling ``Efp`` by ``W_E`` and
    ``Urgency`` by ``W_U`` multiplies every candidate's cost by the same
    ``W_E/W_U``, leaving the ranking unchanged (§4.8).
    """

    name = "C3"
    eu_independent = True

    def evaluate(
        self,
        evaluations: Tuple[DestinationEvaluation, ...],
        weights: EUWeights,
    ) -> CostResult:
        """``Σ Efp/Urgency`` over satisfiable destinations (weights-free)."""
        most_urgent = most_urgent_satisfiable(evaluations)
        if most_urgent is None:
            return CostResult(cost=float("inf"), selected=None)
        cost = sum(
            e.effective_priority / e.guarded_urgency
            for e in evaluations
            if e.satisfiable
        )
        return CostResult(cost=cost, selected=most_urgent)


class Cost4(CostCriterion):
    """Sum of effective priorities and sum of urgencies (the paper's best)."""

    name = "C4"

    def evaluate(
        self,
        evaluations: Tuple[DestinationEvaluation, ...],
        weights: EUWeights,
    ) -> CostResult:
        """``-W_E·ΣEfp − W_U·ΣUrgency`` over the whole group."""
        most_urgent = most_urgent_satisfiable(evaluations)
        if most_urgent is None:
            return CostResult(cost=float("inf"), selected=None)
        efp_sum = sum(e.effective_priority for e in evaluations)
        urgency_sum = sum(e.urgency for e in evaluations)
        cost = (
            -weights.effective * efp_sum - weights.urgency * urgency_sum
        )
        return CostResult(cost=cost, selected=most_urgent)


_CRITERIA: Dict[str, Type[CostCriterion]] = {
    cls.name: cls for cls in (Cost1, Cost2, Cost3, Cost4)
}


def criterion_names() -> Tuple[str, ...]:
    """The registered criterion names, C1 first."""
    return tuple(sorted(_CRITERIA))


def get_criterion(name: str) -> CostCriterion:
    """Instantiate a criterion by registry name (case-insensitive).

    Raises:
        ConfigurationError: for unknown names.
    """
    key = name.upper()
    if key not in _CRITERIA:
        raise ConfigurationError(
            f"unknown cost criterion {name!r}; known: {criterion_names()}"
        )
    return _CRITERIA[key]()


def register_criterion(cls: Type[CostCriterion]) -> Type[CostCriterion]:
    """Register a user-defined criterion class (usable as a decorator).

    The class must define a unique, non-empty ``name``.

    Raises:
        ConfigurationError: on a missing or duplicate name.
    """
    if not cls.name:
        raise ConfigurationError("cost criteria need a non-empty name")
    key = cls.name.upper()
    if key in _CRITERIA:
        raise ConfigurationError(
            f"cost criterion {cls.name!r} is already registered"
        )
    _CRITERIA[key] = cls
    return cls
