"""The cost-criterion building blocks of §4.8: ``Sat``, ``Efp``, ``Urgency``.

Given the latest shortest-path tree for a data item, each *unsatisfied*
request for that item is evaluated against its predicted arrival ``A_T``:

* ``Sat`` — 1 if the predicted arrival meets the deadline, else 0 (and if
  the shortest path misses the deadline, no path makes it);
* ``Efp = Sat * W[Priority]`` — the effective priority;
* ``Urgency = -Sat * (Rft - A_T)`` — minus the slack; larger (closer to
  zero) means more urgent, and unsatisfiable requests contribute 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.priority import PriorityWeighting
from repro.core.request import Request
from repro.routing.paths import ShortestPathTree

#: Guard against division by zero in ``Cost3`` when slack is exactly zero;
#: one millisecond is far below the model's meaningful time resolution.
URGENCY_EPSILON = 1e-3


@dataclass(frozen=True)
class DestinationEvaluation:
    """The §4.8 terms for one request given the current tree.

    Attributes:
        request: the evaluated (unsatisfied) request.
        arrival: predicted earliest arrival ``A_T`` at the destination
            (``inf`` when unreachable).
        satisfiable: the ``Sat`` indicator.
        effective_priority: ``Efp`` — 0 when unsatisfiable.
        urgency: the (non-positive) urgency term — 0 when unsatisfiable.
    """

    request: Request
    arrival: float
    satisfiable: bool
    effective_priority: float
    urgency: float

    @property
    def slack(self) -> float:
        """``Rft − A_T`` for satisfiable requests, else ``inf``."""
        if not self.satisfiable:
            return float("inf")
        return self.request.deadline - self.arrival

    @property
    def guarded_urgency(self) -> float:
        """Urgency bounded away from zero for the ``Cost3`` ratio."""
        return min(self.urgency, -URGENCY_EPSILON)


def evaluate_destination(
    request: Request,
    tree: ShortestPathTree,
    weighting: PriorityWeighting,
) -> DestinationEvaluation:
    """Compute ``Sat``/``Efp``/``Urgency`` for one request.

    Args:
        request: a request for the tree's data item.
        tree: the item's current shortest-path tree.
        weighting: the scenario's priority weighting ``W``.
    """
    arrival = tree.arrival(request.destination)
    satisfiable = arrival <= request.deadline
    if satisfiable:
        effective_priority = weighting.weight(request.priority)
        urgency = -(request.deadline - arrival)
    else:
        effective_priority = 0.0
        urgency = 0.0
    return DestinationEvaluation(
        request=request,
        arrival=arrival,
        satisfiable=satisfiable,
        effective_priority=effective_priority,
        urgency=urgency,
    )


def most_urgent_satisfiable(
    evaluations: Tuple[DestinationEvaluation, ...]
) -> Optional[DestinationEvaluation]:
    """The satisfiable evaluation with the largest urgency (smallest slack).

    Ties break on request id for determinism.  Returns ``None`` when no
    evaluation is satisfiable.
    """
    best: Optional[DestinationEvaluation] = None
    for evaluation in evaluations:
        if not evaluation.satisfiable:
            continue
        if (
            best is None
            or evaluation.urgency > best.urgency
            or (
                evaluation.urgency == best.urgency
                and evaluation.request.request_id < best.request.request_id
            )
        ):
            best = evaluation
    return best
