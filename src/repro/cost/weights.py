"""The relative weights ``W_E`` and ``W_U`` of §4.8 and the E-U ratio.

The paper's figures sweep ``log10(W_E / W_U)`` from −3 to 5 plus the two
extremes: ``+inf`` (only the effective-priority term counts) and ``−inf``
(only the urgency term counts).  :class:`EUWeights` realizes each point of
that sweep as a concrete weight pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import ConfigurationError

#: The E-U grid of the paper's figures: −inf, −3..5, +inf.
PAPER_LOG_RATIOS: Tuple[float, ...] = (
    float("-inf"),
    -3.0,
    -2.0,
    -1.0,
    0.0,
    1.0,
    2.0,
    3.0,
    4.0,
    5.0,
    float("inf"),
)


@dataclass(frozen=True)
class EUWeights:
    """The pair ``(W_E, W_U)`` weighting effective priority vs urgency.

    Attributes:
        effective: ``W_E`` — weight of the effective-priority term.
        urgency: ``W_U`` — weight of the urgency term.
    """

    effective: float
    urgency: float

    def __post_init__(self) -> None:
        if self.effective < 0 or self.urgency < 0:
            raise ConfigurationError(
                f"E-U weights must be non-negative, got "
                f"({self.effective}, {self.urgency})"
            )
        if self.effective == 0 and self.urgency == 0:
            raise ConfigurationError("at least one E-U weight must be positive")

    @classmethod
    def from_log_ratio(cls, log10_ratio: float) -> "EUWeights":
        """Realize one point of the paper's E-U sweep.

        ``+inf`` maps to ``(1, 0)`` (priority only), ``−inf`` to ``(0, 1)``
        (urgency only); a finite ``x`` maps to ``(10**x, 1)``.
        """
        if math.isinf(log10_ratio):
            if log10_ratio > 0:
                return cls(effective=1.0, urgency=0.0)
            return cls(effective=0.0, urgency=1.0)
        return cls(effective=10.0 ** log10_ratio, urgency=1.0)

    @property
    def log_ratio(self) -> float:
        """``log10(W_E / W_U)`` (``±inf`` when one weight is zero)."""
        if self.urgency == 0:
            return float("inf")
        if self.effective == 0:
            return float("-inf")
        return math.log10(self.effective / self.urgency)

    def label(self) -> str:
        """Axis label used in the figures (``-inf``, ``-3`` .. ``5``, ``inf``)."""
        ratio = self.log_ratio
        if math.isinf(ratio):
            return "inf" if ratio > 0 else "-inf"
        if ratio == int(ratio):
            return str(int(ratio))
        return f"{ratio:g}"

    def __str__(self) -> str:
        return f"EU(log10={self.label()})"


def paper_sweep() -> Tuple[EUWeights, ...]:
    """The full E-U grid used by Figures 2–5."""
    return tuple(EUWeights.from_log_ratio(x) for x in PAPER_LOG_RATIOS)


def as_weights(value: Union[float, EUWeights]) -> EUWeights:
    """Coerce a raw ``log10`` ratio or an :class:`EUWeights` to weights."""
    if isinstance(value, EUWeights):
        return value
    return EUWeights.from_log_ratio(float(value))
