"""Dynamic data staging: event-driven re-scheduling (the paper's §6 future
work) — request arrivals over time and copy-loss fault injection."""

from repro.dynamic.driver import (
    DynamicDriver,
    DynamicResult,
    EventOutcome,
    reveal_at_item_start,
)
from repro.dynamic.events import (
    CopyLoss,
    Event,
    LinkOutage,
    RequestArrival,
    RequestCancellation,
    sorted_events,
)

__all__ = [
    "CopyLoss",
    "DynamicDriver",
    "DynamicResult",
    "Event",
    "LinkOutage",
    "EventOutcome",
    "RequestArrival",
    "RequestCancellation",
    "reveal_at_item_start",
    "sorted_events",
]
