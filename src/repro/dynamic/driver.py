"""Event-driven re-scheduling over the static heuristics.

:class:`DynamicDriver` simulates the dynamic data-staging situation the
paper defers to future work: requests are revealed over time and copies
can be lost.  At each event instant the driver updates the state (reveals
requests, removes lost copies, reopens affected deliveries) and re-runs
the configured static heuristic restricted to *revealed, unsatisfied*
requests with every new transfer constrained to start at or after the
current instant.

Two design points carried over from the paper:

* transfers already booked are never retracted (§4.5: partial schedules
  remain — "a change in the network could allow the request to be
  satisfied");
* copies still resident in the network (sources, destinations, and γ-held
  intermediates) are what re-serve a destination after a loss — §4.4's
  fault-tolerance rationale; ``benchmarks/bench_dynamic.py`` quantifies the
  recovered value.

Dynamic schedules retract deliveries on losses, so they are scored through
the driver's result rather than the static
:class:`~repro.core.validation.ScheduleValidator` (whose replay assumes a
loss-free world).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.core.evaluation import evaluate_satisfied
from repro.core.units import time_eq
from repro.core.schedule import Schedule, ScheduleEffect
from repro.core.scenario import Scenario
from repro.core.state import NetworkState
from repro.cost.criteria import CostCriterion
from repro.cost.weights import EUWeights
from repro.dynamic.events import (
    CopyLoss,
    Event,
    LinkOutage,
    RequestArrival,
    RequestCancellation,
    sorted_events,
)
from repro.errors import ModelError
from repro.heuristics.base import EngineStats, TreeCache
from repro.heuristics.registry import make_heuristic

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class EventOutcome:
    """What one re-scheduling pass did.

    Attributes:
        time: the pass's wall-clock instant.
        revealed: request ids revealed at this instant.
        losses: ``(item_id, machine)`` pairs lost at this instant.
        reopened: previously satisfied request ids reopened by the losses.
        hops_booked: transfers booked by the pass.
        outages: physical link ids failing at this instant.
        cancelled: request ids withdrawn at this instant (churn).
    """

    time: float
    revealed: Tuple[int, ...]
    losses: Tuple[Tuple[int, int], ...]
    reopened: Tuple[int, ...]
    hops_booked: int
    outages: Tuple[int, ...] = ()
    cancelled: Tuple[int, ...] = ()


@dataclass(frozen=True)
class DynamicResult:
    """Outcome of a dynamic simulation.

    Attributes:
        schedule: all transfers booked across every pass (deliveries
            reflect the final, post-loss satisfaction set).
        effect: the final scored satisfaction set.
        outcomes: one record per re-scheduling pass, in time order.
        stats: accumulated engine instrumentation.
    """

    schedule: Schedule
    effect: ScheduleEffect
    outcomes: Tuple[EventOutcome, ...]
    stats: EngineStats

    @property
    def satisfied_request_ids(self) -> Tuple[int, ...]:
        """Finally satisfied requests, ascending."""
        return tuple(sorted(self.schedule.deliveries))


class DynamicDriver:
    """Re-runs a static heuristic at every event instant.

    Args:
        heuristic: heuristic registry name (``partial`` reacts most
            gracefully to churn; any of the three works).
        criterion: criterion name or instance for the inner heuristic.
        weights: E-U weights or raw ``log10`` ratio.
        use_tree_cache: forwarded to the engine (each pass still gets a
            fresh cache — plans from an earlier "now" are never reused).
        use_compiled: forwarded to the engine's routing layer (array
            kernel vs reference object loop; identical schedules).
    """

    def __init__(
        self,
        heuristic: str = "partial",
        criterion: Union[str, CostCriterion] = "C4",
        weights: Union[float, EUWeights] = 2.0,
        use_tree_cache: bool = True,
        use_compiled: bool = True,
    ) -> None:
        self._inner = make_heuristic(
            heuristic, criterion=criterion, weights=weights,
            use_tree_cache=use_tree_cache, use_compiled=use_compiled,
        )
        self._use_tree_cache = use_tree_cache
        self._use_compiled = use_compiled

    def label(self) -> str:
        """Run label, e.g. ``"dynamic(partial/C4)"``."""
        return f"dynamic({self._inner.label()})"

    def run(
        self, scenario: Scenario, events: Sequence[Event]
    ) -> DynamicResult:
        """Simulate the event sequence over one scenario.

        Requests without a :class:`RequestArrival` event are treated as
        known at t=0 (the static subset).

        Raises:
            ModelError: for events referencing unknown requests/items.
        """
        self._check_events(scenario, events)
        started = time.perf_counter()
        stats = EngineStats()
        state = NetworkState(scenario, schedule_name=self.label())
        arrival_times: Dict[int, float] = {}
        for event in events:
            if isinstance(event, RequestArrival):
                arrival_times[event.request_id] = event.time
        revealed: Set[int] = {
            request.request_id
            for request in scenario.requests
            if request.request_id not in arrival_times
        }
        withdrawn: Set[int] = set()
        outcomes: List[EventOutcome] = []

        # Pass 0: everything known at the start.
        outcomes.append(
            self._pass(state, stats, revealed, now=0.0,
                       newly_revealed=tuple(sorted(revealed)),
                       losses=(), reopened=())
        )

        ordered = sorted_events(events)
        index = 0
        while index < len(ordered):
            now = ordered[index].time
            newly_revealed: List[int] = []
            losses: List[Tuple[int, int]] = []
            reopened: List[int] = []
            outages: List[int] = []
            cancelled: List[int] = []
            while index < len(ordered) and time_eq(ordered[index].time, now):
                event = ordered[index]
                if isinstance(event, RequestArrival):
                    # A cancellation that precedes the arrival (or shares
                    # its instant — arrivals sort first) suppresses it.
                    if event.request_id not in withdrawn:
                        revealed.add(event.request_id)
                        newly_revealed.append(event.request_id)
                elif isinstance(event, LinkOutage):
                    self._apply_outage(state, event)
                    outages.append(event.physical_id)
                elif isinstance(event, RequestCancellation):
                    # Deliveries that already happened stand; an
                    # undelivered request simply stops being scheduled.
                    withdrawn.add(event.request_id)
                    revealed.discard(event.request_id)
                    cancelled.append(event.request_id)
                    if state.tracer.enabled:
                        state.tracer.on_request_cancelled(
                            event.request_id, event.time
                        )
                else:
                    reopened.extend(
                        self._apply_loss(state, event)
                    )
                    losses.append((event.item_id, event.machine))
                index += 1
            outcomes.append(
                self._pass(
                    state,
                    stats,
                    revealed,
                    now=now,
                    newly_revealed=tuple(newly_revealed),
                    losses=tuple(losses),
                    reopened=tuple(reopened),
                    outages=tuple(outages),
                    cancelled=tuple(cancelled),
                )
            )
        stats.elapsed_seconds = time.perf_counter() - started
        effect = evaluate_satisfied(
            scenario, state.schedule.satisfied_request_ids()
        )
        return DynamicResult(
            schedule=state.schedule,
            effect=effect,
            outcomes=tuple(outcomes),
            stats=stats,
        )

    # -- internals ----------------------------------------------------------

    def _pass(
        self,
        state: NetworkState,
        stats: EngineStats,
        revealed: Set[int],
        now: float,
        newly_revealed: Tuple[int, ...],
        losses: Tuple[Tuple[int, int], ...],
        reopened: Tuple[int, ...],
        outages: Tuple[int, ...] = (),
        cancelled: Tuple[int, ...] = (),
    ) -> EventOutcome:
        visible = frozenset(revealed)

        def request_filter(request) -> bool:
            return request.request_id in visible

        cache = TreeCache(
            state,
            stats,
            enabled=self._use_tree_cache,
            not_before=now,
            use_compiled=self._use_compiled,
        )
        before = stats.hops_booked
        self._inner.drain(state, cache, stats, request_filter=request_filter)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "pass at t=%.1f: +%d revealed, %d losses, %d outages, "
                "%d reopened, %d hops booked",
                now,
                len(newly_revealed),
                len(losses),
                len(outages),
                len(reopened),
                stats.hops_booked - before,
            )
        return EventOutcome(
            time=now,
            revealed=newly_revealed,
            losses=losses,
            reopened=reopened,
            hops_booked=stats.hops_booked - before,
            outages=outages,
            cancelled=cancelled,
        )

    @staticmethod
    def _apply_outage(state: NetworkState, event: LinkOutage) -> None:
        """Cut every virtual link of the failing facility from the event."""
        for vlink in state.scenario.network.virtual_links:
            if vlink.physical_id == event.physical_id:
                if event.time < state.link_cutoff(vlink.link_id):
                    state.disable_link_from(vlink.link_id, event.time)

    def _apply_loss(
        self, state: NetworkState, event: CopyLoss
    ) -> List[int]:
        """Remove the copy if present; reopen an affected delivery."""
        reopened: List[int] = []
        copy = state.copy_at(event.item_id, event.machine)
        if copy is None or not (
            copy.available_from <= event.time < copy.release
        ):
            # The copy never materialized (or is already gone) — the loss
            # event is a no-op, as in a real system.
            return reopened
        state.remove_copy(event.item_id, event.machine, event.time)
        for request in state.scenario.requests_for_item(event.item_id):
            if (
                request.destination == event.machine
                and state.is_satisfied(request.request_id)
            ):
                state.reopen_request(request.request_id)
                reopened.append(request.request_id)
        return reopened

    @staticmethod
    def _check_events(
        scenario: Scenario, events: Sequence[Event]
    ) -> None:
        seen_arrivals: Set[int] = set()
        seen_cancellations: Set[int] = set()
        for event in events:
            if isinstance(event, RequestArrival):
                scenario.request(event.request_id)  # raises on unknown ids
                if event.request_id in seen_arrivals:
                    raise ModelError(
                        f"request {event.request_id} has two arrival events"
                    )
                seen_arrivals.add(event.request_id)
            elif isinstance(event, CopyLoss):
                scenario.item(event.item_id)
                if event.machine >= scenario.network.machine_count:
                    raise ModelError(
                        f"loss event references unknown machine "
                        f"{event.machine}"
                    )
            elif isinstance(event, LinkOutage):
                known = {
                    plink.physical_id
                    for plink in scenario.network.physical_links
                }
                if event.physical_id not in known:
                    raise ModelError(
                        f"outage event references unknown physical link "
                        f"{event.physical_id}"
                    )
            elif isinstance(event, RequestCancellation):
                scenario.request(event.request_id)
                if event.request_id in seen_cancellations:
                    raise ModelError(
                        f"request {event.request_id} has two cancellation "
                        f"events"
                    )
                seen_cancellations.add(event.request_id)
            else:  # pragma: no cover - typing guard
                raise ModelError(f"unknown event type: {event!r}")


def reveal_at_item_start(scenario: Scenario) -> Tuple[RequestArrival, ...]:
    """A natural arrival process: each request revealed when its item
    becomes available at its sources (before that, nobody could know the
    item exists)."""
    return tuple(
        RequestArrival(
            time=scenario.item(request.item_id).earliest_availability(),
            request_id=request.request_id,
        )
        for request in scenario.requests
    )
