"""Events for the dynamic data-staging simulation.

The paper solves the *static* snapshot problem and names the dynamic
version — ad-hoc requests, changing networks, lost copies — as the target
of future work (§1, §4.5, §6).  This module defines the two event kinds
the dynamic driver simulates:

* :class:`RequestArrival` — a request becomes known to the scheduler at a
  point in time (before that it is hidden, exactly like "all requests
  include only those known at any specific time instant" in §3);
* :class:`CopyLoss` — a machine loses its resident copy of an item (a
  link/storage failure, the §4.4 motivation for holding intermediate
  copies γ past the latest deadline);
* :class:`RequestCancellation` — a request is withdrawn before its
  deadline (churn injected by :mod:`repro.faults` plans: the user no
  longer wants the data, so capacity spent on it is wasted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.errors import ModelError


@dataclass(frozen=True)
class RequestArrival:
    """A request is revealed to the scheduler at ``time``.

    Attributes:
        time: reveal instant (seconds).
        request_id: the scenario request becoming visible.
    """

    time: float
    request_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ModelError(
                f"arrival event time must be >= 0, got {self.time}"
            )


@dataclass(frozen=True)
class CopyLoss:
    """A machine loses its copy of an item at ``time``.

    Attributes:
        time: loss instant (seconds).
        item_id: the affected data item.
        machine: the machine losing its copy.
    """

    time: float
    item_id: int
    machine: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ModelError(f"loss event time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class LinkOutage:
    """A physical link fails permanently at ``time``.

    From the outage instant no *new* transfer may complete on any of the
    facility's virtual links; transfers already booked are grandfathered
    (model a lost in-flight payload as a separate :class:`CopyLoss` at the
    receiver).

    Attributes:
        time: outage instant (seconds).
        physical_id: the failing physical link (all of its availability
            windows are affected).
    """

    time: float
    physical_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ModelError(
                f"outage event time must be >= 0, got {self.time}"
            )


@dataclass(frozen=True)
class RequestCancellation:
    """A request is withdrawn at ``time`` and stops being scheduled.

    A delivery that already happened stands (the data arrived before the
    user changed their mind); an undelivered cancelled request is removed
    from the visible set and never counts as satisfied.  A cancellation
    before the request's arrival event suppresses the later reveal.

    Attributes:
        time: withdrawal instant (seconds).
        request_id: the scenario request being withdrawn.
    """

    time: float
    request_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ModelError(
                f"cancellation event time must be >= 0, got {self.time}"
            )


Event = Union[RequestArrival, CopyLoss, LinkOutage, RequestCancellation]


def sorted_events(events) -> Tuple[Event, ...]:
    """Events in simulation order (time; arrivals before faults at ties).

    Processing arrivals first at a shared instant lets a freshly revealed
    request react to a simultaneous fault in the same re-scheduling pass.
    """
    def key(event: Event):
        kind = 0 if isinstance(event, RequestArrival) else 1
        return (event.time, kind)

    return tuple(sorted(events, key=key))
