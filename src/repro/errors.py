"""Exception hierarchy for the data-staging library.

Every error raised by the library derives from :class:`DataStagingError` so
callers can catch the whole family with a single ``except`` clause.  More
specific subclasses distinguish modelling mistakes (bad input data) from
scheduling-time violations (a schedule that breaks a resource constraint).
"""

from __future__ import annotations


class DataStagingError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(DataStagingError):
    """An entity of the mathematical model was constructed inconsistently.

    Examples: a virtual link whose window ends before it starts, a request
    whose destination machine does not exist, a negative data-item size.
    """


class ScenarioError(ModelError):
    """A scenario failed cross-entity validation.

    Raised by :meth:`repro.core.scenario.Scenario.validate` when the network,
    data-location table, and request table are mutually inconsistent (e.g. a
    request references an unknown data item).
    """


class CapacityError(DataStagingError):
    """A storage reservation would drive a machine's free capacity negative."""


class LinkBusyError(DataStagingError):
    """A transfer was booked onto a virtual link interval that is occupied."""


class InfeasibleTransferError(DataStagingError):
    """A requested communication step cannot be realized at all.

    Raised when no start time inside the link's availability window satisfies
    the busy-interval, capacity, and sender-residency constraints.
    """


class ValidationError(DataStagingError):
    """An emitted schedule violates one of the model's feasibility rules.

    Raised by :class:`repro.core.validation.ScheduleValidator`; the message
    identifies the offending communication step and the violated constraint.
    """


class ConfigurationError(DataStagingError):
    """A generator or experiment configuration is out of its legal range."""


class SchedulingError(DataStagingError):
    """A heuristic reached an internal state that should be impossible.

    This signals a bug in the scheduler rather than bad user input: e.g. a
    shortest-path tree claimed an arrival time that the state refused to book.
    """
