"""Bounded exhaustive search — an exact-over-policy-class quality anchor
for the heuristics on tiny instances."""

from repro.exhaustive.search import (
    ExhaustiveSearch,
    SearchLimits,
    SearchResult,
)

__all__ = ["ExhaustiveSearch", "SearchLimits", "SearchResult"]
