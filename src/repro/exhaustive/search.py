"""Bounded exhaustive search over valid communication-step sequences.

The paper argues that enumerating *all* schedules is intractable at
realistic sizes (§5.1) and therefore evaluates the heuristics only against
bounds.  For *tiny* instances, however, an exact-over-policy-class search
is affordable and gives a much tighter quality anchor: this module
explores **every** sequence of valid next communication steps — the same
move set the partial path heuristic chooses greedily from — with
branch-and-bound pruning, and returns the best schedule found.

Scope of optimality (documented, deliberate): each explored move books a
transfer at its *earliest feasible time* along a current shortest-path
tree, exactly like the heuristics.  Schedules that gain by idling a
resource past its earliest feasible slot, or by routing off every
shortest-path tree, are outside the search space.  Within that policy
class the search is exhaustive, so its value dominates all three
heuristics, the random baselines, and the priority-tier scheme by
construction — making it a valid measured upper anchor between the
heuristics and ``possible_satisfy``.

Search controls keep worst cases bounded: an expansion budget, a wall-time
budget, and transposition pruning on the set of booked transfers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from repro.core.evaluation import evaluate_satisfied
from repro.core.scenario import Scenario
from repro.core.schedule import Schedule, ScheduleEffect
from repro.core.state import NetworkState, TransferPlan
from repro.errors import ConfigurationError
from repro.heuristics.base import EngineStats, TreeCache
from repro.heuristics.candidates import enumerate_groups


@dataclass(frozen=True)
class SearchLimits:
    """Budgets bounding the exhaustive search.

    Attributes:
        max_expansions: maximum number of explored tree nodes.
        time_limit_seconds: wall-clock budget.
    """

    max_expansions: int = 100_000
    time_limit_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.max_expansions < 1:
            raise ConfigurationError(
                f"max_expansions must be >= 1, got {self.max_expansions}"
            )
        if self.time_limit_seconds <= 0:
            raise ConfigurationError(
                f"time_limit_seconds must be > 0, got "
                f"{self.time_limit_seconds}"
            )


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one exhaustive search.

    Attributes:
        schedule: the best schedule found.
        effect: its scored satisfaction set.
        expansions: explored search-tree nodes.
        complete: ``True`` when the search space was fully explored within
            budget (the result is exact for the policy class); ``False``
            when a budget cut exploration short (still a valid schedule,
            no optimality claim).
    """

    schedule: Schedule
    effect: ScheduleEffect
    expansions: int
    complete: bool

    @property
    def weighted_sum(self) -> float:
        """The best found weighted priority sum."""
        return self.effect.weighted_sum


class ExhaustiveSearch:
    """Depth-first branch-and-bound over candidate communication steps.

    Args:
        limits: expansion/time budgets (defaults suit "tiny" scenarios of
            a handful of requests; see :meth:`solve`).
    """

    def __init__(self, limits: Optional[SearchLimits] = None) -> None:
        self._limits = limits if limits is not None else SearchLimits()

    def solve(self, scenario: Scenario) -> SearchResult:
        """Search the scenario's step-sequence space for the best schedule.

        Intended for instances of roughly a dozen requests or fewer; the
        branching factor is the number of candidate groups per state and
        depth is the total hop count, so cost grows factorially with
        instance size.  Budgets make larger calls safe but inexact
        (``complete=False``).
        """
        started = time.perf_counter()
        self._deadline = started + self._limits.time_limit_seconds
        self._expansions = 0
        self._complete = True
        self._best_value = -1.0
        self._best_schedule: Optional[Schedule] = None
        self._seen: Set[FrozenSet[Tuple[int, int, float]]] = set()

        root = NetworkState(scenario, schedule_name="exhaustive")
        self._explore(root, frozenset())

        schedule = (
            self._best_schedule
            if self._best_schedule is not None
            else root.schedule
        )
        return SearchResult(
            schedule=schedule,
            effect=evaluate_satisfied(
                scenario, schedule.satisfied_request_ids()
            ),
            expansions=self._expansions,
            complete=self._complete,
        )

    # -- internals ----------------------------------------------------------

    def _explore(
        self,
        state: NetworkState,
        signature: FrozenSet[Tuple[int, int, float]],
    ) -> None:
        if self._expansions >= self._limits.max_expansions or (
            time.perf_counter() > self._deadline
        ):
            self._complete = False
            return
        self._expansions += 1

        scenario = state.scenario
        current_value = sum(
            scenario.weighting.weight(
                scenario.request(request_id).priority
            )
            for request_id in state.satisfied_request_ids()
        )
        if current_value > self._best_value:
            self._best_value = current_value
            self._best_schedule = state.clone().schedule

        stats = EngineStats()
        cache = TreeCache(state, stats, enabled=True)
        moves = []
        optimistic = current_value
        for item_id in scenario.requested_item_ids():
            if not state.unsatisfied_requests_for_item(item_id):
                continue
            tree = cache.tree_for(item_id)
            groups = enumerate_groups(
                state, item_id, tree, scenario.weighting
            )
            moves.extend(groups)
            # Admissible bound: every currently satisfiable unsatisfied
            # request might still be delivered.
            counted = set()
            for group in groups:
                for evaluation in group.evaluations:
                    request = evaluation.request
                    if evaluation.satisfiable and (
                        request.request_id not in counted
                    ):
                        counted.add(request.request_id)
                        optimistic += scenario.weighting.weight(
                            request.priority
                        )
        if not moves:
            return
        if optimistic <= self._best_value:
            return  # bound: even satisfying everything reachable cannot win

        # Order moves by immediate satisfiable value (helps the bound fire
        # early), then deterministically.
        def move_key(group):
            value = sum(
                e.effective_priority for e in group.evaluations
            )
            return (-value, group.tie_break_key())

        for group in sorted(moves, key=move_key):
            hop = group.first_hop
            child_signature = signature | {
                (group.item_id, hop.link_id, hop.start)
            }
            if child_signature in self._seen:
                continue
            self._seen.add(child_signature)
            child = state.clone()
            link = scenario.network.link(hop.link_id)
            child.book_transfer(
                TransferPlan(
                    item_id=group.item_id,
                    link=link,
                    start=hop.start,
                    end=hop.end,
                    release=child.release_time_at(
                        group.item_id, hop.receiver
                    ),
                )
            )
            self._explore(child, child_signature)
            if not self._complete and (
                time.perf_counter() > self._deadline
            ):
                return
