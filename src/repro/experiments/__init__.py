"""Experiment harness: runs, sweeps, aggregation, figure/table producers."""

from repro.experiments.aggregate import (
    Aggregate,
    aggregate_records,
    mean_by_scheduler,
    per_priority_totals,
    stddev,
)
from repro.experiments.congestion import (
    EXTENDED_WEIGHTINGS,
    CongestionPoint,
    WeightingPoint,
    congestion_sweep,
    weighting_sweep,
)
from repro.experiments.crossover import (
    Crossover,
    SeriesPeak,
    figure_peaks,
    find_crossovers,
    ratio_sensitivity,
    series_peak,
)
from repro.experiments.executor import (
    CACHE_FORMAT_VERSION,
    CELL_KINDS,
    ExecutorStats,
    RunCache,
    SweepCell,
    SweepExecutor,
    SweepSummary,
    ensure_executor,
)
from repro.experiments.figures import (
    FIGURE_CRITERIA,
    FigureData,
    Series,
    figure2,
    heuristic_figure,
)
from repro.experiments.report import (
    REPORT_SECTIONS,
    ReportSection,
    build_report,
)
from repro.experiments.runner import (
    RunRecord,
    record_result,
    run_pair,
    run_scheduler,
)
from repro.experiments.scale import (
    CI_LOG_RATIOS,
    SCALE_ENV_VAR,
    ExperimentScale,
    current_scale,
    scale_by_name,
)
from repro.experiments.studies import (
    RuntimeRow,
    TierComparison,
    WeightingOutcome,
    priority_tier_comparison,
    regenerate_under_weighting,
    runtime_study,
    weighting_comparison,
)
from repro.experiments.sweep import (
    resolve_ratios,
    sweep_all_criteria,
    sweep_pair,
)
from repro.experiments.tables import render_figure, render_minmax, render_table

__all__ = [
    "Aggregate",
    "CACHE_FORMAT_VERSION",
    "CELL_KINDS",
    "CI_LOG_RATIOS",
    "CongestionPoint",
    "Crossover",
    "EXTENDED_WEIGHTINGS",
    "ExecutorStats",
    "ExperimentScale",
    "FIGURE_CRITERIA",
    "FigureData",
    "RunCache",
    "SweepCell",
    "SweepExecutor",
    "SweepSummary",
    "REPORT_SECTIONS",
    "ReportSection",
    "RunRecord",
    "RuntimeRow",
    "SCALE_ENV_VAR",
    "Series",
    "SeriesPeak",
    "TierComparison",
    "WeightingOutcome",
    "WeightingPoint",
    "aggregate_records",
    "build_report",
    "congestion_sweep",
    "current_scale",
    "ensure_executor",
    "figure2",
    "figure_peaks",
    "find_crossovers",
    "heuristic_figure",
    "mean_by_scheduler",
    "per_priority_totals",
    "priority_tier_comparison",
    "ratio_sensitivity",
    "record_result",
    "regenerate_under_weighting",
    "render_figure",
    "render_minmax",
    "render_table",
    "resolve_ratios",
    "run_pair",
    "run_scheduler",
    "runtime_study",
    "scale_by_name",
    "series_peak",
    "stddev",
    "sweep_all_criteria",
    "sweep_pair",
    "weighting_comparison",
    "weighting_sweep",
]
