"""Aggregation of run records across test cases (the paper's 40-case means).

Every data point in Figures 2–5 is the mean over the same randomly
generated test cases; the companion TR also reports the per-case minimum
and maximum.  :class:`Aggregate` carries all three plus the count, and
:func:`aggregate_records` folds any record collection down by key.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.experiments.runner import RunRecord


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one metric over a set of runs.

    Attributes:
        mean: arithmetic mean.
        minimum: smallest observed value.
        maximum: largest observed value.
        count: number of runs aggregated.
    """

    mean: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        """Aggregate a non-empty value sequence.

        Raises:
            ValueError: for an empty sequence.
        """
        if not values:
            raise ValueError("cannot aggregate zero values")
        return cls(
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
            count=len(values),
        )

    @property
    def spread(self) -> float:
        """``maximum − minimum``."""
        return self.maximum - self.minimum

    def __str__(self) -> str:
        return (
            f"{self.mean:.1f} (min {self.minimum:.1f}, "
            f"max {self.maximum:.1f}, n={self.count})"
        )


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance)


def aggregate_records(
    records: Iterable[RunRecord],
    key: Callable[[RunRecord], Tuple],
    metric: Callable[[RunRecord], float] = lambda r: r.weighted_sum,
) -> Dict[Tuple, Aggregate]:
    """Group records by ``key`` and aggregate ``metric`` within each group."""
    grouped: Dict[Tuple, List[float]] = {}
    for record in records:
        grouped.setdefault(key(record), []).append(metric(record))
    return {k: Aggregate.of(values) for k, values in grouped.items()}


def mean_by_scheduler(
    records: Iterable[RunRecord],
) -> Dict[Tuple[str, str], Aggregate]:
    """Aggregate weighted sums by ``(scheduler, eu_label)``."""
    return aggregate_records(records, key=lambda r: (r.scheduler, r.eu_label))


def per_priority_totals(
    records: Sequence[RunRecord],
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Mean satisfied and total counts per priority class across records.

    Raises:
        ValueError: when records disagree on the number of priority classes
            or the sequence is empty.
    """
    if not records:
        raise ValueError("cannot summarize zero records")
    classes = {len(r.satisfied_by_priority) for r in records}
    if len(classes) != 1:
        raise ValueError(f"inconsistent priority class counts: {classes}")
    width = classes.pop()
    satisfied = tuple(
        sum(r.satisfied_by_priority[p] for r in records) / len(records)
        for p in range(width)
    )
    totals = tuple(
        sum(r.total_by_priority[p] for r in records) / len(records)
        for p in range(width)
    )
    return satisfied, totals
