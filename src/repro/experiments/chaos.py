"""Robustness study: heuristics under swept fault intensities.

The paper's evaluation asks "which heuristic satisfies the most weighted
requests?" on healthy networks; this study asks how gracefully each
answer degrades when the network misbehaves.  For every intensity in a
sweep a seeded static :class:`~repro.faults.plan.FaultPlan` (outages +
bandwidth degradation; churn is a dynamic-driver concern) is generated
per test case, every registered heuristic runs on the faulted cases
through the normal :class:`~repro.experiments.executor.SweepExecutor`
(so records cache and parallelize like any other sweep), and the report
tabulates mean deadline misses per heuristic with deltas against the
healthy (intensity 0) baseline.

Everything is deterministic: plans derive from ``(scenario, intensity,
seed)``, cells run through the executor's order-preserving grid, and the
rendered report is byte-stable — there is a golden fixture under
``benchmarks/results/ci/`` pinning it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.scenario import Scenario
from repro.cost.weights import as_weights
from repro.errors import ConfigurationError
from repro.experiments.executor import (
    SweepCell,
    SweepExecutor,
    ensure_executor,
)
from repro.experiments.tables import render_table
from repro.faults.plan import FaultPlan
from repro.heuristics.registry import heuristic_names

#: Schema version of the chaos-report JSON document.
CHAOS_SCHEMA_VERSION = 1

#: Default intensity sweep (0 — the healthy baseline — is always forced in).
DEFAULT_INTENSITIES = (0.0, 0.25, 0.5)


@dataclass(frozen=True)
class ChaosPoint:
    """One (heuristic, intensity) aggregate over all test cases.

    Attributes:
        heuristic: heuristic registry name.
        intensity: the fault intensity of this sweep column.
        mean_misses: mean deadline misses (unsatisfied requests) per case.
        mean_weighted_sum: mean satisfied weighted sum per case.
        miss_delta: ``mean_misses`` minus the heuristic's healthy
            (intensity 0) value — the robustness headline.
    """

    heuristic: str
    intensity: float
    mean_misses: float
    mean_weighted_sum: float
    miss_delta: float


@dataclass(frozen=True)
class ChaosReport:
    """A full robustness sweep: per-heuristic degradation vs. intensity.

    Attributes:
        scale: scale label (informational; "" for ad-hoc scenario lists).
        criterion: criterion name the heuristics ran under.
        log_ratio: the E-U point (``log10(E/U)``).
        cases: number of test cases averaged per point.
        fault_seed: base seed of the generated fault plans.
        intensities: the swept intensities, ascending (0 always present).
        heuristics: heuristic names, in run order.
        points: one :class:`ChaosPoint` per (intensity, heuristic), in
            ``intensities`` × ``heuristics`` order.
        plan_notes: one line per nonzero intensity summarizing the
            injected faults (outage windows / degraded links over all
            cases).
    """

    scale: str
    criterion: str
    log_ratio: float
    cases: int
    fault_seed: int
    intensities: Tuple[float, ...]
    heuristics: Tuple[str, ...]
    points: Tuple[ChaosPoint, ...]
    plan_notes: Tuple[str, ...]

    def point(self, heuristic: str, intensity: float) -> ChaosPoint:
        """Look up one aggregate point.

        Raises:
            ConfigurationError: when the pair was not part of the sweep.
        """
        for candidate in self.points:
            if (
                candidate.heuristic == heuristic
                and candidate.intensity == intensity
            ):
                return candidate
        raise ConfigurationError(
            f"no chaos point for heuristic={heuristic!r} "
            f"intensity={intensity!r}"
        )


def normalized_intensities(
    intensities: Sequence[float],
) -> Tuple[float, ...]:
    """Ascending unique intensities with the healthy baseline forced in.

    Raises:
        ConfigurationError: for values outside ``[0, 1]``.
    """
    cleaned = {0.0}
    for value in intensities:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"fault intensity must be in [0, 1], got {value}"
            )
        cleaned.add(float(value))
    return tuple(sorted(cleaned))


def run_chaos(
    scenarios: Sequence[Scenario],
    heuristics: Optional[Sequence[str]] = None,
    criterion: str = "C4",
    log_ratio: float = 2.0,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    fault_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
    scale: str = "",
) -> ChaosReport:
    """Sweep fault intensities over scenarios for every heuristic.

    All cells go through one :meth:`SweepExecutor.run_cells` call, so the
    sweep parallelizes across the whole grid and benefits from the run
    cache (fault plans are part of the cell identity).

    Args:
        scenarios: the test cases (≥ 1).
        heuristics: heuristic names; defaults to every registered one.
        criterion: criterion name for all runs.
        log_ratio: the E-U point.
        intensities: fault intensities to sweep; 0 is always included as
            the healthy baseline.
        fault_seed: base seed for plan generation (case ``i`` uses
            ``fault_seed + i``).
        executor: optional executor (a serial cache-less one by default).
        scale: informational scale label for the report.
    """
    if not scenarios:
        raise ConfigurationError("chaos study needs at least one scenario")
    chosen = tuple(heuristics) if heuristics else heuristic_names()
    levels = normalized_intensities(intensities)
    weights = as_weights(log_ratio)
    runner = ensure_executor(executor)

    plans: Dict[float, List[FaultPlan]] = {
        level: [
            FaultPlan.generate(
                scenario, level, seed=fault_seed + case, churn=False
            )
            for case, scenario in enumerate(scenarios)
        ]
        for level in levels
    }
    cells = [
        SweepCell(
            scenario=scenario,
            heuristic=heuristic,
            criterion=criterion,
            weights=weights,
            faults=plans[level][case],
        )
        for level in levels
        for heuristic in chosen
        for case, scenario in enumerate(scenarios)
    ]
    records = runner.run_cells(cells)

    cases = len(scenarios)
    baseline: Dict[str, float] = {}
    points: List[ChaosPoint] = []
    cursor = 0
    for level in levels:
        for heuristic in chosen:
            batch = records[cursor : cursor + cases]
            cursor += cases
            mean_misses = sum(
                scenario.request_count - record.satisfied_count
                for scenario, record in zip(scenarios, batch)
            ) / cases
            mean_weighted = sum(
                record.weighted_sum for record in batch
            ) / cases
            if level == levels[0]:
                baseline[heuristic] = mean_misses
            points.append(
                ChaosPoint(
                    heuristic=heuristic,
                    intensity=level,
                    mean_misses=mean_misses,
                    mean_weighted_sum=mean_weighted,
                    miss_delta=mean_misses - baseline[heuristic],
                )
            )
    notes = tuple(
        f"intensity {level:g}: {sum(len(p.outages) for p in plans[level])} "
        f"outage windows, "
        f"{sum(len(p.degradations) for p in plans[level])} degraded links "
        f"across {cases} cases"
        for level in levels
        if level > 0.0
    )
    return ChaosReport(
        scale=scale,
        criterion=criterion,
        log_ratio=log_ratio,
        cases=cases,
        fault_seed=fault_seed,
        intensities=levels,
        heuristics=chosen,
        points=tuple(points),
        plan_notes=notes,
    )


def render_chaos_report(report: ChaosReport) -> str:
    """The robustness report as an aligned plain-text table.

    One row per intensity; per-heuristic cells show mean deadline misses
    per case with the delta against the healthy baseline in parentheses.
    """
    headers = ["intensity"] + [
        f"{heuristic} misses (Δ)" for heuristic in report.heuristics
    ]
    rows: List[List[str]] = []
    for level in report.intensities:
        row = [f"{level:g}"]
        for heuristic in report.heuristics:
            point = report.point(heuristic, level)
            row.append(
                f"{point.mean_misses:.2f} ({point.miss_delta:+.2f})"
            )
        rows.append(row)
    scale_note = f" scale={report.scale}," if report.scale else ""
    title = (
        f"CHAOS robustness:{scale_note} criterion={report.criterion} @ "
        f"log10(E-U)={report.log_ratio:g}, {report.cases} cases, "
        f"fault seed {report.fault_seed} "
        f"(mean deadline misses per case; Δ vs healthy)"
    )
    lines = [render_table(headers, rows, title=title)]
    lines.extend(report.plan_notes)
    return "\n".join(lines)


def chaos_report_to_dict(report: ChaosReport) -> Dict[str, Any]:
    """A JSON-ready document capturing the full robustness report."""
    return {
        "format_version": 1,
        "kind": "chaos_report",
        "schema_version": CHAOS_SCHEMA_VERSION,
        "scale": report.scale,
        "criterion": report.criterion,
        "log_ratio": report.log_ratio,
        "cases": report.cases,
        "fault_seed": report.fault_seed,
        "intensities": list(report.intensities),
        "heuristics": list(report.heuristics),
        "plan_notes": list(report.plan_notes),
        "points": [
            {
                "heuristic": point.heuristic,
                "intensity": point.intensity,
                "mean_misses": point.mean_misses,
                "mean_weighted_sum": point.mean_weighted_sum,
                "miss_delta": point.miss_delta,
            }
            for point in report.points
        ],
    }
