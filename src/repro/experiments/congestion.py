"""Network-congestion study — the paper's stated future work (§6).

"Future work will explore how the heuristics perform when varying the
congestion of the network and when additional priority weighting schemes
are considered."  This module implements both sweeps:

* :func:`congestion_sweep` — scale the request volume (the §5.3
  "20–40 × machines" multiplier) and track how each scheduler's weighted
  sum and satisfaction rate degrade relative to the bounds;
* :func:`weighting_sweep` — evaluate one scheduler under a family of
  priority weightings (e.g. flat, linear, the paper's two, and steeper)
  on the same cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.baselines.bounds import possible_satisfy, upper_bound
from repro.core.priority import PriorityWeighting
from repro.cost.weights import EUWeights, as_weights
from repro.errors import ConfigurationError
from repro.experiments.aggregate import Aggregate
from repro.experiments.runner import run_pair
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator

#: Weighting families for the weighting sweep: the paper's two schemes
#: plus a flat, a linear, and an extreme scheme.
EXTENDED_WEIGHTINGS: Tuple[PriorityWeighting, ...] = (
    PriorityWeighting((1, 1, 1), name="flat"),
    PriorityWeighting((1, 2, 3), name="linear"),
    PriorityWeighting((1, 5, 10), name="1-5-10"),
    PriorityWeighting((1, 10, 100), name="1-10-100"),
    PriorityWeighting((1, 100, 10_000), name="extreme"),
)


@dataclass(frozen=True)
class CongestionPoint:
    """Results at one request-volume multiplier.

    Attributes:
        requests_per_machine: the (fixed) request multiplier of the point.
        mean_requests: mean request count across the cases.
        weighted_sum: achieved weighted priority sum (aggregate over cases).
        satisfaction_rate: achieved fraction of requests satisfied.
        possible_fraction: ``possible_satisfy / upper_bound`` — how
            oversubscribed the generated networks are.
        achieved_fraction: achieved weighted sum / possible_satisfy —
            how much of the achievable value the scheduler captured.
    """

    requests_per_machine: int
    mean_requests: float
    weighted_sum: Aggregate
    satisfaction_rate: Aggregate
    possible_fraction: Aggregate
    achieved_fraction: Aggregate


def congestion_sweep(
    multipliers: Sequence[int],
    cases: int = 10,
    base_seed: int = 0,
    base_config: GeneratorConfig = None,
    heuristic: str = "full_one",
    criterion: str = "C4",
    weights: Union[float, EUWeights] = 2.0,
) -> List[CongestionPoint]:
    """Sweep the request-volume multiplier and measure degradation.

    Args:
        multipliers: request-per-machine values (the §5.3 range is 20–40).
        cases: random cases per point (seeds shared across points so only
            the volume changes).
        base_seed: first case seed.
        base_config: configuration template (defaults to the paper's).
        heuristic / criterion / weights: the scheduler under study.

    Raises:
        ConfigurationError: for an empty multiplier list.
    """
    if not multipliers:
        raise ConfigurationError("congestion sweep needs at least one point")
    template = base_config if base_config is not None else GeneratorConfig.paper()
    eu = as_weights(weights)
    points = []
    for multiplier in multipliers:
        config = template.replace(
            requests_per_machine=(multiplier, multiplier)
        )
        generator = ScenarioGenerator(config)
        weighted, rates, possible_fracs, achieved_fracs, request_counts = (
            [],
            [],
            [],
            [],
            [],
        )
        for offset in range(cases):
            scenario = generator.generate(base_seed + offset)
            record = run_pair(scenario, heuristic, criterion, eu)
            upper = upper_bound(scenario)
            possible = possible_satisfy(scenario)
            weighted.append(record.weighted_sum)
            rates.append(
                record.satisfied_count / scenario.request_count
                if scenario.request_count
                else 0.0
            )
            possible_fracs.append(possible / upper if upper else 0.0)
            achieved_fracs.append(
                record.weighted_sum / possible if possible else 1.0
            )
            request_counts.append(float(scenario.request_count))
        points.append(
            CongestionPoint(
                requests_per_machine=multiplier,
                mean_requests=sum(request_counts) / len(request_counts),
                weighted_sum=Aggregate.of(weighted),
                satisfaction_rate=Aggregate.of(rates),
                possible_fraction=Aggregate.of(possible_fracs),
                achieved_fraction=Aggregate.of(achieved_fracs),
            )
        )
    return points


@dataclass(frozen=True)
class WeightingPoint:
    """Results under one priority weighting.

    Attributes:
        weighting: the weighting's display name.
        weighted_sum: achieved weighted sum (aggregate over cases) —
            note: *not* comparable across weightings in absolute terms.
        satisfied_by_priority: mean satisfied count per class.
        high_priority_rate: fraction of highest-priority requests
            satisfied (the cross-weighting comparable metric).
    """

    weighting: str
    weighted_sum: Aggregate
    satisfied_by_priority: Tuple[float, ...]
    high_priority_rate: float


def weighting_sweep(
    weightings: Sequence[PriorityWeighting] = EXTENDED_WEIGHTINGS,
    cases: int = 10,
    base_seed: int = 0,
    base_config: GeneratorConfig = None,
    heuristic: str = "full_one",
    criterion: str = "C4",
    weights: Union[float, EUWeights] = 2.0,
) -> List[WeightingPoint]:
    """Evaluate one scheduler under several priority weightings.

    The same case seeds are regenerated per weighting, so request
    priorities, deadlines, and topologies are identical — only the
    scheduler's valuation of the priority classes changes.
    """
    if not weightings:
        raise ConfigurationError("weighting sweep needs at least one scheme")
    template = base_config if base_config is not None else GeneratorConfig.paper()
    eu = as_weights(weights)
    points = []
    for weighting in weightings:
        generator = ScenarioGenerator(template, weighting=weighting)
        sums = []
        satisfied_acc = None
        high_satisfied = 0
        high_total = 0
        for offset in range(cases):
            scenario = generator.generate(base_seed + offset)
            record = run_pair(scenario, heuristic, criterion, eu)
            sums.append(record.weighted_sum)
            if satisfied_acc is None:
                satisfied_acc = [0.0] * len(record.satisfied_by_priority)
            for index, count in enumerate(record.satisfied_by_priority):
                satisfied_acc[index] += count
            high_satisfied += record.satisfied_by_priority[-1]
            high_total += record.total_by_priority[-1]
        points.append(
            WeightingPoint(
                weighting=weighting.name,
                weighted_sum=Aggregate.of(sums),
                satisfied_by_priority=tuple(
                    total / cases for total in satisfied_acc
                ),
                high_priority_rate=(
                    high_satisfied / high_total if high_total else 0.0
                ),
            )
        )
    return points
