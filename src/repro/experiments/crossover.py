"""Series analysis over the E-U grid: peaks, crossovers, sensitivity.

The paper's figures are read qualitatively — *where a criterion peaks*,
*where two criteria cross*, *how much the ratio matters*.  These helpers
extract those reading-level facts from a
:class:`~repro.experiments.figures.FigureData` so EXPERIMENTS.md claims
("the heuristics rise toward mid ratios", "C1 and C4 cross near
log₁₀(E-U)=1") can be computed instead of eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.figures import FigureData, Series


@dataclass(frozen=True)
class SeriesPeak:
    """Where one series attains its maximum.

    Attributes:
        series: the series name.
        label: the E-U grid label of the (first) maximum.
        value: the maximum mean value.
        flat: ``True`` when every grid point has the same value
            (E-U-independent series such as C3 and the bounds).
    """

    series: str
    label: str
    value: float
    flat: bool


def series_peak(series: Series) -> SeriesPeak:
    """The (first) maximum of one series across the grid."""
    values = series.values()
    best_index = max(range(len(values)), key=lambda i: values[i])
    return SeriesPeak(
        series=series.name,
        label=series.points[best_index][0],
        value=values[best_index],
        flat=len(set(values)) == 1,
    )


def figure_peaks(figure: FigureData) -> List[SeriesPeak]:
    """Peaks of every series in a figure, in figure order."""
    return [series_peak(series) for series in figure.series]


@dataclass(frozen=True)
class Crossover:
    """A sign change of ``A − B`` between adjacent grid points.

    Attributes:
        first: name of series A.
        second: name of series B.
        left_label: grid label before the crossing.
        right_label: grid label after the crossing.
        left_gap: ``A − B`` at the left point.
        right_gap: ``A − B`` at the right point.
    """

    first: str
    second: str
    left_label: str
    right_label: str
    left_gap: float
    right_gap: float


def find_crossovers(
    figure: FigureData, first: str, second: str
) -> Tuple[Crossover, ...]:
    """All grid intervals where two series swap order.

    Exact ties at a grid point are treated as part of the following
    interval (a tie then divergence reports one crossover).
    """
    series_a = figure.by_name(first)
    series_b = figure.by_name(second)
    gaps = [
        a - b for a, b in zip(series_a.values(), series_b.values())
    ]
    labels = list(figure.x_labels)
    crossovers = []
    previous_sign = 0
    previous_index = 0
    for index, gap in enumerate(gaps):
        sign = (gap > 0) - (gap < 0)
        if sign == 0:
            continue
        if previous_sign != 0 and sign != previous_sign:
            crossovers.append(
                Crossover(
                    first=first,
                    second=second,
                    left_label=labels[previous_index],
                    right_label=labels[index],
                    left_gap=gaps[previous_index],
                    right_gap=gap,
                )
            )
        previous_sign = sign
        previous_index = index
    return tuple(crossovers)


def ratio_sensitivity(series: Series) -> float:
    """Relative swing of a series across the grid: ``(max−min)/max``.

    0.0 for flat (E-U-independent) series; larger values mean choosing the
    E-U ratio matters more for this scheduler.
    """
    values = series.values()
    top = max(values)
    if top == 0:
        return 0.0
    return (top - min(values)) / top
