"""Parallel sweep execution with a persistent run-record cache.

The paper's figures and tables all reduce to evaluating a grid of
``(scenario, heuristic, criterion, E-U weights)`` cells, and every cell is
independent of every other — an embarrassingly parallel workload.
:class:`SweepExecutor` shards such grids across a
:class:`~concurrent.futures.ProcessPoolExecutor` (``workers=1`` keeps the
exact in-process serial path) and, when given a cache directory, skips
cells whose results are already on disk.

Determinism contract: records are returned in *cell order*, regardless of
worker count or completion order, so figure and table output is
byte-identical at any parallelism.  Cache identity is the scenario's
content fingerprint plus the scheduler coordinates — wall-clock timing is
deliberately *not* part of the identity, and replayed records are marked
with ``cache_hit=True`` (their ``elapsed_seconds`` reports the original
run).  A cache entry that fails to parse is treated as a miss: the cell is
recomputed, the entry rewritten, and a warning logged.

Every :meth:`SweepExecutor.run_cells` call logs a one-line summary —
cells computed versus replayed, wall time, and the speedup over the
serial scheduler time it represents — through the standard
:mod:`logging` machinery (logger ``repro.experiments.executor``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.scenario import Scenario
from repro.cost.criteria import CostCriterion, get_criterion
from repro.cost.weights import EUWeights, as_weights
from repro.errors import ConfigurationError, DataStagingError
from repro.experiments.runner import RunRecord, run_pair, run_scheduler
from repro.faults.context import use_faults
from repro.faults.plan import FaultPlan
from repro.observability.metrics import (
    MetricsCollector,
    RunMetrics,
    merge_metrics,
)
from repro.observability.profiling import (
    Profile,
    ProfileCollector,
    merge_profiles,
)
from repro.observability.timeline import (
    Timeline,
    TimelineCollector,
    merge_timelines,
)
from repro.observability.tracer import TeeTracer, current_tracer, use_tracer
from repro.serialization import (
    fault_plan_fingerprint,
    fault_plan_from_dict,
    fault_plan_to_dict,
    run_record_from_dict,
    run_record_to_dict,
    scenario_fingerprint,
    scenario_to_dict,
    scenario_from_dict,
)

logger = logging.getLogger(__name__)

#: Version stamp of the cache entry layout; bump to invalidate old caches.
#: Version 2: cached records may carry an embedded ``metrics`` aggregate.
#: Version 3: cached records may carry an embedded span ``profile``.
#: Version 4: the cell identity includes the fault-plan fingerprint.
#: Version 5: embedded metrics moved to metrics schema 2
#: (``tree_cache_reasons``).
#: Version 6: cached records may carry an embedded simulated-time
#: ``timeline`` document.
#: Version 7: embedded metrics may carry the compiled-kernel counter
#: (``dijkstra_compiled``) and the ``bandwidth_degraded`` cache reason.
CACHE_FORMAT_VERSION = 7

#: The cell kinds an executor knows how to run.
CELL_KINDS = ("pair", "tier")

#: How many times a cell is re-submitted after a *transient* worker
#: failure (a broken pool, a pipe/OS error) before the failure is raised.
MAX_TRANSIENT_RETRIES = 2

#: Base of the deterministic linear backoff between retries (seconds).
RETRY_BACKOFF_SECONDS = 0.05

#: Exception types treated as transient infrastructure failures.  A
#: scheduler bug raises its own (deterministic) exception type and is
#: *never* retried — retrying would just fail again and mask the bug.
TRANSIENT_EXCEPTIONS = (BrokenExecutor, OSError, EOFError)


def retry_backoff_seconds(attempt: int) -> float:
    """Deterministic backoff before retry ``attempt`` (1-based)."""
    return RETRY_BACKOFF_SECONDS * attempt


@dataclass(frozen=True)
class SweepCell:
    """One independently executable grid cell.

    Attributes:
        scenario: the problem instance.
        heuristic: heuristic registry name (``"partial"`` ...).
        criterion: criterion registry name or instance.  Parallel workers
            and the cache resolve it *by name*, so instances must carry a
            registered ``name``.
        weights: the E-U point.
        kind: ``"pair"`` runs the plain heuristic/criterion pair;
            ``"tier"`` wraps it in the §5.4
            :class:`~repro.baselines.priority_tier.PriorityTierScheduler`.
        faults: optional static fault plan applied to the run (outages and
            bandwidth degradation; see :mod:`repro.faults`).  Part of the
            cell's cache identity.  Churn-bearing plans are rejected —
            cancellations and late arrivals only make sense under the
            dynamic driver, not a single offline schedule.
    """

    scenario: Scenario
    heuristic: str
    criterion: Union[str, CostCriterion]
    weights: EUWeights
    kind: str = "pair"
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ConfigurationError(
                f"unknown cell kind {self.kind!r}; known: {CELL_KINDS}"
            )
        if self.faults is not None and self.faults.has_churn():
            raise ConfigurationError(
                "sweep cells take static fault plans only (outages, "
                "degradation); churn faults need the dynamic driver — "
                "use FaultPlan.static_only() to strip them"
            )

    def effective_faults(self) -> Optional[FaultPlan]:
        """The cell's fault plan, with the empty plan normalized to None."""
        if self.faults is None or self.faults.is_empty():
            return None
        return self.faults

    def criterion_name(self) -> str:
        """The criterion's registry name."""
        if isinstance(self.criterion, str):
            return self.criterion
        return self.criterion.name

    def resolved_criterion(self) -> CostCriterion:
        """The criterion instance (resolving names via the registry)."""
        if isinstance(self.criterion, str):
            return get_criterion(self.criterion)
        return self.criterion


def _dispatch_cell(cell: SweepCell) -> RunRecord:
    """Run one cell's scheduler (the exact serial code path)."""
    if cell.kind == "tier":
        from repro.baselines.priority_tier import PriorityTierScheduler

        tier = PriorityTierScheduler(
            heuristic=cell.heuristic,
            criterion=cell.criterion,
            weights=cell.weights,
        )
        return run_scheduler(cell.scenario, tier)
    return run_pair(cell.scenario, cell.heuristic, cell.criterion, cell.weights)


def _run_cell(
    cell: SweepCell,
    collect_metrics: bool = False,
    collect_profile: bool = False,
    collect_timeline: bool = False,
) -> RunRecord:
    """Execute one cell in-process, optionally under observability sinks.

    With ``collect_metrics`` the cell runs inside an ambient
    :class:`~repro.observability.metrics.MetricsCollector`, with
    ``collect_profile`` inside an ambient
    :class:`~repro.observability.profiling.ProfileCollector`, and with
    ``collect_timeline`` inside an ambient
    :class:`~repro.observability.timeline.TimelineCollector`; the
    finalized aggregates ride back on the record (they cross process
    boundaries as part of the record's serialization dict).

    A cell carrying a (non-empty) fault plan runs inside ``use_faults``
    so the scheduler's :class:`~repro.core.state.NetworkState` picks the
    plan up ambiently; an empty or absent plan takes the exact healthy
    code path (pinned byte-identical by a property test).
    """
    plan = cell.effective_faults()
    if plan is not None:
        with use_faults(plan):
            return _run_observed_cell(
                cell, collect_metrics, collect_profile, collect_timeline
            )
    return _run_observed_cell(
        cell, collect_metrics, collect_profile, collect_timeline
    )


def _run_observed_cell(
    cell: SweepCell,
    collect_metrics: bool,
    collect_profile: bool,
    collect_timeline: bool,
) -> RunRecord:
    """The observability-sink half of :func:`_run_cell`."""
    if not collect_metrics and not collect_profile and not collect_timeline:
        return _dispatch_cell(cell)
    metrics = MetricsCollector() if collect_metrics else None
    profiler = ProfileCollector() if collect_profile else None
    timeline = (
        TimelineCollector(cell.scenario) if collect_timeline else None
    )
    ambient = current_tracer()
    # Keep an already-installed tracer (e.g. a --trace-out stream) in the
    # loop instead of shadowing it for the cell's duration.
    sinks: List[Any] = [
        sink for sink in (metrics, profiler, timeline) if sink is not None
    ]
    if ambient.enabled:
        sinks.append(ambient)
    tracer: Any = sinks[0] if len(sinks) == 1 else TeeTracer(tuple(sinks))
    with use_tracer(tracer):
        record = _dispatch_cell(cell)
    return dataclasses.replace(
        record,
        metrics=metrics.finalize() if metrics is not None else None,
        profile=profiler.finalize() if profiler is not None else None,
        timeline=timeline.finalize() if timeline is not None else None,
    )


#: The serialized cell crossing the process boundary (see
#: :func:`_execute_payload`).
_CellPayload = Tuple[
    int,
    Dict[str, Any],
    str,
    str,
    float,
    float,
    str,
    bool,
    bool,
    bool,
    Optional[Dict[str, Any]],
]


def _execute_payload(payload: _CellPayload) -> Tuple[int, Dict[str, Any]]:
    """Worker-side execution of one serialized cell.

    The scenario (and any fault plan) crosses the process boundary as its
    serialization dict (guaranteed picklable; the test suite pins that a
    round-tripped scenario schedules identically), and the record returns
    the same way.
    """
    (
        index,
        scenario_doc,
        heuristic,
        criterion,
        effective,
        urgency,
        kind,
        collect_metrics,
        collect_profile,
        collect_timeline,
        faults_doc,
    ) = payload
    cell = SweepCell(
        scenario=scenario_from_dict(scenario_doc),
        heuristic=heuristic,
        criterion=criterion,
        weights=EUWeights(effective=effective, urgency=urgency),
        kind=kind,
        faults=(
            fault_plan_from_dict(faults_doc)
            if faults_doc is not None
            else None
        ),
    )
    return index, run_record_to_dict(
        _run_cell(cell, collect_metrics, collect_profile, collect_timeline)
    )


@dataclass(frozen=True)
class SweepSummary:
    """Accounting of one :meth:`SweepExecutor.run_cells` call.

    Attributes:
        cells: total grid cells requested.
        computed: cells actually executed by a scheduler.
        cache_hits: cells replayed from the run cache.
        wall_seconds: wall-clock duration of the call.
        scheduled_seconds: summed scheduler time the returned records
            represent (cached records contribute their original timing).
        retries: transient worker failures survived by re-submission.
        quarantined: corrupted cache entries renamed aside and recomputed.
    """

    cells: int
    computed: int
    cache_hits: int
    wall_seconds: float
    scheduled_seconds: float
    retries: int = 0
    quarantined: int = 0

    @property
    def speedup(self) -> float:
        """``scheduled_seconds / wall_seconds`` (0.0 for an empty call)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.scheduled_seconds / self.wall_seconds

    @property
    def degraded(self) -> bool:
        """True when the call survived faults (retries or quarantines).

        A degraded call still returned a complete, correct record list —
        this flag only marks that the run report should mention the
        recoveries (the CLI's degraded-mode summary).
        """
        return self.retries > 0 or self.quarantined > 0


@dataclass
class ExecutorStats:
    """Cumulative cell accounting over an executor's lifetime.

    Attributes:
        computed: cells executed by a scheduler.
        cache_hits: cells replayed from the run cache.
        cache_errors: cache entries dropped as unreadable.
        wall_seconds: total wall-clock time spent in ``run_cells``.
        scheduled_seconds: total scheduler time represented.
        retries: transient worker failures survived by re-submission.
        quarantined: corrupted cache entries quarantined and recomputed.
    """

    computed: int = 0
    cache_hits: int = 0
    cache_errors: int = 0
    wall_seconds: float = 0.0
    scheduled_seconds: float = 0.0
    retries: int = 0
    quarantined: int = 0

    def note(self, summary: SweepSummary) -> None:
        """Fold one call's summary into the running totals."""
        self.computed += summary.computed
        self.cache_hits += summary.cache_hits
        self.wall_seconds += summary.wall_seconds
        self.scheduled_seconds += summary.scheduled_seconds
        self.retries += summary.retries
        self.quarantined += summary.quarantined


class RunCache:
    """Content-addressed on-disk store of :class:`RunRecord` documents.

    One JSON file per cell under ``directory``, named by the SHA-256 of
    the cell's identity: scenario fingerprint + heuristic + criterion +
    E-U label + cell kind (+ the cache format version).  Timing and
    collected metrics are not part of the identity, so a warm cache
    replays records regardless of how long the original runs took or
    whether they were observed; a replayed record's embedded metrics
    (when present) describe the original run.

    The scenario fingerprint covers *all* scenario content — including
    the garbage-collection delay γ and the scheduling horizon — so
    perturbing either invalidates every affected entry.  A cell carrying
    a static fault plan keys on the plan's content fingerprint too (the
    empty plan normalizes to the same key as no plan), so faulted and
    healthy runs never shadow each other.  Dynamic-only events
    (copy losses, churn) never enter a :class:`SweepCell` and are
    therefore out of scope for this cache.

    Args:
        directory: cache root; created on first use.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.errors = 0
        self.quarantined = 0

    def key_for(
        self,
        cell: SweepCell,
        fingerprints: Optional[Dict[int, str]] = None,
    ) -> str:
        """The cell's cache key (SHA-256 hex digest of its identity).

        Args:
            cell: the grid cell.
            fingerprints: optional ``id(scenario) -> fingerprint`` memo so
                a grid sharing scenarios fingerprints each one once.
        """
        scenario = cell.scenario
        if fingerprints is not None and id(scenario) in fingerprints:
            fingerprint = fingerprints[id(scenario)]
        else:
            fingerprint = scenario_fingerprint(scenario)
            if fingerprints is not None:
                fingerprints[id(scenario)] = fingerprint
        criterion = cell.resolved_criterion()
        plan = cell.effective_faults()
        identity = {
            "cache_format": CACHE_FORMAT_VERSION,
            "scenario": fingerprint,
            "heuristic": cell.heuristic,
            "criterion": cell.criterion_name(),
            "weights": "-" if criterion.eu_independent else cell.weights.label(),
            "kind": cell.kind,
            "faults": "-" if plan is None else fault_plan_fingerprint(plan),
        }
        text = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[RunRecord]:
        """The cached record under ``key``, or ``None``.

        A present-but-unreadable entry (truncated file, invalid JSON,
        missing fields, wrong kind) is treated as a miss: the file is
        *quarantined* — renamed to ``<name>.quarantined`` so the corrupt
        bytes stay available for forensics instead of being silently
        overwritten — a warning is logged, a ``cache_quarantined`` tracer
        event emitted, and the caller recomputes (writing a fresh entry).
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if document.get("kind") != "run_cache_entry":
                raise ValueError(
                    f"unexpected kind {document.get('kind')!r}"
                )
            return run_record_from_dict(document["record"])
        except (
            DataStagingError,
            ValueError,
            KeyError,
            TypeError,
            OSError,
            EOFError,
            json.JSONDecodeError,
        ) as exc:  # any recognized corruption shape => miss
            self.errors += 1
            self.quarantined += 1
            quarantine = path.with_name(f"{path.name}.quarantined")
            try:
                os.replace(path, quarantine)
            except OSError:
                # Rename failed (exotic filesystem): recomputing will
                # overwrite the entry in place instead.
                quarantine = path
            logger.warning(
                "run cache entry %s is unreadable (%s); quarantined as %s, "
                "recomputing",
                path,
                exc,
                quarantine.name,
            )
            tracer = current_tracer()
            if tracer.enabled:
                tracer.on_cache_quarantined(str(quarantine))
            return None

    def store(self, key: str, cell: SweepCell, record: RunRecord) -> None:
        """Persist ``record`` under ``key`` (atomic rename, compact JSON)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        plan = cell.effective_faults()
        document = {
            "format_version": CACHE_FORMAT_VERSION,
            "kind": "run_cache_entry",
            "key": key,
            "heuristic": cell.heuristic,
            "criterion": cell.criterion_name(),
            "cell_kind": cell.kind,
            "faults": None if plan is None else fault_plan_to_dict(plan),
            "record": run_record_to_dict(
                dataclasses.replace(record, cache_hit=False)
            ),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(document, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        os.replace(tmp, path)


class SweepExecutor:
    """Runs sweep grids — serially, in parallel, and through the cache.

    Args:
        workers: process count.  ``1`` (the default) executes every cell
            in-process on the exact pre-existing serial path; ``N > 1``
            fans misses out over a lazily started
            :class:`~concurrent.futures.ProcessPoolExecutor` that is
            reused across calls until :meth:`close`.
        cache_dir: optional run-cache directory; ``None`` disables
            caching entirely.
        metrics: collect per-cell scheduler metrics.  Each computed cell
            runs under a
            :class:`~repro.observability.metrics.MetricsCollector`; the
            per-run aggregates ride back on the records, accumulate into
            :attr:`metrics_by_scheduler`, and merge into
            :meth:`metrics_total`.  Collection never changes scheduling
            results (pinned by a property test).
        profile: collect per-cell span profiles.  Each computed cell runs
            under a
            :class:`~repro.observability.profiling.ProfileCollector`;
            the per-run profiles ride back on the records (crossing the
            process boundary and the run cache, so replayed cells
            contribute their *original* phase timings), accumulate into
            :attr:`profile_by_scheduler`, and merge into
            :meth:`profile_total`.  Like metrics, profiling never changes
            scheduling results.
        timeline: collect per-cell simulated-time telemetry.  Each
            computed cell runs under a
            :class:`~repro.observability.timeline.TimelineCollector`;
            the per-run timelines ride back on the records (crossing the
            process boundary and the run cache — simulated time is
            deterministic, so a replayed timeline is byte-identical to a
            recompute), accumulate into :attr:`timeline_by_scheduler`,
            and merge into :meth:`timeline_total`.  Like metrics,
            timeline collection never changes scheduling results.

    The executor is also a context manager (``with SweepExecutor(...)``),
    closing its worker pool on exit.  If a worker raises mid-run, the
    pool is torn down (pending cells cancelled) before the exception
    propagates, so a broken pool is never reused and no worker processes
    leak from executors used without a ``with`` block.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        metrics: bool = False,
        profile: bool = False,
        timeline: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}"
            )
        self.workers = int(workers)
        self.cache = RunCache(cache_dir) if cache_dir is not None else None
        self.stats = ExecutorStats()
        self.last_summary: Optional[SweepSummary] = None
        self.metrics = bool(metrics)
        self.profile = bool(profile)
        self.timeline = bool(timeline)
        #: Merged per-run aggregates keyed by scheduler label.
        self.metrics_by_scheduler: Dict[str, RunMetrics] = {}
        #: Merged per-run span profiles keyed by scheduler label.
        self.profile_by_scheduler: Dict[str, Profile] = {}
        #: Merged per-run timelines keyed by scheduler label.
        self.timeline_by_scheduler: Dict[str, Timeline] = {}
        self._collector = MetricsCollector() if self.metrics else None
        self._pool: Optional[ProcessPoolExecutor] = None

    def __enter__(self) -> "SweepExecutor":
        """Enter a ``with`` block; returns the executor itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the worker pool on ``with`` block exit."""
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._shutdown_pool()

    def _shutdown_pool(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=cancel)
            self._pool = None

    def metrics_total(self) -> RunMetrics:
        """Every observed aggregate merged: all schedulers + executor events.

        Includes the executor's own cell accounting (cell counts and
        run-cache hit/miss tallies), which is collected even for cells
        replayed from the cache.
        """
        total = merge_metrics(self.metrics_by_scheduler.values())
        if self._collector is not None:
            total = total.merged(self._collector.finalize())
        return total

    def profile_total(self) -> Profile:
        """Every collected per-scheduler profile merged into one."""
        return merge_profiles(self.profile_by_scheduler.values())

    def timeline_total(self) -> Timeline:
        """Every collected per-scheduler timeline merged into one.

        Labels merge in sorted order so the merged document — and its
        serialization — is identical at any worker count.
        """
        return merge_timelines(
            self.timeline_by_scheduler[label]
            for label in sorted(self.timeline_by_scheduler)
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def run_cells(self, cells: Sequence[SweepCell]) -> List[RunRecord]:
        """Execute a cell grid; records come back in cell order.

        Cached cells are replayed (marked ``cache_hit=True``); the rest
        are computed — in-process when ``workers == 1``, otherwise across
        the worker pool — and newly computed records are written back to
        the cache.  Ordering is deterministic regardless of parallelism.
        """
        cells = list(cells)
        started = time.perf_counter()
        records: List[Optional[RunRecord]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)
        fingerprints: Dict[int, str] = {}
        pending: List[int] = []
        quarantined_before = (
            self.cache.quarantined if self.cache is not None else 0
        )
        for index, cell in enumerate(cells):
            if self.cache is not None:
                keys[index] = self.cache.key_for(cell, fingerprints)
                cached = self.cache.load(keys[index])
                if cached is not None:
                    records[index] = dataclasses.replace(
                        cached, cache_hit=True
                    )
                    continue
            pending.append(index)
        retries = 0
        if pending:
            if self.workers == 1 or len(pending) == 1:
                for index in pending:
                    records[index], attempts = self._compute_serial(
                        index, cells[index]
                    )
                    retries += attempts
            else:
                retries = self._compute_parallel(cells, pending, records)
            if self.cache is not None:
                for index in pending:
                    self.cache.store(
                        keys[index], cells[index], records[index]
                    )
        self._note_cell_metrics(records)
        wall = time.perf_counter() - started
        summary = SweepSummary(
            cells=len(cells),
            computed=len(pending),
            cache_hits=len(cells) - len(pending),
            wall_seconds=wall,
            scheduled_seconds=sum(r.elapsed_seconds for r in records),
            retries=retries,
            quarantined=(
                self.cache.quarantined - quarantined_before
                if self.cache is not None
                else 0
            ),
        )
        self.stats.note(summary)
        if self.cache is not None:
            self.stats.cache_errors = self.cache.errors
        self.last_summary = summary
        degraded_note = (
            f", degraded mode: {summary.retries} retries, "
            f"{summary.quarantined} quarantined cache entries"
            if summary.degraded
            else ""
        )
        logger.info(
            "sweep: %d cells (%d computed, %d cached) in %.2fs wall, "
            "%.2fs scheduled, speedup %.1fx%s",
            summary.cells,
            summary.computed,
            summary.cache_hits,
            summary.wall_seconds,
            summary.scheduled_seconds,
            summary.speedup,
            degraded_note,
        )
        return records

    def _compute_serial(
        self, index: int, cell: SweepCell
    ) -> Tuple[RunRecord, int]:
        """Run one cell in-process, retrying transient failures.

        Returns the record plus the number of retries spent on it.
        Deterministic scheduler exceptions propagate on first raise —
        only infrastructure errors (:data:`TRANSIENT_EXCEPTIONS`) are
        retried, at most :data:`MAX_TRANSIENT_RETRIES` times with
        :func:`retry_backoff_seconds` sleeps between attempts.
        """
        attempt = 0
        while True:
            try:
                record = _run_cell(
                    cell,
                    collect_metrics=self.metrics,
                    collect_profile=self.profile,
                    collect_timeline=self.timeline,
                )
                return record, attempt
            except TRANSIENT_EXCEPTIONS as exc:
                attempt += 1
                if attempt > MAX_TRANSIENT_RETRIES:
                    raise
                self._note_retry(index, attempt, exc)
                time.sleep(retry_backoff_seconds(attempt))

    def _compute_parallel(
        self,
        cells: Sequence[SweepCell],
        pending: Sequence[int],
        records: List[Optional[RunRecord]],
    ) -> int:
        """Fan pending cells out over the pool, retrying transient failures.

        Each pending cell is submitted as its own future; a future failing
        with a :data:`TRANSIENT_EXCEPTIONS` member (typically a
        :class:`~concurrent.futures.process.BrokenProcessPool` after a
        worker died) is re-submitted — onto a fresh pool when the old one
        broke — up to :data:`MAX_TRANSIENT_RETRIES` times per cell.  Any
        other exception (a deterministic scheduler bug) tears the pool
        down and propagates immediately, exactly like the pre-retry
        behavior.  Returns the total retry count.
        """
        payloads: Dict[int, _CellPayload] = {
            index: (
                index,
                scenario_to_dict(cells[index].scenario),
                cells[index].heuristic,
                cells[index].criterion_name(),
                cells[index].weights.effective,
                cells[index].weights.urgency,
                cells[index].kind,
                self.metrics,
                self.profile,
                self.timeline,
                (
                    fault_plan_to_dict(plan)
                    if (plan := cells[index].effective_faults()) is not None
                    else None
                ),
            )
            for index in pending
        }
        retries = 0
        attempts: Dict[int, int] = {}
        try:
            waiting: Dict[Future[Tuple[int, Dict[str, Any]]], int] = {
                self._submit(payloads[index]): index for index in pending
            }
            while waiting:
                done, _ = wait(set(waiting), return_when=FIRST_COMPLETED)
                for future in done:
                    index = waiting.pop(future)
                    error = future.exception()
                    if error is None:
                        cell_index, document = future.result()
                        records[cell_index] = run_record_from_dict(document)
                        continue
                    attempt = attempts.get(index, 0) + 1
                    if (
                        not isinstance(error, TRANSIENT_EXCEPTIONS)
                        or attempt > MAX_TRANSIENT_RETRIES
                    ):
                        raise error
                    attempts[index] = attempt
                    retries += 1
                    self._note_retry(index, attempt, error)
                    time.sleep(retry_backoff_seconds(attempt))
                    waiting[self._submit(payloads[index])] = index
        except BaseException:
            # A worker raised (or the pool broke beyond retry): tear the
            # pool down — cancelling cells not yet started — so the next
            # call starts fresh and no processes leak even without a
            # ``with`` block.
            self._shutdown_pool(cancel=True)
            raise
        return retries

    def _submit(
        self, payload: _CellPayload
    ) -> Future[Tuple[int, Dict[str, Any]]]:
        """Submit one payload, replacing the pool if it broke."""
        pool = self._ensure_pool()
        try:
            return pool.submit(_execute_payload, payload)
        except BrokenExecutor:
            self._shutdown_pool(cancel=True)
            return self._ensure_pool().submit(_execute_payload, payload)

    def _note_retry(
        self, index: int, attempt: int, error: BaseException
    ) -> None:
        """Log and trace one transient-failure retry."""
        logger.warning(
            "cell %d hit a transient failure (%s: %s); retry %d/%d after "
            "%.2fs backoff",
            index,
            type(error).__name__,
            error,
            attempt,
            MAX_TRANSIENT_RETRIES,
            retry_backoff_seconds(attempt),
        )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.on_cell_retry(index, attempt, type(error).__name__)

    def _note_cell_metrics(self, records: Sequence[RunRecord]) -> None:
        """Fold finished records into the metric sinks.

        Cell events go to both the ambient tracer (so ``--trace-out``
        captures executor activity) and, when metrics collection is on,
        the executor's own collector; per-run aggregates and profiles
        riding on the records (including replayed cache entries, which
        report the *original* run's work, exactly like their timing)
        merge into :attr:`metrics_by_scheduler` /
        :attr:`profile_by_scheduler`.
        """
        tracer = current_tracer()
        if (
            not tracer.enabled
            and self._collector is None
            and not self.profile
            and not self.timeline
        ):
            return
        for index, record in enumerate(records):
            if tracer.enabled:
                tracer.on_cell(
                    index,
                    record.scheduler,
                    record.cache_hit,
                    record.elapsed_seconds,
                )
            if self.profile and record.profile is not None:
                existing_profile = self.profile_by_scheduler.get(
                    record.scheduler
                )
                self.profile_by_scheduler[record.scheduler] = (
                    record.profile.merged(Profile())
                    if existing_profile is None
                    else existing_profile.merged(record.profile)
                )
            if self.timeline and record.timeline is not None:
                existing_timeline = self.timeline_by_scheduler.get(
                    record.scheduler
                )
                self.timeline_by_scheduler[record.scheduler] = (
                    Timeline().merged(record.timeline)
                    if existing_timeline is None
                    else existing_timeline.merged(record.timeline)
                )
            if self._collector is None:
                continue
            self._collector.on_cell(
                index,
                record.scheduler,
                record.cache_hit,
                record.elapsed_seconds,
            )
            if record.metrics is not None:
                existing = self.metrics_by_scheduler.get(record.scheduler)
                self.metrics_by_scheduler[record.scheduler] = (
                    record.metrics
                    if existing is None
                    else existing.merged(record.metrics)
                )

    def run_pairs(
        self,
        scenarios: Sequence[Scenario],
        heuristic: str,
        criterion: Union[str, CostCriterion],
        weights: Union[float, EUWeights] = 0.0,
    ) -> List[RunRecord]:
        """One heuristic/criterion run per scenario, at one E-U point."""
        eu = as_weights(weights)
        return self.run_cells(
            [
                SweepCell(
                    scenario=scenario,
                    heuristic=heuristic,
                    criterion=criterion,
                    weights=eu,
                )
                for scenario in scenarios
            ]
        )


def ensure_executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
    """``executor`` itself, or a fresh serial, cache-less default."""
    if executor is not None:
        return executor
    return SweepExecutor()
