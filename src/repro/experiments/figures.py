"""Data producers for the paper's Figures 2–5.

Each function returns a :class:`FigureData`: named series of (E-U label,
mean weighted priority sum) points averaged over the supplied test cases —
the exact content of the corresponding paper figure.  Rendering (ASCII
tables here; any plotting library downstream) is separate, in
:mod:`repro.experiments.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.bounds import possible_satisfy, upper_bound
from repro.baselines.random_dijkstra import RandomDijkstraBaseline
from repro.baselines.single_dijkstra_random import SingleDijkstraRandomBaseline
from repro.core.scenario import Scenario
from repro.cost.weights import PAPER_LOG_RATIOS, EUWeights
from repro.errors import ConfigurationError
from repro.experiments.aggregate import Aggregate, aggregate_records
from repro.experiments.executor import SweepExecutor
from repro.experiments.runner import RunRecord, run_scheduler
from repro.experiments.sweep import resolve_ratios, sweep_pair


@dataclass(frozen=True)
class Series:
    """One plotted line: a name plus (E-U label, aggregate) points."""

    name: str
    points: Tuple[Tuple[str, Aggregate], ...]

    def values(self) -> Tuple[float, ...]:
        """The mean values in grid order."""
        return tuple(aggregate.mean for _, aggregate in self.points)

    def point(self, label: str) -> Aggregate:
        """The aggregate at one E-U label.

        Raises:
            KeyError: if the label is not on the grid.
        """
        for point_label, aggregate in self.points:
            if point_label == label:
                return aggregate
        raise KeyError(f"no point labelled {label!r} in series {self.name!r}")


@dataclass(frozen=True)
class FigureData:
    """All series of one figure, plus identification metadata."""

    figure_id: str
    title: str
    x_labels: Tuple[str, ...]
    series: Tuple[Series, ...]

    def by_name(self, name: str) -> Series:
        """Look a series up by name.

        Raises:
            KeyError: for unknown series names.
        """
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(
            f"{self.figure_id} has no series {name!r}; "
            f"known: {[s.name for s in self.series]}"
        )


#: Criteria plotted per heuristic figure (C1 is excluded from full_all).
FIGURE_CRITERIA: Dict[str, Tuple[str, ...]] = {
    "partial": ("C1", "C2", "C3", "C4"),
    "full_one": ("C1", "C2", "C3", "C4"),
    "full_all": ("C2", "C3", "C4"),
}

_FIGURE_IDS = {"partial": "figure3", "full_one": "figure4", "full_all": "figure5"}


def _series_from_records(
    name: str,
    records: Sequence[RunRecord],
    x_labels: Sequence[str],
) -> Series:
    by_label = aggregate_records(records, key=lambda r: (r.eu_label,))
    points = []
    for label in x_labels:
        if (label,) not in by_label:
            raise ConfigurationError(
                f"series {name!r} is missing E-U point {label!r}"
            )
        points.append((label, by_label[(label,)]))
    return Series(name=name, points=tuple(points))


def _flat_series(
    name: str, values: Sequence[float], x_labels: Sequence[str]
) -> Series:
    aggregate = Aggregate.of(list(values))
    return Series(
        name=name, points=tuple((label, aggregate) for label in x_labels)
    )


def heuristic_figure(
    scenarios: Sequence[Scenario],
    heuristic: str,
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
    executor: Optional[SweepExecutor] = None,
) -> FigureData:
    """Figure 3, 4, or 5: one heuristic, all of its criteria, E-U sweep.

    Args:
        scenarios: the averaged test cases.
        heuristic: ``"partial"`` (Fig. 3), ``"full_one"`` (Fig. 4), or
            ``"full_all"`` (Fig. 5).
        ratios: the E-U grid (paper grid by default).
        executor: optional :class:`SweepExecutor` supplying parallelism
            and run-record caching for the underlying sweeps.
    """
    if heuristic not in FIGURE_CRITERIA:
        raise ConfigurationError(
            f"no per-criterion figure for heuristic {heuristic!r}"
        )
    if not scenarios:
        raise ConfigurationError("a figure needs at least one test case")
    grid = resolve_ratios(ratios)
    x_labels = tuple(weights.label() for weights in grid)
    series = []
    for criterion in FIGURE_CRITERIA[heuristic]:
        records = sweep_pair(scenarios, heuristic, criterion, grid, executor)
        series.append(
            _series_from_records(
                f"{heuristic}/{criterion}", records, x_labels
            )
        )
    return FigureData(
        figure_id=_FIGURE_IDS[heuristic],
        title=(
            f"{heuristic} heuristic, weighting "
            f"{scenarios[0].weighting if scenarios else ''}, "
            f"avg of {len(scenarios)} cases"
        ),
        x_labels=x_labels,
        series=tuple(series),
    )


def figure2(
    scenarios: Sequence[Scenario],
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
    best_criterion: str = "C4",
    baseline_seed: int = 0,
    executor: Optional[SweepExecutor] = None,
) -> FigureData:
    """Figure 2: best criterion per heuristic versus the §5.2 bounds.

    Series: ``upper_bound``, ``possible_satisfy``, the three heuristics with
    ``best_criterion``, ``random_Dijkstra``, and ``single_Dij_random``.  The
    bounds and random baselines are E-U-independent and plot as horizontal
    lines, exactly as in the paper.

    Args:
        scenarios: the averaged test cases.
        ratios: the E-U grid.
        best_criterion: the criterion driving the heuristic series (the
            paper found C4 best for every heuristic).
        baseline_seed: RNG seed offset for the random baselines (case index
            is added so every case draws differently).
        executor: optional :class:`SweepExecutor` supplying parallelism
            and run-record caching for the heuristic sweeps (the bounds
            and random baselines are cheap and stay in-process).
    """
    if not scenarios:
        raise ConfigurationError("a figure needs at least one test case")
    grid = resolve_ratios(ratios)
    x_labels = tuple(weights.label() for weights in grid)
    series: List[Series] = [
        _flat_series(
            "upper_bound",
            [upper_bound(scenario) for scenario in scenarios],
            x_labels,
        ),
        _flat_series(
            "possible_satisfy",
            [possible_satisfy(scenario) for scenario in scenarios],
            x_labels,
        ),
    ]
    for heuristic in ("partial", "full_one", "full_all"):
        records = sweep_pair(
            scenarios, heuristic, best_criterion, grid, executor
        )
        series.append(
            _series_from_records(
                f"{heuristic}/{best_criterion}", records, x_labels
            )
        )
    random_records = [
        run_scheduler(
            scenario, RandomDijkstraBaseline(seed=baseline_seed + index)
        )
        for index, scenario in enumerate(scenarios)
    ]
    series.append(
        _flat_series(
            "random_Dijkstra",
            [record.weighted_sum for record in random_records],
            x_labels,
        )
    )
    single_records = [
        run_scheduler(
            scenario, SingleDijkstraRandomBaseline(seed=baseline_seed + index)
        )
        for index, scenario in enumerate(scenarios)
    ]
    series.append(
        _flat_series(
            "single_Dij_random",
            [record.weighted_sum for record in single_records],
            x_labels,
        )
    )
    return FigureData(
        figure_id="figure2",
        title=(
            f"best criterion ({best_criterion}) per heuristic vs bounds, "
            f"avg of {len(scenarios)} cases"
        ),
        x_labels=x_labels,
        series=tuple(series),
    )
