"""Assemble recorded benchmark artifacts into a markdown report.

Every benchmark writes its rendered figure/table under
``benchmarks/results/<scale>/``; :func:`build_report` collects those text
artifacts into one markdown document with the experiment-index metadata
(paper artifact, expected shape) attached.  EXPERIMENTS.md embeds the
generated sections, and the CLI's ``report`` command regenerates them
after a fresh benchmark run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union


@dataclass(frozen=True)
class ReportSection:
    """One experiment's slot in the report.

    Attributes:
        artifact: the artifact file's stem under the results directory.
        experiment_id: the DESIGN.md experiment id (e.g. ``FIG2``).
        paper_reference: what the paper reports (figure/table/claim).
        expected_shape: the qualitative result the paper leads to.
    """

    artifact: str
    experiment_id: str
    paper_reference: str
    expected_shape: str


#: Canonical report order: the paper's figures, the §5.4 tables, then the
#: extension ablations.
REPORT_SECTIONS: Tuple[ReportSection, ...] = (
    ReportSection(
        "figure2",
        "FIG2",
        "Figure 2 — best criterion per heuristic vs bounds",
        "upper > possible > heuristics > random_Dijkstra > "
        "single_Dij_random; heuristics rise toward mid E-U ratios",
    ),
    ReportSection(
        "figure3",
        "FIG3",
        "Figure 3 — partial path, C1–C4",
        "C3 flat near the best; criteria separate with the E-U ratio",
    ),
    ReportSection(
        "figure4",
        "FIG4",
        "Figure 4 — full path/one destination, C1–C4",
        "same shape as Figure 3; the paper's overall winner lives here",
    ),
    ReportSection(
        "figure5",
        "FIG5",
        "Figure 5 — full path/all destinations, C2–C4",
        "comparable to full_one with fewer Dijkstra runs; C1 excluded",
    ),
    ReportSection(
        "tab_weightings",
        "TAB-W",
        "§5.4 weighting comparison (1,5,10) vs (1,10,100)",
        "steeper weighting satisfies more high-priority requests",
    ),
    ReportSection(
        "tab_priority_tier",
        "TAB-PT",
        "§5.4 heuristic vs schedule-all-high-first",
        "cost-driven scheduling never loses on weighted priority",
    ),
    ReportSection(
        "tab_runtime_links",
        "TAB-RT",
        "§5.4 runtime and links traversed (TR table)",
        "full_all needs the fewest Dijkstra runs; few hops per delivery",
    ),
    ReportSection(
        "tab_minmax",
        "TAB-MM",
        "§5.4 per-case min/mean/max with C4 (TR table)",
        "wide per-case spread around the 40-case mean",
    ),
    ReportSection(
        "abl_congestion",
        "ABL-C",
        "§6 future work: varying network congestion",
        "satisfaction rate falls with load; achieved/possible stays high",
    ),
    ReportSection(
        "abl_weightings",
        "ABL-W",
        "§6 future work: additional weighting schemes",
        "steeper weightings raise the high-priority satisfaction rate",
    ),
    ReportSection(
        "abl_tree_cache",
        "ABL-T",
        "DESIGN decision 10: tree-cache soundness and speedup",
        "identical schedules, strictly fewer Dijkstra runs",
    ),
    ReportSection(
        "abl_gc_delay",
        "ABL-G",
        "§4.4: garbage-collection delay sweep",
        "larger gamma only adds storage pressure in the static model",
    ),
    ReportSection(
        "abl_dynamic_foresight",
        "ABL-D1",
        "§6 future work: online vs clairvoyant scheduling",
        "online reveals lose only a modest fraction of value",
    ),
    ReportSection(
        "abl_dynamic_recovery",
        "ABL-D2",
        "§4.4: copy-loss recovery through resident copies",
        "re-scheduling recovers value the losses destroyed",
    ),
    ReportSection(
        "abl_optimality_gap",
        "ABL-O",
        "§5.1: optimality gap on tiny instances",
        "heuristics capture ~100% of the exact-best value",
    ),
    ReportSection(
        "abl_storage",
        "ABL-S",
        "§1: storage-pressure sweep",
        "shrinking capacities collapse the satisfaction rate",
    ),
    ReportSection(
        "abl_rollout",
        "ABL-R",
        "§6: rollout (lookahead) vs the greedy base heuristic",
        "tiny value gain at a large cost multiplier — the myopic criteria "
        "are already near-exact",
    ),
)


def build_report(
    results_dir: Union[str, Path],
    scale_name: str,
    sections: Tuple[ReportSection, ...] = REPORT_SECTIONS,
) -> str:
    """Collect one scale's artifacts into a markdown document.

    Missing artifacts are listed as "not recorded" rather than failing, so
    a partial benchmark run still produces a useful report.

    Args:
        results_dir: the ``benchmarks/results`` directory.
        scale_name: which scale subdirectory to read (``ci``/``full``/...).
        sections: the experiments to include, in order.
    """
    base = Path(results_dir) / scale_name
    lines: List[str] = [
        f"# Recorded results — scale `{scale_name}`",
        "",
    ]
    for section in sections:
        lines.append(f"## {section.experiment_id}: {section.paper_reference}")
        lines.append("")
        lines.append(f"*Expected shape:* {section.expected_shape}")
        lines.append("")
        text = _read_artifact(base / f"{section.artifact}.txt")
        if text is None:
            lines.append("*(not recorded at this scale)*")
        else:
            lines.append("```text")
            lines.append(text.rstrip("\n"))
            lines.append("```")
        lines.append("")
    return "\n".join(lines)


def _read_artifact(path: Path) -> Optional[str]:
    if not path.is_file():
        return None
    return path.read_text(encoding="utf-8")
