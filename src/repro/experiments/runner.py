"""Single-run execution records for the simulation study.

A :class:`RunRecord` is one (scenario, scheduler, E-U point) measurement:
the achieved weighted priority sum, per-class satisfaction counts, and the
engine instrumentation (steps, Dijkstra executions, wall time, links
traversed).  Everything the figure/table producers need is derived from
these records.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.core.evaluation import evaluate_schedule
from repro.core.scenario import Scenario
from repro.cost.criteria import CostCriterion
from repro.cost.weights import EUWeights, as_weights
from repro.heuristics.base import HeuristicResult
from repro.heuristics.registry import make_heuristic
from repro.observability.metrics import RunMetrics
from repro.observability.profiling import Profile
from repro.observability.timeline import Timeline


@dataclass(frozen=True)
class RunRecord:
    """One scheduler execution on one scenario.

    Attributes:
        scenario: the scenario's name.
        scheduler: the scheduler label (e.g. ``"partial/C4"``).
        eu_label: the E-U sweep point (``"-inf"``..``"inf"``), or ``"-"``
            for E-U-independent schedulers.
        weighted_sum: the achieved ``-E[S_h]``.
        satisfied_by_priority: satisfied request count per priority class.
        total_by_priority: total request count per priority class.
        steps: communication steps booked.
        dijkstra_runs: shortest-path-tree computations performed.
        elapsed_seconds: wall-clock scheduling time.
        average_hops: mean links traversed per satisfied request.
        cache_hit: ``True`` when the record was replayed from the on-disk
            run cache instead of being computed; ``elapsed_seconds`` then
            reports the *original* run's timing, not this process's.
        metrics: optional observability aggregate for the run; populated
            only when metrics collection was requested, and — like
            timing — excluded from result identity.
        profile: optional per-phase span profile for the run; populated
            only when profiling was requested, and — like timing —
            excluded from result identity.  Cache replays restore the
            *original* run's profile.
        timeline: optional simulated-time telemetry document for the
            run; populated only when timeline collection was requested,
            and — like timing — excluded from result identity.  Cache
            replays restore the *original* run's timeline (simulated
            time is deterministic, so the replayed document is
            byte-identical to a recompute).
    """

    scenario: str
    scheduler: str
    eu_label: str
    weighted_sum: float
    satisfied_by_priority: Tuple[int, ...]
    total_by_priority: Tuple[int, ...]
    steps: int
    dijkstra_runs: int
    elapsed_seconds: float
    average_hops: float
    cache_hit: bool = False
    metrics: Optional[RunMetrics] = None
    profile: Optional[Profile] = None
    timeline: Optional[Timeline] = None

    @property
    def satisfied_count(self) -> int:
        """Total satisfied requests."""
        return sum(self.satisfied_by_priority)

    def without_timing(self) -> "RunRecord":
        """A copy with timing and provenance fields neutralized.

        Wall time varies run to run (and is replayed from the original
        run on cache hits), so differential comparisons — serial versus
        parallel, computed versus cached — compare these copies.
        """
        return dataclasses.replace(
            self,
            elapsed_seconds=0.0,
            cache_hit=False,
            metrics=None,
            profile=None,
            timeline=None,
        )


def record_result(
    scenario: Scenario,
    result: HeuristicResult,
    scheduler: str,
    eu_label: str = "-",
    metrics: Optional[RunMetrics] = None,
    profile: Optional[Profile] = None,
    timeline: Optional[Timeline] = None,
) -> RunRecord:
    """Convert a finished :class:`HeuristicResult` into a record."""
    effect = evaluate_schedule(scenario, result.schedule)
    return RunRecord(
        scenario=scenario.name,
        scheduler=scheduler,
        eu_label=eu_label,
        weighted_sum=effect.weighted_sum,
        satisfied_by_priority=effect.satisfied_by_priority,
        total_by_priority=effect.total_by_priority,
        steps=result.schedule.step_count,
        dijkstra_runs=result.stats.dijkstra_runs,
        elapsed_seconds=result.stats.elapsed_seconds,
        average_hops=result.schedule.average_hops_per_delivery(),
        metrics=metrics,
        profile=profile,
        timeline=timeline,
    )


def run_pair(
    scenario: Scenario,
    heuristic: str,
    criterion: Union[str, CostCriterion] = "C4",
    weights: Union[float, EUWeights] = 0.0,
) -> RunRecord:
    """Run one heuristic/criterion pair on one scenario.

    Args:
        scenario: the problem instance.
        heuristic: heuristic registry name.
        criterion: criterion registry name or instance.
        weights: E-U weights or raw ``log10`` ratio.
    """
    eu = as_weights(weights)
    scheduler = make_heuristic(heuristic, criterion=criterion, weights=eu)
    result = scheduler.run(scenario)
    label = (
        "-" if scheduler.criterion.eu_independent else eu.label()
    )
    return record_result(
        scenario, result, scheduler=scheduler.label(), eu_label=label
    )


def run_scheduler(
    scenario: Scenario,
    scheduler,
    eu_label: str = "-",
    label: Optional[str] = None,
) -> RunRecord:
    """Run any object exposing ``run(scenario)`` and ``label()``."""
    result = scheduler.run(scenario)
    return record_result(
        scenario,
        result,
        scheduler=label if label is not None else scheduler.label(),
        eu_label=eu_label,
    )
