"""Experiment scaling — the ``REPRO_SCALE`` knob shared by all benchmarks.

Three scales, same workload *shape*:

* ``ci`` (default) — a handful of reduced-size cases and a coarse E-U grid;
  every benchmark finishes in seconds to low minutes.
* ``full`` — the paper's 40 test cases and full E-U grid, with the reduced
  request volume (~5–10 requests per machine); this is the scale recorded
  in EXPERIMENTS.md.
* ``paper`` — the literal §5.3 parameterization (20–40 requests per
  machine, 40 cases, full grid); hours of pure-Python CPU.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

from repro.cost.weights import PAPER_LOG_RATIOS
from repro.errors import ConfigurationError
from repro.workload.config import GeneratorConfig

#: Environment variable selecting the experiment scale.
SCALE_ENV_VAR = "REPRO_SCALE"

#: Coarse E-U grid used at the ``ci`` scale (endpoints plus spread).
CI_LOG_RATIOS: Tuple[float, ...] = (
    float("-inf"),
    -2.0,
    0.0,
    2.0,
    5.0,
    float("inf"),
)


@dataclass(frozen=True)
class ExperimentScale:
    """One benchmark scale: case count, generator config, E-U grid.

    Attributes:
        name: scale identifier (``ci`` / ``full`` / ``paper``).
        cases: number of random test cases averaged.
        config: the workload generator configuration.
        log_ratios: the E-U sweep grid.
        base_seed: first case seed (cases use consecutive seeds).
    """

    name: str
    cases: int
    config: GeneratorConfig
    log_ratios: Tuple[float, ...]
    base_seed: int = 0


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a scale definition.

    Raises:
        ConfigurationError: for unknown scale names.
    """
    key = name.strip().lower()
    if key == "ci":
        return ExperimentScale(
            name="ci",
            cases=5,
            config=GeneratorConfig.reduced(),
            log_ratios=CI_LOG_RATIOS,
        )
    if key == "full":
        return ExperimentScale(
            name="full",
            cases=40,
            config=GeneratorConfig.reduced(),
            log_ratios=PAPER_LOG_RATIOS,
        )
    if key == "paper":
        return ExperimentScale(
            name="paper",
            cases=40,
            config=GeneratorConfig.paper(),
            log_ratios=PAPER_LOG_RATIOS,
        )
    raise ConfigurationError(
        f"unknown {SCALE_ENV_VAR} value {name!r}; use ci, full, or paper"
    )


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default ``ci``)."""
    return scale_by_name(os.environ.get(SCALE_ENV_VAR, "ci"))
