"""The §5.4 prose comparisons: weighting schemes, priority tiers, runtime.

Three studies back the claims the paper states in text (with full tables in
the companion TR):

* :func:`weighting_comparison` — the (1,10,100) weighting satisfies more
  high-priority and fewer medium/low-priority requests than (1,5,10);
* :func:`priority_tier_comparison` — every heuristic/criterion pair beats
  the simplified schedule-all-high-first scheme on weighted priority, while
  the tier scheme trades weighted value for raw high-priority count;
* :func:`runtime_study` — heuristic execution time and average links
  traversed per satisfied request for all eleven pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.priority import (
    PriorityWeighting,
    WEIGHTING_1_5_10,
    WEIGHTING_1_10_100,
)
from repro.core.scenario import Scenario
from repro.cost.weights import EUWeights, as_weights
from repro.experiments.aggregate import Aggregate, per_priority_totals
from repro.experiments.executor import (
    SweepCell,
    SweepExecutor,
    ensure_executor,
)
from repro.experiments.runner import RunRecord
from repro.heuristics.registry import paper_pairings
from repro.workload.generator import ScenarioGenerator


@dataclass(frozen=True)
class WeightingOutcome:
    """Per-weighting satisfaction profile of one scheduler.

    Attributes:
        weighting: the weighting's display name.
        mean_weighted_sum: mean achieved weighted priority sum.
        mean_satisfied_by_priority: mean satisfied count per class.
        mean_total_by_priority: mean request count per class.
    """

    weighting: str
    mean_weighted_sum: float
    mean_satisfied_by_priority: Tuple[float, ...]
    mean_total_by_priority: Tuple[float, ...]


def regenerate_under_weighting(
    generator: ScenarioGenerator,
    seeds: Sequence[int],
    weighting: PriorityWeighting,
) -> Tuple[Scenario, ...]:
    """The same test cases (same seeds) under a different weighting."""
    reweighted = ScenarioGenerator(generator.config, weighting=weighting)
    return tuple(reweighted.generate(seed) for seed in seeds)


def weighting_comparison(
    generator: ScenarioGenerator,
    seeds: Sequence[int],
    heuristic: str = "full_one",
    criterion: str = "C4",
    weights: Union[float, EUWeights] = 0.0,
    weightings: Sequence[PriorityWeighting] = (
        WEIGHTING_1_5_10,
        WEIGHTING_1_10_100,
    ),
    executor: Optional[SweepExecutor] = None,
) -> List[WeightingOutcome]:
    """Run one scheduler on the same cases under each priority weighting.

    Args:
        generator: supplies the test cases (the weighting is overridden).
        seeds: the case seeds — identical across weightings so the
            comparison isolates the weighting's effect.
        heuristic / criterion / weights: the scheduler under study.
        weightings: the weighting schemes to compare.
        executor: optional :class:`SweepExecutor` supplying parallelism
            and run-record caching.
    """
    runner = ensure_executor(executor)
    outcomes = []
    for weighting in weightings:
        scenarios = regenerate_under_weighting(generator, seeds, weighting)
        records = runner.run_pairs(scenarios, heuristic, criterion, weights)
        satisfied, totals = per_priority_totals(records)
        outcomes.append(
            WeightingOutcome(
                weighting=weighting.name,
                mean_weighted_sum=Aggregate.of(
                    [r.weighted_sum for r in records]
                ).mean,
                mean_satisfied_by_priority=satisfied,
                mean_total_by_priority=totals,
            )
        )
    return outcomes


@dataclass(frozen=True)
class TierComparison:
    """Heuristic-vs-priority-tier outcome on one case set.

    Attributes:
        scheduler: the cost-driven scheduler's label.
        heuristic_weighted_sum: its mean weighted priority sum.
        tier_weighted_sum: the priority-tier scheme's mean weighted sum.
        heuristic_satisfied_by_priority: mean per-class counts (heuristic).
        tier_satisfied_by_priority: mean per-class counts (tier scheme).
        wins: cases where the cost-driven scheduler scored strictly higher.
        ties: cases with equal weighted sums.
        cases: total case count.
    """

    scheduler: str
    heuristic_weighted_sum: float
    tier_weighted_sum: float
    heuristic_satisfied_by_priority: Tuple[float, ...]
    tier_satisfied_by_priority: Tuple[float, ...]
    wins: int
    ties: int
    cases: int


def priority_tier_comparison(
    scenarios: Sequence[Scenario],
    heuristic: str = "full_one",
    criterion: str = "C4",
    weights: Union[float, EUWeights] = 0.0,
    executor: Optional[SweepExecutor] = None,
) -> TierComparison:
    """Compare one heuristic/criterion pair against the tiered scheme.

    Both sides run through ``executor`` (default: serial, cache-less):
    the heuristic as plain ``"pair"`` cells, the §5.4 tier scheme as
    ``"tier"`` cells wrapping the same pair.
    """
    eu = as_weights(weights)
    runner = ensure_executor(executor)
    heuristic_records = runner.run_pairs(
        scenarios, heuristic, criterion, eu
    )
    tier_records = runner.run_cells(
        [
            SweepCell(
                scenario=scenario,
                heuristic=heuristic,
                criterion=criterion,
                weights=eu,
                kind="tier",
            )
            for scenario in scenarios
        ]
    )
    wins = 0
    ties = 0
    for h_record, t_record in zip(heuristic_records, tier_records):
        if h_record.weighted_sum > t_record.weighted_sum:
            wins += 1
        elif h_record.weighted_sum == t_record.weighted_sum:
            ties += 1
    h_satisfied, _ = per_priority_totals(heuristic_records)
    t_satisfied, _ = per_priority_totals(tier_records)
    return TierComparison(
        scheduler=f"{heuristic}/{criterion}",
        heuristic_weighted_sum=Aggregate.of(
            [r.weighted_sum for r in heuristic_records]
        ).mean,
        tier_weighted_sum=Aggregate.of(
            [r.weighted_sum for r in tier_records]
        ).mean,
        heuristic_satisfied_by_priority=h_satisfied,
        tier_satisfied_by_priority=t_satisfied,
        wins=wins,
        ties=ties,
        cases=len(scenarios),
    )


@dataclass(frozen=True)
class RuntimeRow:
    """Mean runtime metrics of one heuristic/criterion pair.

    Attributes:
        scheduler: the pair's label.
        elapsed: mean wall-clock scheduling seconds per case.
        dijkstra_runs: mean shortest-path-tree computations per case.
        steps: mean communication steps booked per case.
        average_hops: mean links traversed per satisfied request.
    """

    scheduler: str
    elapsed: Aggregate
    dijkstra_runs: Aggregate
    steps: Aggregate
    average_hops: Aggregate


def runtime_study(
    scenarios: Sequence[Scenario],
    weights: Union[float, EUWeights] = 0.0,
    pairings: Sequence[Tuple[str, str]] = (),
    executor: Optional[SweepExecutor] = None,
) -> List[RuntimeRow]:
    """Execution time and links traversed for every heuristic/criterion pair.

    Args:
        scenarios: the test cases.
        weights: the E-U point at which the pairs are compared.
        pairings: optional subset; defaults to the paper's eleven pairs.
        executor: optional :class:`SweepExecutor`.  Note that a cache-hit
            record replays the *original* run's ``elapsed_seconds``, so a
            warm cache reports historical timings, not this machine's.
    """
    pairs = tuple(pairings) or paper_pairings()
    runner = ensure_executor(executor)
    rows = []
    for heuristic, criterion in pairs:
        records = runner.run_pairs(scenarios, heuristic, criterion, weights)
        rows.append(
            RuntimeRow(
                scheduler=f"{heuristic}/{criterion}",
                elapsed=Aggregate.of([r.elapsed_seconds for r in records]),
                dijkstra_runs=Aggregate.of(
                    [float(r.dijkstra_runs) for r in records]
                ),
                steps=Aggregate.of([float(r.steps) for r in records]),
                average_hops=Aggregate.of(
                    [r.average_hops for r in records]
                ),
            )
        )
    return rows
