"""E-U ratio sweeps — the x-axis of Figures 2 through 5.

A sweep runs one heuristic/criterion pair over every test case at every
E-U grid point.  E-U-independent criteria (C3) are executed once per case
and their records replicated across the grid, exactly as the paper plots
them (a horizontal line).

Execution is delegated to a :class:`~repro.experiments.executor
.SweepExecutor`; by default a serial cache-less one, so behavior without
an ``executor`` argument is exactly the historical serial path.  Passing
an executor adds process-level parallelism and/or run-record caching
without changing the records (ordering included).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.scenario import Scenario
from repro.cost.criteria import CostCriterion, get_criterion
from repro.cost.weights import PAPER_LOG_RATIOS, EUWeights, as_weights
from repro.experiments.executor import (
    SweepCell,
    SweepExecutor,
    ensure_executor,
)
from repro.experiments.runner import RunRecord


def resolve_ratios(
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
) -> Tuple[EUWeights, ...]:
    """Normalize a ratio grid to concrete weight pairs."""
    return tuple(as_weights(ratio) for ratio in ratios)


def sweep_pair(
    scenarios: Sequence[Scenario],
    heuristic: str,
    criterion: Union[str, CostCriterion],
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
    executor: Optional[SweepExecutor] = None,
) -> List[RunRecord]:
    """All (scenario × E-U point) records for one heuristic/criterion pair.

    Args:
        scenarios: the test cases (the paper's 40 random cases).
        heuristic: heuristic registry name.
        criterion: criterion registry name or instance.
        ratios: the E-U grid; ignored (but still labelling the output) for
            E-U-independent criteria.
        executor: optional :class:`SweepExecutor` supplying parallelism
            and caching; defaults to a serial cache-less one.
    """
    if isinstance(criterion, str):
        criterion = get_criterion(criterion)
    grid = resolve_ratios(ratios)
    runner = ensure_executor(executor)
    if criterion.eu_independent:
        bases = runner.run_cells(
            [
                SweepCell(
                    scenario=scenario,
                    heuristic=heuristic,
                    criterion=criterion,
                    weights=grid[0],
                )
                for scenario in scenarios
            ]
        )
        return [
            dataclasses.replace(base, eu_label=weights.label())
            for base in bases
            for weights in grid
        ]
    cells = [
        SweepCell(
            scenario=scenario,
            heuristic=heuristic,
            criterion=criterion,
            weights=weights,
        )
        for scenario in scenarios
        for weights in grid
    ]
    return runner.run_cells(cells)


def sweep_all_criteria(
    scenarios: Sequence[Scenario],
    heuristic: str,
    criteria: Sequence[Union[str, CostCriterion]],
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
    executor: Optional[SweepExecutor] = None,
) -> List[RunRecord]:
    """Concatenated sweeps of several criteria for one heuristic."""
    records: List[RunRecord] = []
    for criterion in criteria:
        records.extend(
            sweep_pair(scenarios, heuristic, criterion, ratios, executor)
        )
    return records
