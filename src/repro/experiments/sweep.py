"""E-U ratio sweeps — the x-axis of Figures 2 through 5.

A sweep runs one heuristic/criterion pair over every test case at every
E-U grid point.  E-U-independent criteria (C3) are executed once per case
and their records replicated across the grid, exactly as the paper plots
them (a horizontal line).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple, Union

from repro.core.scenario import Scenario
from repro.cost.criteria import CostCriterion, get_criterion
from repro.cost.weights import PAPER_LOG_RATIOS, EUWeights, as_weights
from repro.experiments.runner import RunRecord, run_pair


def resolve_ratios(
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
) -> Tuple[EUWeights, ...]:
    """Normalize a ratio grid to concrete weight pairs."""
    return tuple(as_weights(ratio) for ratio in ratios)


def sweep_pair(
    scenarios: Sequence[Scenario],
    heuristic: str,
    criterion: Union[str, CostCriterion],
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
) -> List[RunRecord]:
    """All (scenario × E-U point) records for one heuristic/criterion pair.

    Args:
        scenarios: the test cases (the paper's 40 random cases).
        heuristic: heuristic registry name.
        criterion: criterion registry name or instance.
        ratios: the E-U grid; ignored (but still labelling the output) for
            E-U-independent criteria.
    """
    if isinstance(criterion, str):
        criterion = get_criterion(criterion)
    grid = resolve_ratios(ratios)
    records: List[RunRecord] = []
    for scenario in scenarios:
        if criterion.eu_independent:
            base = run_pair(scenario, heuristic, criterion, grid[0])
            records.extend(
                dataclasses.replace(base, eu_label=weights.label())
                for weights in grid
            )
        else:
            records.extend(
                run_pair(scenario, heuristic, criterion, weights)
                for weights in grid
            )
    return records


def sweep_all_criteria(
    scenarios: Sequence[Scenario],
    heuristic: str,
    criteria: Sequence[Union[str, CostCriterion]],
    ratios: Sequence[Union[float, EUWeights]] = PAPER_LOG_RATIOS,
) -> List[RunRecord]:
    """Concatenated sweeps of several criteria for one heuristic."""
    records: List[RunRecord] = []
    for criterion in criteria:
        records.extend(sweep_pair(scenarios, heuristic, criterion, ratios))
    return records
