"""Plain-text rendering of figures and tables.

The benchmark harness prints every reproduced figure as an aligned ASCII
table (series × E-U grid) so results are inspectable without a plotting
stack; the same renderer serves the §5.4 comparison tables.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.figures import FigureData


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Align ``rows`` under ``headers`` with a box of dashes.

    All cells are rendered right-aligned except the first column.

    Raises:
        ValueError: if a row's cell count disagrees with ``headers``.
    """
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(str(headers[c])), *(len(str(row[c])) for row in rows))
        if rows
        else len(str(headers[c]))
        for c in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(headers[c]).ljust(widths[c])
        if c == 0
        else str(headers[c]).rjust(widths[c])
        for c in range(columns)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(
                str(row[c]).ljust(widths[c])
                if c == 0
                else str(row[c]).rjust(widths[c])
                for c in range(columns)
            )
        )
    return "\n".join(lines)


def render_figure(figure: FigureData, precision: int = 1) -> str:
    """Render a :class:`FigureData` as one row per series.

    Columns are the E-U grid labels; cells are mean weighted priority sums
    over the figure's test cases.
    """
    headers = ["series"] + list(figure.x_labels)
    rows = []
    for series in figure.series:
        rows.append(
            [series.name]
            + [f"{value:.{precision}f}" for value in series.values()]
        )
    return render_table(
        headers, rows, title=f"{figure.figure_id}: {figure.title}"
    )


def render_minmax(figure: FigureData, label: str) -> str:
    """Render min/mean/max of every series at one E-U grid point."""
    headers = ["series", "min", "mean", "max", "cases"]
    rows = []
    for series in figure.series:
        aggregate = series.point(label)
        rows.append(
            [
                series.name,
                f"{aggregate.minimum:.1f}",
                f"{aggregate.mean:.1f}",
                f"{aggregate.maximum:.1f}",
                str(aggregate.count),
            ]
        )
    return render_table(
        headers,
        rows,
        title=f"{figure.figure_id} at log10(E-U)={label}: per-case spread",
    )
