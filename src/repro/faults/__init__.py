"""Deterministic fault injection (outages, degradation, request churn).

See :mod:`repro.faults.plan` for the model and ``docs/FAULTS.md`` for the
fault taxonomy, determinism rules, and CLI examples.
"""

from repro.faults.context import current_faults, use_faults
from repro.faults.plan import (
    FAULTS_SCHEMA_VERSION,
    BandwidthDegradation,
    CancellationFault,
    FaultPlan,
    LateArrivalFault,
    OutageWindow,
)

__all__ = [
    "FAULTS_SCHEMA_VERSION",
    "BandwidthDegradation",
    "CancellationFault",
    "FaultPlan",
    "LateArrivalFault",
    "OutageWindow",
    "current_faults",
    "use_faults",
]
