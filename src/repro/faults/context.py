"""Ambient fault-plan context, mirroring the tracer's ``use_tracer``.

Deeply nested construction sites (``NetworkState`` built inside a
heuristic inside an executor worker) pick up the active plan without
every intermediate layer threading a parameter:

    with use_faults(plan):
        result = make_heuristic("partial", "C4", 2.0).run(scenario)

``NetworkState`` captures :func:`current_faults` at construction, exactly
as it captures the ambient tracer, so clones made mid-run keep the plan
even after the ``with`` block exits.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.faults.plan import FaultPlan

#: Stack of active plans; the top (last) entry is the current one.
_current: List[Optional[FaultPlan]] = [None]


def current_faults() -> Optional[FaultPlan]:
    """The innermost active fault plan, or ``None`` outside ``use_faults``."""
    return _current[-1]


@contextmanager
def use_faults(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` as the ambient fault plan for the ``with`` body."""
    _current.append(plan)
    try:
        yield plan
    finally:
        _current.pop()
