"""Deterministic fault plans: link outages, degradation, and request churn.

The paper's network is *oversubscribed* by construction, but the base
scenarios are healthy: every link delivers its nominal bandwidth over its
whole availability window and every request survives until its deadline.
A :class:`FaultPlan` describes a reproducible departure from that — the
adversity layer the ROADMAP's "heavy traffic" north star calls for:

* **Outage windows** mask a physical link (all of its virtual links) over
  a time interval.  They are applied through the existing busy-interval
  machinery in :class:`~repro.core.state.NetworkState`, so schedulers
  route around them exactly as they route around contention.
* **Bandwidth degradations** scale a physical link's capacity by a
  factor in ``(0, 1]``, lengthening every transfer that uses it.
* **Cancellations / late arrivals** are *churn*: request-level events
  replayed by :class:`~repro.dynamic.driver.DynamicDriver`.  Static
  scheduling runs (the executor's sweep cells) reject churn-bearing
  plans — only the time-invariant capacity faults compose with a single
  offline schedule.

Plans are value objects: canonically ordered at construction so two
logically equal plans serialize (and fingerprint) byte-identically, and
generated only from seeded :class:`random.Random` instances so the same
``(scenario, intensity, seed)`` triple always yields the same plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple, TYPE_CHECKING

from repro.core.intervals import Interval
from repro.core.scenario import Scenario
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (dynamic -> core)
    from repro.dynamic.events import Event

#: Schema version for the fault-plan JSON codec (see repro.serialization).
FAULTS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class OutageWindow:
    """Physical link ``physical_id`` carries no traffic in ``[start, end)``."""

    physical_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.physical_id < 0:
            raise ModelError(
                f"outage physical_id must be >= 0, got {self.physical_id}"
            )
        if self.start < 0.0:
            raise ModelError(f"outage start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ModelError(
                f"outage window [{self.start}, {self.end}) is empty"
            )

    @property
    def interval(self) -> Interval:
        """The window as a half-open :class:`Interval`."""
        return Interval(self.start, self.end)


@dataclass(frozen=True)
class BandwidthDegradation:
    """Physical link ``physical_id`` runs at ``factor`` of its bandwidth."""

    physical_id: int
    factor: float

    def __post_init__(self) -> None:
        if self.physical_id < 0:
            raise ModelError(
                f"degradation physical_id must be >= 0, got {self.physical_id}"
            )
        if not 0.0 < self.factor <= 1.0:
            raise ModelError(
                f"degradation factor must be in (0, 1], got {self.factor}"
            )


@dataclass(frozen=True)
class CancellationFault:
    """Request ``request_id`` is withdrawn at ``time`` (dynamic runs only)."""

    request_id: int
    time: float

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ModelError(
                f"cancellation request_id must be >= 0, got {self.request_id}"
            )
        if self.time < 0.0:
            raise ModelError(
                f"cancellation time must be >= 0, got {self.time}"
            )


@dataclass(frozen=True)
class LateArrivalFault:
    """Request ``request_id`` is only revealed at ``time`` (dynamic runs)."""

    request_id: int
    time: float

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ModelError(
                f"late-arrival request_id must be >= 0, got {self.request_id}"
            )
        if self.time < 0.0:
            raise ModelError(
                f"late-arrival time must be >= 0, got {self.time}"
            )


def _merged(intervals: List[Interval]) -> Tuple[Interval, ...]:
    """Merge overlapping/adjacent intervals into a canonical sorted tuple."""
    if not intervals:
        return ()
    ordered = sorted(intervals, key=lambda window: (window.start, window.end))
    merged: List[Interval] = [ordered[0]]
    for window in ordered[1:]:
        last = merged[-1]
        if window.start <= last.end:
            if window.end > last.end:
                merged[-1] = Interval(last.start, window.end)
        else:
            merged.append(window)
    return tuple(merged)


@dataclass(frozen=True)
class FaultPlan:
    """A canonical, hashable description of injected faults.

    Construction normalizes the plan: components are sorted, degradations
    with factor 1.0 (no-ops) are dropped, and per-link outage windows are
    merged — so a zero-intensity plan is *structurally empty* and two
    plans describing the same faults compare and fingerprint equal.
    """

    outages: Tuple[OutageWindow, ...] = ()
    degradations: Tuple[BandwidthDegradation, ...] = ()
    cancellations: Tuple[CancellationFault, ...] = ()
    late_arrivals: Tuple[LateArrivalFault, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        by_link: Dict[int, List[Interval]] = {}
        for outage in self.outages:
            by_link.setdefault(outage.physical_id, []).append(outage.interval)
        canonical_outages = tuple(
            OutageWindow(physical_id, window.start, window.end)
            for physical_id in sorted(by_link)
            for window in _merged(by_link[physical_id])
        )
        kept = [d for d in self.degradations if d.factor < 1.0]
        seen_links = {d.physical_id for d in kept}
        if len(seen_links) != len(kept):
            raise ModelError(
                "at most one bandwidth degradation per physical link"
            )
        canonical_degradations = tuple(
            sorted(kept, key=lambda d: d.physical_id)
        )
        cancelled = {c.request_id for c in self.cancellations}
        if len(cancelled) != len(self.cancellations):
            raise ModelError("at most one cancellation per request")
        late = {a.request_id for a in self.late_arrivals}
        if len(late) != len(self.late_arrivals):
            raise ModelError("at most one late arrival per request")
        object.__setattr__(self, "outages", canonical_outages)
        object.__setattr__(self, "degradations", canonical_degradations)
        object.__setattr__(
            self,
            "cancellations",
            tuple(sorted(self.cancellations, key=lambda c: c.request_id)),
        )
        object.__setattr__(
            self,
            "late_arrivals",
            tuple(sorted(self.late_arrivals, key=lambda a: a.request_id)),
        )

    # -- classification ------------------------------------------------

    def is_empty(self) -> bool:
        """True when applying this plan changes nothing."""
        return not (
            self.outages
            or self.degradations
            or self.cancellations
            or self.late_arrivals
        )

    def has_churn(self) -> bool:
        """True when the plan carries request-level (dynamic-only) faults."""
        return bool(self.cancellations or self.late_arrivals)

    def static_only(self) -> "FaultPlan":
        """The capacity-fault subset that composes with static schedules."""
        if not self.has_churn():
            return self
        return replace(self, cancellations=(), late_arrivals=())

    # -- lookups -------------------------------------------------------

    def outage_intervals(self, physical_id: int) -> Tuple[Interval, ...]:
        """Merged outage intervals for one physical link (maybe empty)."""
        return tuple(
            outage.interval
            for outage in self.outages
            if outage.physical_id == physical_id
        )

    def bandwidth_factor(self, physical_id: int) -> float:
        """Capacity multiplier for one physical link (1.0 = healthy)."""
        for degradation in self.degradations:
            if degradation.physical_id == physical_id:
                return degradation.factor
        return 1.0

    def bandwidth_factors(self) -> Dict[int, float]:
        """All sub-1.0 capacity multipliers, keyed by physical link id.

        Construction drops factor-1.0 no-ops, so every entry is a real
        degradation; :class:`~repro.core.state.NetworkState` seeds its
        degradation table from this in one pass instead of probing
        :meth:`bandwidth_factor` per virtual link.
        """
        return {
            degradation.physical_id: degradation.factor
            for degradation in self.degradations
        }

    def label(self) -> str:
        """Short human-readable tag for reports and log lines."""
        if self.name:
            return self.name
        if self.is_empty():
            return "healthy"
        return (
            f"{len(self.outages)}out/{len(self.degradations)}deg/"
            f"{len(self.cancellations)}cxl/{len(self.late_arrivals)}late"
        )

    # -- validation and churn ------------------------------------------

    def check_against(self, scenario: Scenario) -> None:
        """Raise :class:`ModelError` if the plan references unknown ids."""
        known_links = {
            plink.physical_id for plink in scenario.network.physical_links
        }
        for outage in self.outages:
            if outage.physical_id not in known_links:
                raise ModelError(
                    f"fault plan outage references unknown physical link "
                    f"{outage.physical_id}"
                )
        for degradation in self.degradations:
            if degradation.physical_id not in known_links:
                raise ModelError(
                    f"fault plan degradation references unknown physical "
                    f"link {degradation.physical_id}"
                )
        for cancellation in self.cancellations:
            scenario.request(cancellation.request_id)
        for arrival in self.late_arrivals:
            scenario.request(arrival.request_id)

    def churn_events(self) -> Tuple["Event", ...]:
        """The plan's churn as dynamic-driver events (unsorted).

        Late arrivals become :class:`RequestArrival` events, cancellations
        become :class:`RequestCancellation` events; feed the result (plus
        any scenario events) through :func:`repro.dynamic.events.sorted_events`.
        """
        # Imported here: repro.dynamic imports repro.core.state, which in
        # turn reads the ambient fault plan from this package.
        from repro.dynamic.events import RequestArrival, RequestCancellation

        events: List["Event"] = [
            RequestArrival(time=fault.time, request_id=fault.request_id)
            for fault in self.late_arrivals
        ]
        events.extend(
            RequestCancellation(time=fault.time, request_id=fault.request_id)
            for fault in self.cancellations
        )
        return tuple(events)

    # -- generation ----------------------------------------------------

    @staticmethod
    def generate(
        scenario: Scenario,
        intensity: float,
        seed: int = 0,
        churn: bool = True,
    ) -> "FaultPlan":
        """Draw a seeded plan whose severity scales with ``intensity``.

        ``intensity`` is a knob in ``[0, 1]``: 0 yields the empty plan
        (byte-identical to injecting nothing), 1 is heavy adversity —
        most links suffer an outage and deep degradation, and a fair
        share of requests churn.  The draw is fully determined by
        ``(scenario shape, intensity, seed)``; wall clock and global RNG
        state are never consulted.

        Args:
            scenario: the scenario the plan will be applied to.
            intensity: fault severity in ``[0, 1]``.
            seed: RNG seed; same seed, same plan.
            churn: include cancellations/late arrivals (dynamic runs
                only); ``False`` keeps the plan static-safe.
        """
        if not 0.0 <= intensity <= 1.0:
            raise ModelError(
                f"fault intensity must be in [0, 1], got {intensity}"
            )
        name = f"gen(intensity={intensity:g}, seed={seed})"
        if intensity <= 0.0:
            return FaultPlan(name=name)
        rng = random.Random(1_000_003 * seed + round(1000.0 * intensity))
        active = max(
            (request.deadline for request in scenario.requests),
            default=scenario.horizon,
        )
        if active <= 0.0:
            active = scenario.horizon
        outages: List[OutageWindow] = []
        degradations: List[BandwidthDegradation] = []
        for plink in scenario.network.physical_links:
            if rng.random() < 0.6 * intensity:
                length = active * intensity * (0.1 + 0.4 * rng.random())
                start = rng.random() * max(active - length, 0.0)
                outages.append(
                    OutageWindow(plink.physical_id, start, start + length)
                )
            if rng.random() < 0.6 * intensity:
                factor = max(
                    1.0 - intensity * (0.3 + 0.6 * rng.random()), 0.05
                )
                degradations.append(
                    BandwidthDegradation(plink.physical_id, factor)
                )
        cancellations: List[CancellationFault] = []
        late_arrivals: List[LateArrivalFault] = []
        if churn:
            for request in scenario.requests:
                draw = rng.random()
                horizon = max(request.deadline, 0.0)
                if draw < 0.2 * intensity:
                    cancellations.append(
                        CancellationFault(
                            request.request_id, rng.random() * horizon
                        )
                    )
                elif draw < 0.4 * intensity:
                    late_arrivals.append(
                        LateArrivalFault(
                            request.request_id,
                            rng.random() * 0.5 * horizon,
                        )
                    )
        return FaultPlan(
            outages=tuple(outages),
            degradations=tuple(degradations),
            cancellations=tuple(cancellations),
            late_arrivals=tuple(late_arrivals),
            name=name,
        )
