"""The three Dijkstra-based data staging heuristics (paper §4.5–§4.7)."""

from repro.heuristics.base import (
    EngineStats,
    HeuristicResult,
    StagingHeuristic,
    TreeCache,
)
from repro.heuristics.candidates import CandidateGroup, enumerate_groups
from repro.heuristics.full_path_all import FullPathAllDestinationsHeuristic
from repro.heuristics.full_path_one import FullPathOneDestinationHeuristic
from repro.heuristics.partial_path import PartialPathHeuristic
from repro.heuristics.rollout import RolloutScheduler
from repro.heuristics.registry import (
    heuristic_names,
    make_heuristic,
    paper_pairings,
)

__all__ = [
    "CandidateGroup",
    "EngineStats",
    "FullPathAllDestinationsHeuristic",
    "FullPathOneDestinationHeuristic",
    "HeuristicResult",
    "PartialPathHeuristic",
    "RolloutScheduler",
    "StagingHeuristic",
    "TreeCache",
    "enumerate_groups",
    "heuristic_names",
    "make_heuristic",
    "paper_pairings",
]
