"""The shared scheduling engine behind the three §4.5–§4.7 heuristics.

All three heuristics follow the same outer loop:

1. (re)compute the shortest-path tree of every requested item;
2. enumerate the valid next communication steps (candidate groups);
3. price each group with the chosen cost criterion;
4. schedule the cheapest group — *how much* of it is scheduled is the only
   difference between the heuristics (one hop, one full path, or full paths
   to all destinations sharing the next machine);
5. update the state and repeat until no satisfiable request has a valid
   next step.

:class:`TreeCache` implements the re-computation optimization the paper
sketches but does not use (§4.5): an item's tree is recomputed only when the
item's own copy set changed or when a booking touched a link/storage
resource on one of the tree's destination paths.  Bookings only ever remove
availability, so an untouched tree's labels remain exact and optimal — the
engine's decisions match the recompute-every-iteration algorithm.
"""

from __future__ import annotations

import abc
import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.scenario import Scenario
from repro.core.schedule import Schedule
from repro.core.state import NetworkState, TransferPlan
from repro.cost.criteria import CostCriterion, CostResult
from repro.cost.weights import EUWeights
from repro.errors import ConfigurationError
from repro.heuristics.candidates import CandidateGroup, enumerate_groups
from repro.observability.profiling import (
    PHASE_BOOKING,
    PHASE_SCORING,
    PHASE_TREE,
    span,
)
from repro.routing.dijkstra import compute_shortest_path_tree
from repro.routing.paths import Hop, ShortestPathTree

logger = logging.getLogger(__name__)


@dataclass
class EngineStats:
    """Instrumentation collected during one heuristic run.

    Attributes:
        iterations: number of outer-loop iterations (scheduled choices).
        dijkstra_runs: number of shortest-path-tree computations.
        hops_booked: number of communication steps booked.
        cache_hits: tree requests answered from the cache.
        elapsed_seconds: wall-clock time of the run.
    """

    iterations: int = 0
    dijkstra_runs: int = 0
    hops_booked: int = 0
    cache_hits: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class HeuristicResult:
    """A finished run: the schedule plus engine instrumentation."""

    schedule: Schedule
    stats: EngineStats


@dataclass
class CacheEntry:
    """A cached tree plus an arbitrary derived payload.

    The payload (the heuristic's scored candidate choice for the item) has
    exactly the same validity as the tree — it is derived from the tree, the
    item's unsatisfied-request set (which only changes with the item
    revision), and run-constant configuration — so it is stored on the entry
    and discarded with it.
    """

    tree: ShortestPathTree
    item_revision: int
    link_revisions: Dict[int, int] = field(default_factory=dict)
    machine_revisions: Dict[int, int] = field(default_factory=dict)
    payload: object = None


class TreeCache:
    """Revision-validated cache of per-item shortest-path trees.

    Args:
        state: the scheduling state trees are computed against.
        stats: instrumentation sink.
        enabled: disable to recompute every tree on every request.
        not_before: wall-clock lower bound forwarded to the routing layer;
            a cache instance is bound to one value (dynamic drivers create
            a fresh cache per re-scheduling pass).
    """

    def __init__(
        self,
        state: NetworkState,
        stats: EngineStats,
        enabled: bool = True,
        not_before: float = 0.0,
    ) -> None:
        self._state = state
        self._stats = stats
        self._enabled = enabled
        self._not_before = not_before
        self._trees: Dict[int, CacheEntry] = {}

    @property
    def not_before(self) -> float:
        """The wall-clock lower bound this cache plans at."""
        return self._not_before

    def tree_for(self, item_id: int) -> ShortestPathTree:
        """The item's current tree, recomputing only when necessary."""
        return self.entry_for(item_id).tree

    def entry_for(self, item_id: int) -> CacheEntry:
        """The item's cache entry, recomputing the tree only when necessary.

        The search early-exits once every unsatisfied destination of the
        item is finalized — labels for other machines are never consulted
        (candidate enumeration and footprints only walk destination paths).
        """
        tracer = self._state.tracer
        cached = self._trees.get(item_id) if self._enabled else None
        if cached is not None and self._is_valid(item_id, cached):
            self._stats.cache_hits += 1
            if tracer.enabled:
                tracer.on_tree_cache(item_id, True)
            return cached
        if tracer.enabled:
            tracer.on_tree_cache(item_id, False)
        with span(PHASE_TREE, tracer):
            targets = {
                request.destination
                for request in self._state.unsatisfied_requests_for_item(
                    item_id
                )
            }
            tree = compute_shortest_path_tree(
                self._state, item_id, targets, not_before=self._not_before
            )
            self._stats.dijkstra_runs += 1
            entry = self._snapshot(item_id, tree)
        if self._enabled:
            self._trees[item_id] = entry
        return entry

    def _is_valid(self, item_id: int, cached: CacheEntry) -> bool:
        state = self._state
        if state.item_revision(item_id) != cached.item_revision:
            return False
        for link_id, revision in cached.link_revisions.items():
            if state.link_revision(link_id) != revision:
                return False
        for machine, revision in cached.machine_revisions.items():
            if state.machine_revision(machine) != revision:
                return False
        return True

    def _snapshot(self, item_id: int, tree: ShortestPathTree) -> CacheEntry:
        state = self._state
        destinations = [
            request.destination
            for request in state.unsatisfied_requests_for_item(item_id)
        ]
        link_ids, machines = tree.footprint(destinations)
        return CacheEntry(
            tree=tree,
            item_revision=state.item_revision(item_id),
            link_revisions={
                link_id: state.link_revision(link_id) for link_id in link_ids
            },
            machine_revisions={
                machine: state.machine_revision(machine)
                for machine in machines
            },
        )


class StagingHeuristic(abc.ABC):
    """Base class of the three Dijkstra-based data staging heuristics.

    Args:
        criterion: the §4.8 cost criterion pricing candidate steps.
        weights: the ``(W_E, W_U)`` pair (ignored by E-U-independent
            criteria such as C3).
        use_tree_cache: disable to force a Dijkstra run per item per
            iteration, exactly as the paper describes (slower, same result).

    Raises:
        ConfigurationError: when the criterion cannot drive this heuristic
            (C1 with the full-path/all-destinations heuristic).
    """

    #: Registry identifier, e.g. ``"partial"``.
    name: str = ""

    #: Label used in the paper's figures, e.g. ``"partial"``.
    figure_label: str = ""

    def __init__(
        self,
        criterion: CostCriterion,
        weights: EUWeights,
        use_tree_cache: bool = True,
    ) -> None:
        if not criterion.supports_all_destinations and self._requires_group_cost():
            raise ConfigurationError(
                f"criterion {criterion.name} does not capture "
                f"multi-destination value and cannot drive {self.name}"
            )
        self._criterion = criterion
        self._weights = weights
        self._use_tree_cache = use_tree_cache

    @property
    def criterion(self) -> CostCriterion:
        """The criterion this heuristic instance schedules with."""
        return self._criterion

    @property
    def weights(self) -> EUWeights:
        """The E-U weights this heuristic instance schedules with."""
        return self._weights

    def label(self) -> str:
        """Human-readable run label, e.g. ``"partial/C4"``."""
        return f"{self.name}/{self._criterion.name}"

    def run(self, scenario: Scenario) -> HeuristicResult:
        """Build a complete schedule for one scenario."""
        started = time.perf_counter()
        stats = EngineStats()
        state = NetworkState(scenario, schedule_name=self.label())
        cache = TreeCache(state, stats, enabled=self._use_tree_cache)
        self.drain(state, cache, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        tracer = state.tracer
        if tracer.enabled:
            tracer.on_run_end(self.label(), stats.elapsed_seconds)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s on %s: %d iterations, %d hops, %d Dijkstra runs "
                "(%d cache hits), %.3fs",
                self.label(),
                scenario.name,
                stats.iterations,
                stats.hops_booked,
                stats.dijkstra_runs,
                stats.cache_hits,
                stats.elapsed_seconds,
            )
        return HeuristicResult(schedule=state.schedule, stats=stats)

    def drain(
        self,
        state: NetworkState,
        cache: TreeCache,
        stats: EngineStats,
        priorities: Optional[FrozenSet[int]] = None,
        request_filter: Optional[Callable[..., bool]] = None,
    ) -> None:
        """Schedule until no (optionally filtered) candidate remains.

        Exposed separately from :meth:`run` so composite schedulers can run
        several passes over one shared state: the §5.4 priority-tier
        baseline filters by ``priorities``, the dynamic driver hides
        unrevealed requests through ``request_filter``.
        """
        debug = logger.isEnabledFor(logging.DEBUG)
        tracer = state.tracer
        tracing = tracer.enabled
        while True:
            decision_started = time.perf_counter() if tracing else 0.0
            choice = self._best_choice(state, cache, priorities, request_filter)
            if choice is None:
                break
            group, result = choice
            stats.iterations += 1
            with span(PHASE_BOOKING, tracer):
                hops = self._execute(state, cache, group, result)
            stats.hops_booked += hops
            if tracing:
                tracer.on_decision(
                    group.item_id,
                    group.next_machine,
                    result.cost,
                    hops,
                    time.perf_counter() - decision_started,
                )
            if debug:
                logger.debug(
                    "iteration %d: item %d via M[%d]->M[%d] "
                    "(cost %.4g, %d hops booked)",
                    stats.iterations,
                    group.item_id,
                    group.first_hop.sender,
                    group.next_machine,
                    result.cost,
                    hops,
                )

    def _best_choice(
        self,
        state: NetworkState,
        cache: TreeCache,
        priorities: Optional[FrozenSet[int]] = None,
        request_filter: Optional[Callable[..., bool]] = None,
    ) -> Optional[Tuple[CandidateGroup, CostResult]]:
        scenario = state.scenario
        best_key = None
        best: Optional[Tuple[CandidateGroup, CostResult]] = None
        for item_id in scenario.requested_item_ids():
            if not state.unsatisfied_requests_for_item(item_id):
                continue
            entry = cache.entry_for(item_id)
            # The item's scored best candidate is derived purely from the
            # tree, the unsatisfied-request set, and run constants, so it
            # is cached on the entry.  The key carries the tier filter by
            # value and the request filter by identity (one filter object
            # per drain pass).
            payload = entry.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != priorities
                or payload[1] is not request_filter
            ):
                payload = (
                    priorities,
                    request_filter,
                    self._score_item(
                        state, item_id, entry.tree, priorities, request_filter
                    ),
                )
                entry.payload = payload
            scored = payload[2]
            if scored is None:
                continue
            key, group, result = scored
            if best_key is None or key < best_key:
                best_key = key
                best = (group, result)
        return best

    def _score_item(
        self,
        state: NetworkState,
        item_id: int,
        tree: ShortestPathTree,
        priorities: Optional[FrozenSet[int]],
        request_filter: Optional[Callable[..., bool]] = None,
    ) -> Optional[Tuple[tuple, CandidateGroup, CostResult]]:
        """The item's cheapest candidate group under the criterion."""
        scenario = state.scenario
        tracer = state.tracer
        tracing = tracer.enabled
        candidates = 0
        best: Optional[Tuple[tuple, CandidateGroup, CostResult]] = None
        with span(PHASE_SCORING, tracer):
            for group in enumerate_groups(
                state,
                item_id,
                tree,
                scenario.weighting,
                priorities,
                request_filter,
            ):
                if tracing:
                    candidates += 1
                result = self._criterion.evaluate(
                    group.evaluations, self._weights
                )
                if result.selected is None:
                    continue
                key = (result.cost,) + group.tie_break_key()
                if best is None or key < best[0]:
                    best = (key, group, result)
        if tracing:
            tracer.on_item_scored(item_id, candidates)
        return best

    def _book_hop(self, state: NetworkState, item_id: int, hop: Hop) -> None:
        """Book one tree hop exactly at its planned times."""
        link = state.scenario.network.link(hop.link_id)
        plan = TransferPlan(
            item_id=item_id,
            link=link,
            start=hop.start,
            end=hop.end,
            release=state.release_time_at(item_id, hop.receiver),
        )
        state.book_transfer(plan)

    def _book_paths(
        self,
        state: NetworkState,
        item_id: int,
        paths: List[Tuple[Hop, ...]],
    ) -> int:
        """Book the union of several tree paths, each shared hop once.

        Tree paths to different destinations share prefixes; hops are
        deduplicated by receiving machine (a tree has one inbound edge per
        machine) and booked in arrival order so every sender already holds
        its copy when its outbound transfer is booked.
        """
        unique: Dict[int, Hop] = {}
        for hops in paths:
            for hop in hops:
                unique.setdefault(hop.receiver, hop)
        ordered = sorted(unique.values(), key=lambda h: (h.end, h.start))
        for hop in ordered:
            self._book_hop(state, item_id, hop)
        return len(ordered)

    @abc.abstractmethod
    def _execute(
        self,
        state: NetworkState,
        cache: TreeCache,
        group: CandidateGroup,
        result: CostResult,
    ) -> int:
        """Schedule the chosen candidate; return the number of hops booked."""

    def _requires_group_cost(self) -> bool:
        """True when the heuristic schedules toward multiple destinations."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(criterion={self._criterion.name})"
