"""The shared scheduling engine behind the three §4.5–§4.7 heuristics.

All three heuristics follow the same outer loop:

1. (re)compute the shortest-path tree of every requested item;
2. enumerate the valid next communication steps (candidate groups);
3. price each group with the chosen cost criterion;
4. schedule the cheapest group — *how much* of it is scheduled is the only
   difference between the heuristics (one hop, one full path, or full paths
   to all destinations sharing the next machine);
5. update the state and repeat until no satisfiable request has a valid
   next step.

:class:`TreeCache` implements the re-computation optimization the paper
sketches but does not use (§4.5), sharpened to interval granularity: an
item's tree is recomputed only when the item's own copy set changed or
when a journalled mutation *provably intersects* the tree's interval
footprint — a booking overlapping a planned hop on a footprint link, a
reservation breaking a planned storage residency, or a cutoff undercutting
a planned completion.  Bookings only ever remove availability, so a tree
that survives the journal replay has labels byte-identical to a fresh
recompute — the engine's decisions match the recompute-every-iteration
algorithm.
"""

from __future__ import annotations

import abc
import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.intervals import Interval
from repro.core.scenario import Scenario
from repro.core.schedule import Schedule
from repro.core.state import (
    MUTATION_BOOKING,
    MUTATION_CUTOFF,
    NetworkState,
    TransferPlan,
)
from repro.cost.criteria import CostCriterion, CostResult
from repro.cost.weights import EUWeights
from repro.errors import ConfigurationError
from repro.heuristics.candidates import CandidateGroup, enumerate_groups
from repro.observability.profiling import (
    PHASE_BOOKING,
    PHASE_SCORING,
    PHASE_TREE,
    span,
)
from repro.observability.tracer import (
    TREE_CACHE_BANDWIDTH_DEGRADED,
    TREE_CACHE_CAPACITY_RELEASED,
    TREE_CACHE_CLEAN,
    TREE_CACHE_COLD,
    TREE_CACHE_CUTOFF_TIGHTENED,
    TREE_CACHE_DISABLED,
    TREE_CACHE_ITEM_CHANGED,
    TREE_CACHE_LINK_CONFLICT,
    TREE_CACHE_RESIDENCY_CONFLICT,
    TREE_CACHE_REVALIDATED,
)
from repro.routing.dijkstra import compute_shortest_path_tree
from repro.routing.paths import Hop, ShortestPathTree

logger = logging.getLogger(__name__)


@dataclass
class EngineStats:
    """Instrumentation collected during one heuristic run.

    Attributes:
        iterations: number of outer-loop iterations (scheduled choices).
        dijkstra_runs: number of shortest-path-tree computations.
        hops_booked: number of communication steps booked.
        cache_hits: tree requests answered from the cache (clean hits
            plus revalidated keeps).
        revalidations: the subset of ``cache_hits`` where mutations had
            occurred but the journal scan proved they miss the tree's
            footprint (the incremental-revalidation win).
        elapsed_seconds: wall-clock time of the run.
    """

    iterations: int = 0
    dijkstra_runs: int = 0
    hops_booked: int = 0
    cache_hits: int = 0
    revalidations: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class HeuristicResult:
    """A finished run: the schedule plus engine instrumentation."""

    schedule: Schedule
    stats: EngineStats


@dataclass
class CacheEntry:
    """A cached tree, its interval footprint, and a derived payload.

    The footprint records *when* the tree relies on each resource, not
    just *which* resources it touches: per footprint link the planned
    transfer interval, per receiving machine the planned storage
    residency.  Revalidation replays the state's mutation journal against
    these intervals to decide whether a mutation could have altered any
    earliest-arrival label.

    The payload (the heuristic's scored candidate choice for the item) has
    exactly the same validity as the tree — it is derived from the tree, the
    item's unsatisfied-request set (which only changes with the item
    revision), and run-constant configuration — so it is stored on the entry
    and discarded with it.

    Attributes:
        tree: the cached shortest-path tree.
        item_revision: the item's revision at snapshot time (covers seeds
            and the unsatisfied-destination target set).
        journal_position: how much of the state's mutation journal the
            entry has been validated against; advanced on every
            successful revalidation.
        capacity_epoch: the state's capacity epoch at snapshot time
            (capacity-adding mutations invalidate globally).
        degradation_epoch: the state's bandwidth-degradation epoch at
            snapshot time (degradations change durations globally and are
            not journalled, so they too invalidate globally).
        hop_intervals: planned transfer interval per footprint link id.
        residencies: planned storage residency per receiving machine.
        item_size: the routed item's size in bytes (for residency
            rechecks).
        payload: the heuristic's cached scored choice (see above).
    """

    tree: ShortestPathTree
    item_revision: int
    journal_position: int
    capacity_epoch: int
    degradation_epoch: int = 0
    hop_intervals: Dict[int, Interval] = field(default_factory=dict)
    residencies: Dict[int, Interval] = field(default_factory=dict)
    item_size: float = 0.0
    payload: object = None


class TreeCache:
    """Journal-revalidated cache of per-item shortest-path trees.

    Coarse revision counters answer the cheap question ("did *anything*
    about this item change?"); when unrelated mutations have occurred the
    cache does not recompute immediately but replays the state's mutation
    journal against the entry's interval footprint: a booking invalidates
    only when its busy interval overlaps a planned hop on a footprint
    link, or when its storage reservation breaks a planned residency; a
    cutoff only when it undercuts a planned hop's completion.  Bookings
    only ever remove availability, so a tree that survives the replay has
    byte-identical labels and parent pointers along every destination
    path — the engine's decisions match the recompute-every-iteration
    algorithm exactly (pinned by the differential test suites).

    The cache binds to its state's :attr:`~repro.core.state.NetworkState
    .epoch` token at construction; serving a different state — whose
    revision counters may have restarted from zero (``clone()``) — raises
    :class:`~repro.errors.ConfigurationError` instead of silently
    validating stale trees.

    Args:
        state: the scheduling state trees are computed against.
        stats: instrumentation sink.
        enabled: disable to recompute every tree on every request.
        not_before: wall-clock lower bound forwarded to the routing layer;
            a cache instance is bound to one value (dynamic drivers create
            a fresh cache per re-scheduling pass).
        use_compiled: forwarded to the routing layer — run the
            array-backed kernel (default) or the reference object loop.
    """

    def __init__(
        self,
        state: NetworkState,
        stats: EngineStats,
        enabled: bool = True,
        not_before: float = 0.0,
        use_compiled: bool = True,
    ) -> None:
        self._state = state
        self._stats = stats
        self._enabled = enabled
        self._not_before = not_before
        self._use_compiled = use_compiled
        self._epoch = state.epoch
        self._trees: Dict[int, CacheEntry] = {}

    @property
    def not_before(self) -> float:
        """The wall-clock lower bound this cache plans at."""
        return self._not_before

    @property
    def epoch(self) -> int:
        """The identity token of the state this cache is bound to."""
        return self._epoch

    def ensure_bound(self, state: NetworkState) -> None:
        """Assert the cache was built for exactly this state.

        Raises:
            ConfigurationError: when ``state`` is a different object (for
                example a ``clone()``) than the one the cache was
                constructed with — its revision counters restarted from
                zero, so cached trees would silently validate against the
                wrong resources.
        """
        if state.epoch != self._epoch:
            raise ConfigurationError(
                f"TreeCache is bound to state epoch {self._epoch} but was "
                f"asked to serve state epoch {state.epoch}; caches do not "
                f"survive clone() — build a fresh TreeCache for the new "
                f"state"
            )

    def tree_for(self, item_id: int) -> ShortestPathTree:
        """The item's current tree, recomputing only when necessary."""
        return self.entry_for(item_id).tree

    def entry_for(self, item_id: int) -> CacheEntry:
        """The item's cache entry, recomputing the tree only when necessary.

        The search early-exits once every unsatisfied destination of the
        item is finalized — labels for other machines are never consulted
        (candidate enumeration and footprints only walk destination paths).
        """
        tracer = self._state.tracer
        cached = self._trees.get(item_id) if self._enabled else None
        reason = self._validity(item_id, cached)
        if cached is not None and reason in (
            TREE_CACHE_CLEAN,
            TREE_CACHE_REVALIDATED,
        ):
            self._stats.cache_hits += 1
            if reason == TREE_CACHE_REVALIDATED:
                self._stats.revalidations += 1
            if tracer.enabled:
                tracer.on_tree_cache(item_id, True, reason)
            return cached
        if tracer.enabled:
            tracer.on_tree_cache(item_id, False, reason)
        with span(PHASE_TREE, tracer):
            targets = {
                request.destination
                for request in self._state.unsatisfied_requests_for_item(
                    item_id
                )
            }
            tree = compute_shortest_path_tree(
                self._state,
                item_id,
                targets,
                not_before=self._not_before,
                use_compiled=self._use_compiled,
            )
            self._stats.dijkstra_runs += 1
            entry = self._snapshot(item_id, tree)
        if self._enabled:
            self._trees[item_id] = entry
        return entry

    def _validity(self, item_id: int, cached: Optional[CacheEntry]) -> str:
        """Classify the entry: a hit/keep reason or the recompute cause."""
        if not self._enabled:
            return TREE_CACHE_DISABLED
        if cached is None:
            return TREE_CACHE_COLD
        state = self._state
        if state.item_revision(item_id) != cached.item_revision:
            return TREE_CACHE_ITEM_CHANGED
        if state.capacity_epoch != cached.capacity_epoch:
            return TREE_CACHE_CAPACITY_RELEASED
        if state.degradation_epoch != cached.degradation_epoch:
            # Degradations lengthen durations globally and are not
            # journalled, so no footprint replay can vouch for the tree.
            return TREE_CACHE_BANDWIDTH_DEGRADED
        journal_size = state.journal_length()
        if journal_size == cached.journal_position:
            return TREE_CACHE_CLEAN
        return self._revalidate(cached, journal_size)

    def _revalidate(self, cached: CacheEntry, journal_size: int) -> str:
        """Replay journalled mutations against the entry's footprint.

        A kept tree is *provably* byte-identical to a recompute: bookings
        and cutoffs only remove availability, every planned hop still
        fits at exactly its planned time (link slot free, residency
        reservable, cutoff clear), and competing offers can only have
        worsened — so the label-setting search reconstructs the same
        parents with the same tie-breaks.
        """
        state = self._state
        hop_intervals = cached.hop_intervals
        residencies = cached.residencies
        # Receiving machines whose storage gained a reservation that
        # overlaps a planned residency; rechecked against the live
        # timeline after the scan (reservations only subtract, so a
        # passing recheck proves the planned start is still the earliest).
        suspect_machines = set()
        for record in state.journal_since(cached.journal_position):
            if record.kind == MUTATION_BOOKING:
                planned = hop_intervals.get(record.link_id)
                if (
                    planned is not None
                    and record.busy is not None
                    and record.busy.overlaps(planned)
                ):
                    return TREE_CACHE_LINK_CONFLICT
                planned_residency = residencies.get(record.machine)
                if (
                    planned_residency is not None
                    and record.residency is not None
                    and record.residency.overlaps(planned_residency)
                ):
                    suspect_machines.add(record.machine)
            elif record.kind == MUTATION_CUTOFF:
                planned = hop_intervals.get(record.link_id)
                if planned is not None and record.cutoff < planned.end:
                    return TREE_CACHE_CUTOFF_TIGHTENED
        for machine in sorted(suspect_machines):
            timeline = state.machine_timeline(machine)
            if not timeline.can_reserve(
                cached.item_size, residencies[machine]
            ):
                return TREE_CACHE_RESIDENCY_CONFLICT
        cached.journal_position = journal_size
        return TREE_CACHE_REVALIDATED

    def _snapshot(self, item_id: int, tree: ShortestPathTree) -> CacheEntry:
        state = self._state
        destinations = [
            request.destination
            for request in state.unsatisfied_requests_for_item(item_id)
        ]
        hops = tree.destination_hops(destinations)
        return CacheEntry(
            tree=tree,
            item_revision=state.item_revision(item_id),
            journal_position=state.journal_length(),
            capacity_epoch=state.capacity_epoch,
            degradation_epoch=state.degradation_epoch,
            hop_intervals={
                hop.link_id: Interval(hop.start, hop.end)
                for hop in hops.values()
            },
            residencies={
                receiver: Interval(
                    hop.start, state.release_time_at(item_id, receiver)
                )
                for receiver, hop in hops.items()
            },
            item_size=state.scenario.item(item_id).size,
        )


class StagingHeuristic(abc.ABC):
    """Base class of the three Dijkstra-based data staging heuristics.

    Args:
        criterion: the §4.8 cost criterion pricing candidate steps.
        weights: the ``(W_E, W_U)`` pair (ignored by E-U-independent
            criteria such as C3).
        use_tree_cache: disable to force a Dijkstra run per item per
            iteration, exactly as the paper describes (slower, same result).
        use_compiled: disable to run the reference object-walking routing
            kernel instead of the array-backed compiled one (slower, same
            result — pinned by the compiled differential suite).

    Raises:
        ConfigurationError: when the criterion cannot drive this heuristic
            (C1 with the full-path/all-destinations heuristic).
    """

    #: Registry identifier, e.g. ``"partial"``.
    name: str = ""

    #: Label used in the paper's figures, e.g. ``"partial"``.
    figure_label: str = ""

    def __init__(
        self,
        criterion: CostCriterion,
        weights: EUWeights,
        use_tree_cache: bool = True,
        use_compiled: bool = True,
    ) -> None:
        if not criterion.supports_all_destinations and self._requires_group_cost():
            raise ConfigurationError(
                f"criterion {criterion.name} does not capture "
                f"multi-destination value and cannot drive {self.name}"
            )
        self._criterion = criterion
        self._weights = weights
        self._use_tree_cache = use_tree_cache
        self._use_compiled = use_compiled

    @property
    def criterion(self) -> CostCriterion:
        """The criterion this heuristic instance schedules with."""
        return self._criterion

    @property
    def weights(self) -> EUWeights:
        """The E-U weights this heuristic instance schedules with."""
        return self._weights

    def label(self) -> str:
        """Human-readable run label, e.g. ``"partial/C4"``."""
        return f"{self.name}/{self._criterion.name}"

    def run(self, scenario: Scenario) -> HeuristicResult:
        """Build a complete schedule for one scenario."""
        started = time.perf_counter()
        stats = EngineStats()
        state = NetworkState(scenario, schedule_name=self.label())
        cache = TreeCache(
            state,
            stats,
            enabled=self._use_tree_cache,
            use_compiled=self._use_compiled,
        )
        self.drain(state, cache, stats)
        stats.elapsed_seconds = time.perf_counter() - started
        tracer = state.tracer
        if tracer.enabled:
            tracer.on_run_end(self.label(), stats.elapsed_seconds)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s on %s: %d iterations, %d hops, %d Dijkstra runs "
                "(%d cache hits), %.3fs",
                self.label(),
                scenario.name,
                stats.iterations,
                stats.hops_booked,
                stats.dijkstra_runs,
                stats.cache_hits,
                stats.elapsed_seconds,
            )
        return HeuristicResult(schedule=state.schedule, stats=stats)

    def drain(
        self,
        state: NetworkState,
        cache: TreeCache,
        stats: EngineStats,
        priorities: Optional[FrozenSet[int]] = None,
        request_filter: Optional[Callable[..., bool]] = None,
    ) -> None:
        """Schedule until no (optionally filtered) candidate remains.

        Exposed separately from :meth:`run` so composite schedulers can run
        several passes over one shared state: the §5.4 priority-tier
        baseline filters by ``priorities``, the dynamic driver hides
        unrevealed requests through ``request_filter``.

        Raises:
            ConfigurationError: when ``cache`` was built for a different
                state than ``state`` (e.g. the parent of a ``clone()``).
        """
        cache.ensure_bound(state)
        debug = logger.isEnabledFor(logging.DEBUG)
        tracer = state.tracer
        tracing = tracer.enabled
        while True:
            decision_started = time.perf_counter() if tracing else 0.0
            choice = self._best_choice(state, cache, priorities, request_filter)
            if choice is None:
                break
            group, result = choice
            stats.iterations += 1
            with span(PHASE_BOOKING, tracer):
                hops = self._execute(state, cache, group, result)
            stats.hops_booked += hops
            if tracing:
                tracer.on_decision(
                    group.item_id,
                    group.next_machine,
                    result.cost,
                    hops,
                    time.perf_counter() - decision_started,
                )
            if debug:
                logger.debug(
                    "iteration %d: item %d via M[%d]->M[%d] "
                    "(cost %.4g, %d hops booked)",
                    stats.iterations,
                    group.item_id,
                    group.first_hop.sender,
                    group.next_machine,
                    result.cost,
                    hops,
                )

    def _best_choice(
        self,
        state: NetworkState,
        cache: TreeCache,
        priorities: Optional[FrozenSet[int]] = None,
        request_filter: Optional[Callable[..., bool]] = None,
    ) -> Optional[Tuple[CandidateGroup, CostResult]]:
        scenario = state.scenario
        best_key = None
        best: Optional[Tuple[CandidateGroup, CostResult]] = None
        for item_id in scenario.requested_item_ids():
            if not state.unsatisfied_requests_for_item(item_id):
                continue
            entry = cache.entry_for(item_id)
            # The item's scored best candidate is derived purely from the
            # tree, the unsatisfied-request set, and run constants, so it
            # is cached on the entry.  The key carries the tier filter by
            # value and the request filter by identity (one filter object
            # per drain pass).
            payload = entry.payload
            if (
                not isinstance(payload, tuple)
                or len(payload) != 3
                or payload[0] != priorities
                or payload[1] is not request_filter
            ):
                payload = (
                    priorities,
                    request_filter,
                    self._score_item(
                        state, item_id, entry.tree, priorities, request_filter
                    ),
                )
                entry.payload = payload
            scored = payload[2]
            if scored is None:
                continue
            key, group, result = scored
            if best_key is None or key < best_key:
                best_key = key
                best = (group, result)
        return best

    def _score_item(
        self,
        state: NetworkState,
        item_id: int,
        tree: ShortestPathTree,
        priorities: Optional[FrozenSet[int]],
        request_filter: Optional[Callable[..., bool]] = None,
    ) -> Optional[Tuple[tuple, CandidateGroup, CostResult]]:
        """The item's cheapest candidate group under the criterion."""
        scenario = state.scenario
        tracer = state.tracer
        tracing = tracer.enabled
        candidates = 0
        best: Optional[Tuple[tuple, CandidateGroup, CostResult]] = None
        with span(PHASE_SCORING, tracer):
            for group in enumerate_groups(
                state,
                item_id,
                tree,
                scenario.weighting,
                priorities,
                request_filter,
            ):
                if tracing:
                    candidates += 1
                result = self._criterion.evaluate(
                    group.evaluations, self._weights
                )
                if result.selected is None:
                    continue
                key = (result.cost,) + group.tie_break_key()
                if best is None or key < best[0]:
                    best = (key, group, result)
        if tracing:
            tracer.on_item_scored(item_id, candidates)
        return best

    def _book_hop(self, state: NetworkState, item_id: int, hop: Hop) -> None:
        """Book one tree hop exactly at its planned times."""
        link = state.scenario.network.link(hop.link_id)
        plan = TransferPlan(
            item_id=item_id,
            link=link,
            start=hop.start,
            end=hop.end,
            release=state.release_time_at(item_id, hop.receiver),
        )
        state.book_transfer(plan)

    def _book_paths(
        self,
        state: NetworkState,
        item_id: int,
        paths: List[Tuple[Hop, ...]],
    ) -> int:
        """Book the union of several tree paths, each shared hop once.

        Tree paths to different destinations share prefixes; hops are
        deduplicated by receiving machine (a tree has one inbound edge per
        machine) and booked in arrival order so every sender already holds
        its copy when its outbound transfer is booked.
        """
        unique: Dict[int, Hop] = {}
        for hops in paths:
            for hop in hops:
                unique.setdefault(hop.receiver, hop)
        ordered = sorted(unique.values(), key=lambda h: (h.end, h.start))
        for hop in ordered:
            self._book_hop(state, item_id, hop)
        return len(ordered)

    @abc.abstractmethod
    def _execute(
        self,
        state: NetworkState,
        cache: TreeCache,
        group: CandidateGroup,
        result: CostResult,
    ) -> int:
        """Schedule the chosen candidate; return the number of hops booked."""

    def _requires_group_cost(self) -> bool:
        """True when the heuristic schedules toward multiple destinations."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(criterion={self._criterion.name})"
