"""Enumeration of valid next communication steps (paper §4.3).

After the shortest-path trees of all requested items are (re)computed, the
*valid next communication steps* are, for each item ``Rq[i]``, the first
hops of the tree paths leading to unsatisfied, still-reachable destinations.
Destinations sharing the same next machine ``M[r]`` form the paper's
``Drq[i,r]`` set; each such set — together with the concrete first hop and
the §4.8 destination evaluations — is one :class:`CandidateGroup` that the
cost criteria price and the heuristics schedule.

Enumeration is *dirty-set driven*: the engine caches each item's scored
groups on its :class:`~repro.heuristics.base.CacheEntry`, so this module
only runs again for items whose trees were actually recomputed — items
whose cached trees survived journal revalidation keep their scored
candidates untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.priority import PriorityWeighting
from repro.core.state import NetworkState
from repro.cost.terms import DestinationEvaluation, evaluate_destination
from repro.routing.paths import Hop, ShortestPathTree


@dataclass(frozen=True)
class CandidateGroup:
    """One valid next communication step and the destinations it serves.

    Attributes:
        item_id: the data item to move.
        next_machine: the paper's ``M[r]`` — receiver of the first hop.
        first_hop: the concrete transfer (sender, link, planned times).
        evaluations: §4.8 terms for every unsatisfied destination whose
            current shortest path starts with ``first_hop`` (the ``Drq[i,r]``
            set), ordered by request id.
    """

    item_id: int
    next_machine: int
    first_hop: Hop
    evaluations: Tuple[DestinationEvaluation, ...]

    @property
    def has_satisfiable_destination(self) -> bool:
        """True when scheduling this step can help at least one request."""
        return any(e.satisfiable for e in self.evaluations)

    def satisfiable_evaluations(self) -> Tuple[DestinationEvaluation, ...]:
        """The subset of evaluations with ``Sat = 1``."""
        return tuple(e for e in self.evaluations if e.satisfiable)

    def tie_break_key(self) -> Tuple[int, int, int]:
        """Deterministic ordering key used when costs tie."""
        return (self.item_id, self.next_machine, self.first_hop.link_id)


def enumerate_groups(
    state: NetworkState,
    item_id: int,
    tree: ShortestPathTree,
    weighting: PriorityWeighting,
    priorities: Optional[FrozenSet[int]] = None,
    request_filter: Optional[Callable[..., bool]] = None,
) -> Tuple[CandidateGroup, ...]:
    """Build the ``Drq[i,r]`` candidate groups for one item.

    Only groups containing at least one *satisfiable* destination are
    returned — per §4.8, a step whose every destination misses its deadline
    receives no resources.

    Args:
        state: current scheduling state (supplies unsatisfied requests).
        item_id: the item whose tree is being expanded.
        tree: the item's up-to-date shortest-path tree.
        weighting: the scenario's priority weighting.
        priorities: when given, only requests of these priority classes are
            considered (used by the §5.4 priority-tier baseline).
        request_filter: arbitrary additional predicate over requests (used
            by the dynamic driver to hide not-yet-revealed requests).
    """
    grouped: Dict[int, List[DestinationEvaluation]] = {}
    first_hops: Dict[int, Hop] = {}
    for request in state.unsatisfied_requests_for_item(item_id):
        if priorities is not None and request.priority not in priorities:
            continue
        if request_filter is not None and not request_filter(request):
            continue
        if not tree.is_reachable(request.destination):
            continue
        path = tree.path_to(request.destination)
        if path is None or not path.hops:
            # Unreachable, or the destination already holds a (late) copy:
            # either way there is no communication step to schedule for it.
            continue
        hop = path.hops[0]
        evaluation = evaluate_destination(request, tree, weighting)
        grouped.setdefault(hop.receiver, []).append(evaluation)
        first_hops[hop.receiver] = hop
    groups = []
    for next_machine in sorted(grouped):
        evaluations = tuple(
            sorted(
                grouped[next_machine],
                key=lambda e: e.request.request_id,
            )
        )
        group = CandidateGroup(
            item_id=item_id,
            next_machine=next_machine,
            first_hop=first_hops[next_machine],
            evaluations=evaluations,
        )
        if group.has_satisfiable_destination:
            groups.append(group)
    return tuple(groups)
