"""The full path / all destinations heuristic (paper §4.7).

Builds on the full path / one destination heuristic: when a candidate group
is chosen, the paths to *every* satisfiable destination in ``Drq[i,r]`` —
all of which share the next machine ``M[r]`` as their first hop — are booked
at once.  Fewer Dijkstra executions are needed than for the other two
heuristics, at the price of committing more transfers per cost evaluation.

``Cost1`` cannot drive this heuristic because it prices a single
destination and "does not capture the fact that a data item can be sent to
multiple destinations" (§4.8); constructing the combination raises
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

from repro.core.state import NetworkState
from repro.cost.criteria import CostResult
from repro.errors import SchedulingError
from repro.heuristics.base import StagingHeuristic, TreeCache
from repro.heuristics.candidates import CandidateGroup


class FullPathAllDestinationsHeuristic(StagingHeuristic):
    """Schedule paths to every satisfiable destination sharing ``M[r]``."""

    name = "full_all"
    figure_label = "full_all"

    def _execute(
        self,
        state: NetworkState,
        cache: TreeCache,
        group: CandidateGroup,
        result: CostResult,
    ) -> int:
        tree = cache.tree_for(group.item_id)
        paths = []
        for evaluation in group.satisfiable_evaluations():
            destination = evaluation.request.destination
            path = tree.path_to(destination)
            if path is None or not path.hops:
                raise SchedulingError(
                    f"satisfiable destination M[{destination}] has no path "
                    f"for item {group.item_id}"
                )
            paths.append(path.hops)
        if not paths:
            raise SchedulingError(
                "full_all chose a group without satisfiable destinations"
            )
        return self._book_paths(state, group.item_id, paths)

    def _requires_group_cost(self) -> bool:
        return True
