"""The full path / one destination heuristic (paper §4.6).

Once a candidate group is chosen, *all* hops needed to carry the data item
to the group's selected destination are booked before Dijkstra runs again.
This avoids the partial path heuristic's pathology of half-built paths that
block other items, at the price of committing a whole path based on one
cost evaluation.

For ``Cost1`` the selected destination is the one whose per-destination
cost priced the group; for the grouped criteria (C2–C4) it is the most
urgent satisfiable destination in ``Drq[i,r]`` (see DESIGN.md §4, decision
6).
"""

from __future__ import annotations

from repro.core.state import NetworkState
from repro.cost.criteria import CostResult
from repro.errors import SchedulingError
from repro.heuristics.base import StagingHeuristic, TreeCache
from repro.heuristics.candidates import CandidateGroup


class FullPathOneDestinationHeuristic(StagingHeuristic):
    """Schedule the whole path to the chosen destination per iteration."""

    name = "full_one"
    figure_label = "full_one"

    def _execute(
        self,
        state: NetworkState,
        cache: TreeCache,
        group: CandidateGroup,
        result: CostResult,
    ) -> int:
        if result.selected is None:
            raise SchedulingError(
                "full_one chose a group without a satisfiable destination"
            )
        tree = cache.tree_for(group.item_id)
        destination = result.selected.request.destination
        path = tree.path_to(destination)
        if path is None or not path.hops:
            raise SchedulingError(
                f"selected destination M[{destination}] has no path for item "
                f"{group.item_id}"
            )
        return self._book_paths(state, group.item_id, [path.hops])
