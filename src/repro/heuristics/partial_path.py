"""The partial path heuristic (paper §4.5).

Each iteration schedules exactly one hop: the data item of the cheapest
candidate group is moved one machine further along its shortest path, the
receiving machine becomes an additional source of the item, and every
shortest-path tree affected by the booking is recomputed before the next
choice.  A partial path that later becomes blocked is left in place (the
transfers were justified when booked, and in a dynamic system the request
might become satisfiable again).
"""

from __future__ import annotations

from repro.core.state import NetworkState
from repro.cost.criteria import CostResult
from repro.heuristics.base import StagingHeuristic, TreeCache
from repro.heuristics.candidates import CandidateGroup


class PartialPathHeuristic(StagingHeuristic):
    """Schedule the single most valuable next hop per iteration."""

    name = "partial"
    figure_label = "partial"

    def _execute(
        self,
        state: NetworkState,
        cache: TreeCache,
        group: CandidateGroup,
        result: CostResult,
    ) -> int:
        self._book_hop(state, group.item_id, group.first_hop)
        return 1
