"""Name-based construction of heuristic/criterion pairs.

The simulation study refers to schedulers as ``"partial/C4"`` etc.; this
module maps those names to configured :class:`StagingHeuristic` instances
and enumerates the eleven valid pairings of the paper (twelve combinations
minus ``full_all/C1``, which the paper excludes by design).
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

from repro.cost.criteria import CostCriterion, get_criterion
from repro.cost.weights import EUWeights, as_weights
from repro.errors import ConfigurationError
from repro.heuristics.base import StagingHeuristic
from repro.heuristics.full_path_all import FullPathAllDestinationsHeuristic
from repro.heuristics.full_path_one import FullPathOneDestinationHeuristic
from repro.heuristics.partial_path import PartialPathHeuristic

_HEURISTICS: Dict[str, Type[StagingHeuristic]] = {
    cls.name: cls
    for cls in (
        PartialPathHeuristic,
        FullPathOneDestinationHeuristic,
        FullPathAllDestinationsHeuristic,
    )
}


def heuristic_names() -> Tuple[str, ...]:
    """The registered heuristic names, in the paper's presentation order."""
    return ("partial", "full_one", "full_all")


def make_heuristic(
    heuristic: str,
    criterion: Union[str, CostCriterion] = "C4",
    weights: Union[float, EUWeights] = 0.0,
    use_tree_cache: bool = True,
    use_compiled: bool = True,
) -> StagingHeuristic:
    """Build a configured heuristic by name.

    Args:
        heuristic: ``"partial"``, ``"full_one"``, or ``"full_all"``.
        criterion: a criterion name (``"C1"``..``"C4"``) or instance.
        weights: an :class:`EUWeights` pair or a raw ``log10(W_E/W_U)``.
        use_tree_cache: forwarded to the heuristic (see
            :class:`~repro.heuristics.base.StagingHeuristic`).
        use_compiled: forwarded to the heuristic — run the array-backed
            routing kernel (default) or the reference object loop.

    Raises:
        ConfigurationError: for unknown names or invalid pairings
            (``full_all`` with ``C1``).
    """
    key = heuristic.lower()
    if key not in _HEURISTICS:
        raise ConfigurationError(
            f"unknown heuristic {heuristic!r}; known: {heuristic_names()}"
        )
    if isinstance(criterion, str):
        criterion = get_criterion(criterion)
    return _HEURISTICS[key](
        criterion=criterion,
        weights=as_weights(weights),
        use_tree_cache=use_tree_cache,
        use_compiled=use_compiled,
    )


def paper_pairings() -> Tuple[Tuple[str, str], ...]:
    """The eleven heuristic/criterion pairs evaluated in the paper.

    The criterion set is fixed to the paper's C1–C4 (user-registered
    criteria are deliberately not included), and ``full_all``/``C1`` is
    excluded: C1 cannot express multi-destination value (§4.8/§5.4).
    """
    pairs = []
    for heuristic in heuristic_names():
        for criterion in ("C1", "C2", "C3", "C4"):
            if heuristic == "full_all" and criterion == "C1":
                continue
            pairs.append((heuristic, criterion))
    return tuple(pairs)
