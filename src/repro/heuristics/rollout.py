"""Rollout (one-step lookahead) scheduling on top of the paper heuristics.

The paper's heuristics pick each communication step by a *myopic* cost
criterion.  A classic strengthening is the rollout policy: for each of the
top-k candidate steps, simulate booking it and completing the schedule
with the greedy base heuristic, then commit to the candidate whose
*finished* schedule scores best.  One-step lookahead with a greedy
completion can never do worse than the greedy base policy when the base
policy's own first choice is among the candidates evaluated — which it
always is here (the beam is seeded with the criterion's best step).

Cost: every scheduling decision runs up to ``beam_width`` full greedy
completions, so the rollout scheduler is two to three orders of magnitude
slower than its base heuristic.  It is an *extension* intended for small
instances and for quantifying how much headroom the myopic criteria leave
(see ``benchmarks/bench_rollout.py``).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple, Union

from repro.core.evaluation import evaluate_satisfied
from repro.core.scenario import Scenario
from repro.core.state import NetworkState, TransferPlan
from repro.cost.criteria import CostCriterion
from repro.cost.weights import EUWeights
from repro.errors import ConfigurationError, SchedulingError
from repro.heuristics.base import EngineStats, HeuristicResult, TreeCache
from repro.heuristics.candidates import CandidateGroup, enumerate_groups
from repro.heuristics.registry import make_heuristic
from repro.routing.dijkstra import compute_shortest_path_tree


class RolloutScheduler:
    """One-step lookahead over a greedy base heuristic.

    Args:
        heuristic: base heuristic registry name (used both to complete
            rollout simulations and to execute the committed step).
        criterion: criterion name or instance pricing candidate steps.
        weights: E-U weights or raw ``log10`` ratio.
        beam_width: number of cheapest candidate steps simulated per
            decision (1 reduces to the base heuristic, just slower).
    """

    name = "rollout"

    def __init__(
        self,
        heuristic: str = "full_one",
        criterion: Union[str, CostCriterion] = "C4",
        weights: Union[float, EUWeights] = 2.0,
        beam_width: int = 3,
    ) -> None:
        if beam_width < 1:
            raise ConfigurationError(
                f"beam_width must be >= 1, got {beam_width}"
            )
        self._inner = make_heuristic(
            heuristic, criterion=criterion, weights=weights
        )
        self._beam_width = beam_width

    def label(self) -> str:
        """Run label, e.g. ``"rollout(full_one/C4, k=3)"``."""
        return f"rollout({self._inner.label()}, k={self._beam_width})"

    def run(self, scenario: Scenario) -> HeuristicResult:
        """Build a schedule with one greedy completion per beam candidate."""
        started = time.perf_counter()
        stats = EngineStats()
        state = NetworkState(scenario, schedule_name=self.label())
        while True:
            beam = self._beam(state, stats)
            if not beam:
                break
            stats.iterations += 1
            chosen = self._choose(scenario, state, beam, stats)
            stats.hops_booked += self._commit(state, chosen)
        stats.elapsed_seconds = time.perf_counter() - started
        return HeuristicResult(schedule=state.schedule, stats=stats)

    # -- internals ----------------------------------------------------------

    def _beam(
        self, state: NetworkState, stats: EngineStats
    ) -> List[CandidateGroup]:
        """The ``beam_width`` cheapest candidate groups, best first."""
        scenario = state.scenario
        cache = TreeCache(state, stats, enabled=True)
        scored: List[Tuple[tuple, CandidateGroup]] = []
        for item_id in scenario.requested_item_ids():
            if not state.unsatisfied_requests_for_item(item_id):
                continue
            tree = cache.tree_for(item_id)
            for group in enumerate_groups(
                state, item_id, tree, scenario.weighting
            ):
                result = self._inner.criterion.evaluate(
                    group.evaluations, self._inner.weights
                )
                if result.selected is None:
                    continue
                key = (result.cost,) + group.tie_break_key()
                scored.append((key, group))
        scored.sort(key=lambda pair: pair[0])
        return [group for __, group in scored[: self._beam_width]]

    def _choose(
        self,
        scenario: Scenario,
        state: NetworkState,
        beam: List[CandidateGroup],
        stats: EngineStats,
    ) -> CandidateGroup:
        """Simulate each beam candidate to completion; keep the best."""
        if len(beam) == 1:
            return beam[0]
        best_group: Optional[CandidateGroup] = None
        best_value = float("-inf")
        for group in beam:
            simulation = state.clone()
            self._commit(simulation, group)
            sim_stats = EngineStats()
            sim_cache = TreeCache(simulation, sim_stats, enabled=True)
            self._inner.drain(simulation, sim_cache, sim_stats)
            stats.dijkstra_runs += sim_stats.dijkstra_runs
            value = evaluate_satisfied(
                scenario, simulation.satisfied_request_ids()
            ).weighted_sum
            if value > best_value:
                best_value = value
                best_group = group
        assert best_group is not None
        return best_group

    def _commit(self, state: NetworkState, group: CandidateGroup) -> int:
        """Book the full path to the group's selected destination."""
        result = self._inner.criterion.evaluate(
            group.evaluations, self._inner.weights
        )
        if result.selected is None:
            raise SchedulingError(
                "rollout committed a group without satisfiable destinations"
            )
        destination = result.selected.request.destination
        tree = compute_shortest_path_tree(
            state, group.item_id, targets={destination}
        )
        path = tree.path_to(destination)
        if path is None or not path.hops:
            raise SchedulingError(
                f"no path to committed destination M[{destination}] for "
                f"item {group.item_id}"
            )
        network = state.scenario.network
        for hop in path.hops:
            state.book_transfer(
                TransferPlan(
                    item_id=group.item_id,
                    link=network.link(hop.link_id),
                    start=hop.start,
                    end=hop.end,
                    release=state.release_time_at(
                        group.item_id, hop.receiver
                    ),
                )
            )
        return len(path.hops)
