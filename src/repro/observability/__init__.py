"""Lightweight, zero-dependency tracing and metrics for the scheduler core.

The subsystem has three layers:

* :mod:`repro.observability.tracer` — the :class:`Tracer` hook protocol the
  scheduler core calls into.  The default :class:`NullTracer` keeps every
  hot path allocation-free (one ``tracer.enabled`` branch per event site);
  :class:`RecordingTracer` materializes events in memory,
  :class:`JsonlTracer` streams them to disk, and :class:`TeeTracer` fans
  one event stream out to several sinks.
* :mod:`repro.observability.metrics` — :class:`MetricsCollector`, a tracer
  that aggregates events into counters/timings, and the serializable
  :class:`RunMetrics` aggregate it produces.
* :mod:`repro.observability.profiling` — the ``span(...)`` context manager
  phase profiler and :class:`ProfileCollector`, a tracer that folds span
  events into a hierarchical, mergeable :class:`Profile`.
* :mod:`repro.observability.report` — plain-text rendering of per-scheduler
  summaries and link-utilization tables from collected metrics.
* :mod:`repro.observability.timeline` — :class:`TimelineCollector`, a
  tracer that folds the event stream into a mergeable, schema-versioned
  simulated-time :class:`Timeline` (link utilization/oversubscription
  series, storage occupancy, per-class slack trajectories, and the
  per-request forensics ledger behind :meth:`Timeline.explain`).
* :mod:`repro.observability.export` — timeline exporters: Chrome
  trace-event JSON (Perfetto-compatible) and the self-contained HTML
  report behind ``datastage report``.

Tracing is ambient: ``with use_tracer(t): ...`` installs a tracer for the
current process; :class:`~repro.core.state.NetworkState` captures the
ambient tracer at construction, so every run started inside the block is
observed.  Tracers only observe — enabling one never changes scheduling
decisions (pinned by a property test).
"""

from repro.observability.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsCollector,
    RunMetrics,
    TimingStat,
    merge_metrics,
    validate_metrics_document,
)
from repro.observability.profiling import (
    PHASE_BOOKING,
    PHASE_DIJKSTRA,
    PHASE_GC,
    PHASE_NAMES,
    PHASE_SCENARIO_GENERATION,
    PHASE_SCORING,
    PHASE_SERIALIZATION,
    PHASE_TREE,
    PROFILE_SCHEMA_VERSION,
    Hotspot,
    Profile,
    ProfileCollector,
    SpanStat,
    merge_profiles,
    span,
    validate_profile_document,
)
from repro.observability.export import (
    chrome_trace_events,
    render_html_report,
    write_chrome_trace,
    write_html_report,
)
from repro.observability.report import (
    render_link_utilization,
    render_profile,
    render_run_metrics,
    render_scheduler_summaries,
    render_timeline,
)
from repro.observability.timeline import (
    TIMELINE_SCHEMA_VERSION,
    ClassSeries,
    LinkSeries,
    RequestForensics,
    StorageSeries,
    Timeline,
    TimelineCollector,
    merge_timelines,
    validate_timeline_document,
)
from repro.observability.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TeeTracer,
    TraceEvent,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "MetricsCollector",
    "RunMetrics",
    "TimingStat",
    "merge_metrics",
    "validate_metrics_document",
    "PHASE_BOOKING",
    "PHASE_DIJKSTRA",
    "PHASE_GC",
    "PHASE_NAMES",
    "PHASE_SCENARIO_GENERATION",
    "PHASE_SCORING",
    "PHASE_SERIALIZATION",
    "PHASE_TREE",
    "PROFILE_SCHEMA_VERSION",
    "Hotspot",
    "Profile",
    "ProfileCollector",
    "SpanStat",
    "merge_profiles",
    "span",
    "validate_profile_document",
    "render_link_utilization",
    "render_profile",
    "render_run_metrics",
    "render_scheduler_summaries",
    "render_timeline",
    "TIMELINE_SCHEMA_VERSION",
    "ClassSeries",
    "LinkSeries",
    "RequestForensics",
    "StorageSeries",
    "Timeline",
    "TimelineCollector",
    "merge_timelines",
    "validate_timeline_document",
    "chrome_trace_events",
    "render_html_report",
    "write_chrome_trace",
    "write_html_report",
    "NULL_TRACER",
    "JsonlTracer",
    "NullTracer",
    "RecordingTracer",
    "TeeTracer",
    "TraceEvent",
    "Tracer",
    "current_tracer",
    "use_tracer",
]
