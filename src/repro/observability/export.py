"""Timeline exporters: Chrome trace-event JSON and the HTML report.

Two ways out of a :class:`~repro.observability.timeline.Timeline`:

* :func:`chrome_trace_events` — the Chrome trace-event format (the JSON
  Perfetto / ``chrome://tracing`` load): booked transfers become ``"X"``
  complete events laned per virtual link under a *simulated time*
  process, and the derived series (network subscription ratio, pending
  queue depth per priority class, storage occupancy) become ``"C"``
  counter tracks.  An optional
  :class:`~repro.observability.profiling.Profile` is laid out as an
  *aggregate* flame under a second process — span profiles carry
  per-path totals, not per-span timestamps, so the lane shows each
  path's summed wall time nested inside its parent, which is the useful
  shape for "where did the time go" even without real start stamps.
* :func:`render_html_report` — a single self-contained HTML document
  (inline SVG only, no scripts, no external assets) with the
  utilization/occupancy/slack charts, the rejection breakdown, and a
  forensics section sampling :meth:`Timeline.explain` output for the
  worst-off requests.

Both exporters are pure functions of their inputs — no wall clock, no
randomness — so exported artifacts are as deterministic as the timeline
itself.

One simulated second maps to one exported *microsecond* scale unit
(``ts``/``dur`` are microseconds in the trace-event format), i.e. the
trace shows simulated seconds as if they were wall-clock microseconds;
:data:`SIMULATED_US_PER_SECOND` pins the factor.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.observability.profiling import Profile
from repro.observability.timeline import (
    REASON_DESCRIPTIONS,
    Timeline,
)

#: Trace-event ``ts``/``dur`` are microseconds; one simulated second is
#: exported as this many trace microseconds.
SIMULATED_US_PER_SECOND = 1_000_000.0

#: The ``pid`` lane carrying simulated-time activity.
SIMULATED_PID = 1

#: The ``pid`` lane carrying the aggregate solver profile.
PROFILE_PID = 2

#: Buckets used for the exported counter tracks and report charts.
SERIES_POINTS = 64


def _meta_event(pid: int, tid: int, kind: str, name: str) -> Dict[str, Any]:
    return {
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _counter_events(
    name: str,
    series: Sequence[Tuple[float, float]],
    key: str,
    tid: int,
) -> List[Dict[str, Any]]:
    return [
        {
            "name": name,
            "ph": "C",
            "ts": when * SIMULATED_US_PER_SECOND,
            "pid": SIMULATED_PID,
            "tid": tid,
            "args": {key: value},
        }
        for when, value in series
    ]


def _profile_tree(
    profile: Profile,
) -> Dict[str, List[str]]:
    """Immediate-children map of the profile's span-path forest."""
    children: Dict[str, List[str]] = {"": []}
    for path in sorted(profile.spans):
        parent, _, _ = path.rpartition("/")
        children.setdefault(parent, []).append(path)
        children.setdefault(path, [])
    # A child may exist without its parent ever being recorded (collector
    # installed mid-span); hoist such orphans to the root lane.
    for path in sorted(children):
        if path and path not in profile.spans:
            children[""].extend(children.pop(path))
    children[""].sort()
    return children


def _profile_events(profile: Profile) -> List[Dict[str, Any]]:
    """The aggregate profile flame as nested ``"X"`` events.

    Each path occupies its total wall seconds; children are packed
    left-to-right inside the parent's interval starting at the parent's
    start, which renders as a flame graph in trace viewers.
    """
    children = _profile_tree(profile)
    events: List[Dict[str, Any]] = []

    def emit(path: str, start: float) -> float:
        stat = profile.spans[path]
        duration = stat.wall.total
        events.append(
            {
                "name": path.rpartition("/")[2],
                "cat": "profile",
                "ph": "X",
                "ts": start * SIMULATED_US_PER_SECOND,
                "dur": duration * SIMULATED_US_PER_SECOND,
                "pid": PROFILE_PID,
                "tid": 0,
                "args": {
                    "path": path,
                    "count": stat.count,
                    "wall_seconds": stat.wall.total,
                    "cpu_seconds": stat.cpu.total,
                },
            }
        )
        cursor = start
        for child in children.get(path, []):
            cursor = emit(child, cursor)
        return start + duration

    cursor = 0.0
    for root in children[""]:
        cursor = emit(root, cursor)
    return events


def chrome_trace_events(
    timeline: Timeline,
    profile: Optional[Profile] = None,
    points: int = SERIES_POINTS,
) -> Dict[str, Any]:
    """The timeline (and optional profile) as a trace-event document.

    Returns the ``{"traceEvents": [...], "displayTimeUnit": "ms"}``
    object; serialize with ``json.dumps`` and load the file in Perfetto
    or ``chrome://tracing``.
    """
    events: List[Dict[str, Any]] = [
        _meta_event(SIMULATED_PID, 0, "process_name", "simulated time"),
        _meta_event(SIMULATED_PID, 0, "thread_name", "network series"),
    ]
    for link_id in sorted(timeline.links):
        series = timeline.links[link_id]
        tid = 1000 + link_id
        events.append(
            _meta_event(
                SIMULATED_PID, tid, "thread_name", f"link {link_id}"
            )
        )
        for start, end, item_id in series.bookings:
            events.append(
                {
                    "name": f"item {item_id}",
                    "cat": "booking",
                    "ph": "X",
                    "ts": start * SIMULATED_US_PER_SECOND,
                    "dur": (end - start) * SIMULATED_US_PER_SECOND,
                    "pid": SIMULATED_PID,
                    "tid": tid,
                    "args": {"item_id": item_id, "link_id": link_id},
                }
            )
    events.extend(
        _counter_events(
            "subscription ratio",
            timeline.oversubscription_series(points),
            "ratio",
            0,
        )
    )
    for priority in sorted(timeline.classes):
        events.extend(
            _counter_events(
                f"pending p{priority}",
                timeline.pending_depth_series(priority, points),
                "requests",
                0,
            )
        )
    for machine in sorted(timeline.storage):
        if not timeline.storage[machine].reservations:
            continue
        events.extend(
            _counter_events(
                f"storage m{machine}",
                timeline.storage_occupancy_series(machine, points),
                "bytes",
                0,
            )
        )
    if profile is not None and not profile.empty:
        events.append(
            _meta_event(
                PROFILE_PID, 0, "process_name", "solver profile (aggregate)"
            )
        )
        events.append(
            _meta_event(PROFILE_PID, 0, "thread_name", "span totals")
        )
        events.extend(_profile_events(profile))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    timeline: Timeline,
    path: str,
    profile: Optional[Profile] = None,
) -> None:
    """Serialize :func:`chrome_trace_events` to ``path`` (compact JSON)."""
    document = chrome_trace_events(timeline, profile)
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, separators=(",", ":"), sort_keys=True)


# -- HTML report -------------------------------------------------------------

_CHART_WIDTH = 640
_CHART_HEIGHT = 120

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #aaa; padding: .25rem .6rem; text-align: left; }
th { background: #eef; }
svg { background: #fafaff; border: 1px solid #ccd; }
pre { background: #f4f4f8; border: 1px solid #ccd; padding: .6rem;
      overflow-x: auto; font-size: .85rem; }
.caption { color: #555; font-size: .85rem; margin: .2rem 0 1rem; }
"""


def _svg_series(
    series: Sequence[Tuple[float, float]],
    horizon: float,
    y_max: float,
    color: str = "#2255cc",
) -> str:
    """One bucketed series as an SVG step line."""
    if y_max <= 0.0:
        y_max = 1.0
    if horizon <= 0.0:
        horizon = 1.0
    points: List[str] = []
    step = horizon / max(len(series), 1)
    for when, value in series:
        x = when / horizon * _CHART_WIDTH
        y = _CHART_HEIGHT - min(value / y_max, 1.0) * _CHART_HEIGHT
        points.append(f"{x:.1f},{y:.1f}")
        points.append(f"{(when + step) / horizon * _CHART_WIDTH:.1f},{y:.1f}")
    return (
        f'<svg width="{_CHART_WIDTH}" height="{_CHART_HEIGHT}" '
        f'viewBox="0 0 {_CHART_WIDTH} {_CHART_HEIGHT}">'
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


def _svg_scatter(
    points: Sequence[Tuple[float, float]],
    horizon: float,
    y_min: float,
    y_max: float,
    color: str = "#cc4422",
) -> str:
    """Slack points as an SVG scatter plot (y may be negative)."""
    spread = y_max - y_min
    if spread <= 0.0:
        spread = 1.0
    if horizon <= 0.0:
        horizon = 1.0
    circles = []
    for when, value in points:
        x = when / horizon * _CHART_WIDTH
        y = _CHART_HEIGHT - (value - y_min) / spread * _CHART_HEIGHT
        circles.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.5" fill="{color}" '
            f'fill-opacity="0.6"/>'
        )
    zero_y = _CHART_HEIGHT - (0.0 - y_min) / spread * _CHART_HEIGHT
    baseline = (
        f'<line x1="0" y1="{zero_y:.1f}" x2="{_CHART_WIDTH}" '
        f'y2="{zero_y:.1f}" stroke="#999" stroke-dasharray="4 3"/>'
    )
    return (
        f'<svg width="{_CHART_WIDTH}" height="{_CHART_HEIGHT}" '
        f'viewBox="0 0 {_CHART_WIDTH} {_CHART_HEIGHT}">'
        + baseline
        + "".join(circles)
        + "</svg>"
    )


def _utilization_table(timeline: Timeline, limit: int = 10) -> str:
    runs = max(timeline.runs, 1)
    rows = []
    for link_id in sorted(timeline.links):
        series = timeline.links[link_id]
        window = series.window_seconds
        if window <= 0.0:
            continue
        fraction = series.busy_seconds / (window * runs)
        rejections = sum(series.rejections.values())
        rows.append((fraction, link_id, series, rejections))
    rows.sort(key=lambda row: (-row[0], row[1]))
    cells = [
        "<tr><th>link</th><th>utilization</th><th>bookings</th>"
        "<th>attempts</th><th>rejections</th><th>window (s)</th></tr>"
    ]
    for fraction, link_id, series, rejections in rows[:limit]:
        cells.append(
            f"<tr><td>{link_id}</td><td>{fraction:.1%}</td>"
            f"<td>{len(series.bookings)}</td><td>{series.attempts}</td>"
            f"<td>{rejections}</td><td>{series.window_seconds:g}</td></tr>"
        )
    dropped = len(rows) - min(len(rows), limit)
    note = (
        f'<p class="caption">Top {limit} of {len(rows)} links by '
        f"utilization ({dropped} not shown).</p>"
        if dropped > 0
        else ""
    )
    return "<table>" + "".join(cells) + "</table>" + note


def _rejection_table(timeline: Timeline) -> str:
    totals: Dict[str, int] = {}
    for link_id in sorted(timeline.links):
        for reason, count in timeline.links[link_id].rejections.items():
            totals[reason] = totals.get(reason, 0) + count
    if not totals:
        return "<p>No rejections were recorded.</p>"
    cells = ["<tr><th>reason</th><th>count</th><th>meaning</th></tr>"]
    for reason in sorted(totals, key=lambda name: (-totals[name], name)):
        cells.append(
            f"<tr><td>{html.escape(reason)}</td><td>{totals[reason]}</td>"
            f"<td>{html.escape(REASON_DESCRIPTIONS.get(reason, ''))}</td>"
            f"</tr>"
        )
    return "<table>" + "".join(cells) + "</table>"


def _forensics_section(timeline: Timeline, samples: int = 5) -> str:
    """The worst-off requests plus full ``explain`` transcripts."""
    losers = [
        timeline.forensics[key]
        for key in sorted(timeline.forensics)
        if timeline.forensics[key].satisfied
        < timeline.forensics[key].observed
    ]
    if not losers:
        return "<p>Every observed request was satisfied in every run.</p>"
    losers.sort(
        key=lambda ledger: (
            -ledger.priority,
            ledger.deadline,
            ledger.scenario,
            ledger.request_id,
        )
    )
    cells = [
        "<tr><th>scenario</th><th>request</th><th>priority</th>"
        "<th>deadline</th><th>satisfied</th><th>attempts</th>"
        "<th>dominant cause</th></tr>"
    ]
    for ledger in losers[:20]:
        cells.append(
            f"<tr><td>{html.escape(ledger.scenario)}</td>"
            f"<td>{ledger.request_id}</td><td>{ledger.priority}</td>"
            f"<td>{ledger.deadline:g}</td>"
            f"<td>{ledger.satisfied}/{ledger.observed}</td>"
            f"<td>{ledger.attempts}</td>"
            f"<td>{html.escape(ledger.dominant_reason() or '-')}</td></tr>"
        )
    parts = [
        f'<p class="caption">{len(losers)} request(s) went unsatisfied in '
        f"at least one observed run; the {min(len(losers), 20)} "
        f"highest-priority / tightest-deadline ones are listed.</p>",
        "<table>" + "".join(cells) + "</table>",
        "<h3>explain() transcripts</h3>",
    ]
    for ledger in losers[:samples]:
        transcript = timeline.explain(
            ledger.request_id, scenario=ledger.scenario
        )
        parts.append(f"<pre>{html.escape(transcript)}</pre>")
    return "".join(parts)


def render_html_report(
    timeline: Timeline,
    profile: Optional[Profile] = None,
    title: str = "Simulated-time telemetry report",
    points: int = SERIES_POINTS,
) -> str:
    """The timeline as one self-contained HTML document (inline SVG)."""
    summary = timeline.summary()
    oversubscription = timeline.oversubscription_series(points)
    peak_ratio = max(
        (value for _, value in oversubscription), default=0.0
    )
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<table>",
        f"<tr><th>runs merged</th><td>{summary['runs']}</td></tr>",
        f"<tr><th>requests</th><td>{summary['requests']}</td></tr>",
        f"<tr><th>satisfied</th><td>{summary['satisfied']}</td></tr>",
        f"<tr><th>unsatisfied</th><td>{summary['unsatisfied']}</td></tr>",
        f"<tr><th>peak link utilization</th>"
        f"<td>{summary['peak_utilization']:.1%} "
        f"(link {summary['peak_link']})</td></tr>",
        f"<tr><th>top rejection</th>"
        f"<td>{html.escape(summary['top_rejection'] or '-')}</td></tr>",
        "</table>",
        "<h2>Network subscription over simulated time</h2>",
        _svg_series(oversubscription, timeline.horizon, max(peak_ratio, 1.0)),
        f'<p class="caption">Booked link-seconds over open-window '
        f"link-seconds per bucket (peak {peak_ratio:.1%}; horizon "
        f"{timeline.horizon:g}s, {points} buckets).</p>",
        "<h2>Link utilization</h2>",
        _utilization_table(timeline),
    ]
    active_machines = [
        machine
        for machine in sorted(timeline.storage)
        if timeline.storage[machine].reservations
    ]
    if active_machines:
        parts.append("<h2>Receiver-storage occupancy</h2>")
        for machine in active_machines[:4]:
            series = timeline.storage_occupancy_series(machine, points)
            capacity = timeline.storage[machine].capacity
            peak_bytes = max((value for _, value in series), default=0.0)
            parts.append(f"<h3>machine {machine}</h3>")
            parts.append(
                _svg_series(
                    series,
                    timeline.horizon,
                    capacity if capacity > 0 else peak_bytes,
                    color="#117744",
                )
            )
            parts.append(
                f'<p class="caption">Reserved bytes per run (peak '
                f"{peak_bytes:g} of capacity {capacity:g}).</p>"
            )
        dropped_machines = len(active_machines) - min(len(active_machines), 4)
        if dropped_machines > 0:
            parts.append(
                f'<p class="caption">{dropped_machines} more machine(s) '
                f"held reservations (not charted).</p>"
            )
    for priority in sorted(timeline.classes, reverse=True):
        series = timeline.classes[priority]
        parts.append(
            f"<h2>Priority class {priority}: pending depth and "
            f"deadline slack</h2>"
        )
        depth = timeline.pending_depth_series(priority, points)
        peak_depth = max((value for _, value in depth), default=0.0)
        parts.append(
            _svg_series(depth, timeline.horizon, peak_depth, color="#7722aa")
        )
        parts.append(
            f'<p class="caption">Pending requests per run '
            f"({series.requests} total across {timeline.runs} run(s); "
            f"{series.satisfied} satisfied, {series.cancelled} cancelled, "
            f"{series.reopened} reopened).</p>"
        )
        if series.slack:
            slacks = [value for _, value in series.slack]
            parts.append(
                _svg_scatter(
                    series.slack,
                    timeline.horizon,
                    min(min(slacks), 0.0),
                    max(max(slacks), 1.0),
                )
            )
            parts.append(
                '<p class="caption">Deadline slack at each satisfaction '
                "(arrival time vs. deadline − arrival; dashed line marks "
                "zero slack).</p>"
            )
    parts.append("<h2>Rejection reasons</h2>")
    parts.append(_rejection_table(timeline))
    parts.append("<h2>Request forensics</h2>")
    parts.append(_forensics_section(timeline))
    if profile is not None and not profile.empty:
        parts.append("<h2>Solver hotspots (aggregate)</h2>")
        cells = [
            "<tr><th>span path</th><th>count</th><th>wall (s)</th>"
            "<th>self (s)</th></tr>"
        ]
        for spot in profile.hotspots(limit=10):
            stat = profile.spans[spot.path]
            cells.append(
                f"<tr><td>{html.escape(spot.path)}</td>"
                f"<td>{stat.count}</td><td>{stat.wall.total:.3f}</td>"
                f"<td>{spot.self_wall_seconds:.3f}</td></tr>"
            )
        parts.append("<table>" + "".join(cells) + "</table>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    timeline: Timeline,
    path: str,
    profile: Optional[Profile] = None,
    title: str = "Simulated-time telemetry report",
) -> None:
    """Render :func:`render_html_report` to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(render_html_report(timeline, profile, title=title))
