"""Aggregated scheduler metrics: the collector and its serializable output.

:class:`MetricsCollector` is a :class:`~repro.observability.tracer.Tracer`
that folds every event into counters, reason tallies, per-link busy time,
and timing summaries — no per-event allocation.  :meth:`finalize` snapshots
the aggregate into a :class:`RunMetrics`, which merges associatively
(per-cell metrics from parallel workers combine into sweep totals) and
round-trips through :mod:`repro.serialization`.

The JSON layout is schema-versioned (:data:`METRICS_SCHEMA_VERSION`);
:func:`validate_metrics_document` structurally checks a parsed document,
which is what the CI metrics job asserts against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import ModelError
from repro.observability.tracer import Tracer, _inherit_hook_docs

#: Version stamp written into every serialized metrics document.
#: Version 2: adds the ``tree_cache_reasons`` tally (hit/miss outcome
#: codes from :data:`repro.observability.tracer.TREE_CACHE_REASONS`).
METRICS_SCHEMA_VERSION = 2

#: Counter keys every RunMetrics carries (missing keys default to 0).
COUNTER_KEYS: Tuple[str, ...] = (
    "booking_attempts",
    "booking_rejections",
    "bookings",
    "booking_failures",
    "copies_removed",
    "requests_reopened",
    "links_disabled",
    "dijkstra_searches",
    "dijkstra_compiled",
    "edge_relaxations",
    "edges_pruned",
    "tree_cache_hits",
    "tree_cache_misses",
    "items_scored",
    "candidate_groups",
    "decisions",
    "hops_booked",
    "runs",
    "cells",
    "run_cache_hits",
    "run_cache_misses",
    "requests_satisfied",
    "storage_reservations",
)


@dataclass
class TimingStat:
    """A streaming summary of one timing distribution (seconds).

    Emptiness is explicit: ``count == 0`` means *no observations*, and
    the JSON form of an empty stat omits ``min``/``max`` entirely (an
    in-memory empty stat keeps the 0.0 placeholders, but they are never
    serialized, so a round-trip cannot manufacture a fake 0.0
    observation).

    Attributes:
        count: number of observations.
        total: summed observations.
        min: smallest observation (meaningless placeholder when empty;
            omitted from :meth:`to_dict` output).
        max: largest observation (likewise).
    """

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def note(self, value: float) -> None:
        """Fold one observation in."""
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def merged(self, other: "TimingStat") -> "TimingStat":
        """The combined summary of two distributions."""
        if self.count == 0:
            return TimingStat(other.count, other.total, other.min, other.max)
        if other.count == 0:
            return TimingStat(self.count, self.total, self.min, self.max)
        return TimingStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    def to_dict(self) -> Dict[str, float]:
        """JSON-ready form (``min``/``max`` present only when non-empty)."""
        if self.count == 0:
            return {"count": 0, "total": self.total}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "TimingStat":
        """Rebuild from :meth:`to_dict` output.

        An empty stat (``count == 0``) rebuilds as the canonical empty
        :class:`TimingStat` regardless of any ``min``/``max`` keys a
        pre-omission document may still carry.
        """
        count = int(document.get("count", 0))
        if count == 0:
            return TimingStat(total=float(document.get("total", 0.0)))
        return TimingStat(
            count=count,
            total=float(document.get("total", 0.0)),
            min=float(document.get("min", 0.0)),
            max=float(document.get("max", 0.0)),
        )


@dataclass
class RunMetrics:
    """The serializable aggregate of one (or many merged) observed runs.

    Attributes:
        counters: event tallies, keyed by :data:`COUNTER_KEYS` entries.
        rejection_reasons: rejection/failure tallies keyed by reason code.
        tree_cache_reasons: tree-cache outcome tallies keyed by
            :data:`~repro.observability.tracer.TREE_CACHE_REASONS` codes
            (how hits were justified and what forced recomputes).
        link_busy_seconds: summed booked transfer seconds per virtual link.
        link_transfer_counts: booked transfer count per virtual link.
        link_window_seconds: each observed link's window length (constant
            per link; kept to derive utilization fractions in reports).
        decision_seconds: per-decision wall time (choose + execute).
        cell_seconds: per-executor-cell wall time.
        workers: sorted pids of the processes that contributed.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    rejection_reasons: Dict[str, int] = field(default_factory=dict)
    tree_cache_reasons: Dict[str, int] = field(default_factory=dict)
    link_busy_seconds: Dict[int, float] = field(default_factory=dict)
    link_transfer_counts: Dict[int, int] = field(default_factory=dict)
    link_window_seconds: Dict[int, float] = field(default_factory=dict)
    decision_seconds: TimingStat = field(default_factory=TimingStat)
    cell_seconds: TimingStat = field(default_factory=TimingStat)
    workers: Tuple[int, ...] = ()

    def counter(self, key: str) -> int:
        """One counter's value (0 when never bumped)."""
        return self.counters.get(key, 0)

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment one counter."""
        self.counters[key] = self.counters.get(key, 0) + amount

    def merged(self, other: "RunMetrics") -> "RunMetrics":
        """The element-wise combination of two aggregates (associative)."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        reasons = dict(self.rejection_reasons)
        for key, value in other.rejection_reasons.items():
            reasons[key] = reasons.get(key, 0) + value
        cache_reasons = dict(self.tree_cache_reasons)
        for key, value in other.tree_cache_reasons.items():
            cache_reasons[key] = cache_reasons.get(key, 0) + value
        busy = dict(self.link_busy_seconds)
        for key, value in other.link_busy_seconds.items():
            busy[key] = busy.get(key, 0.0) + value
        transfers = dict(self.link_transfer_counts)
        for key, value in other.link_transfer_counts.items():
            transfers[key] = transfers.get(key, 0) + value
        windows = dict(self.link_window_seconds)
        windows.update(other.link_window_seconds)
        return RunMetrics(
            counters=counters,
            rejection_reasons=reasons,
            tree_cache_reasons=cache_reasons,
            link_busy_seconds=busy,
            link_transfer_counts=transfers,
            link_window_seconds=windows,
            decision_seconds=self.decision_seconds.merged(
                other.decision_seconds
            ),
            cell_seconds=self.cell_seconds.merged(other.cell_seconds),
            workers=tuple(sorted(set(self.workers) | set(other.workers))),
        )


def merge_metrics(parts: Iterable[Optional[RunMetrics]]) -> RunMetrics:
    """Fold many (possibly ``None``) aggregates into one."""
    total = RunMetrics()
    for part in parts:
        if part is not None:
            total = total.merged(part)
    return total


@_inherit_hook_docs
class MetricsCollector(Tracer):
    """A tracer that aggregates events into a :class:`RunMetrics`.

    One collector observes one logical unit of work (typically one sweep
    cell); :meth:`finalize` stamps the collecting process's pid so merged
    sweep metrics report which workers contributed.
    """

    def __init__(self) -> None:
        self._metrics = RunMetrics()

    # -- booking ----------------------------------------------------------

    def on_transfer_attempt(self, item_id: int, link_id: int) -> None:
        self._metrics.bump("booking_attempts")

    def on_transfer_rejected(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        metrics = self._metrics
        metrics.bump("booking_rejections")
        metrics.rejection_reasons[reason] = (
            metrics.rejection_reasons.get(reason, 0) + 1
        )

    def on_transfer_booked(
        self,
        item_id: int,
        link_id: int,
        start: float,
        end: float,
        window_seconds: float,
    ) -> None:
        metrics = self._metrics
        metrics.bump("bookings")
        metrics.link_busy_seconds[link_id] = (
            metrics.link_busy_seconds.get(link_id, 0.0) + (end - start)
        )
        metrics.link_transfer_counts[link_id] = (
            metrics.link_transfer_counts.get(link_id, 0) + 1
        )
        metrics.link_window_seconds[link_id] = window_seconds

    def on_booking_failed(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        metrics = self._metrics
        metrics.bump("booking_failures")
        metrics.rejection_reasons[reason] = (
            metrics.rejection_reasons.get(reason, 0) + 1
        )

    # -- state surgery ----------------------------------------------------

    def on_copy_removed(
        self, item_id: int, machine: int, at_time: float
    ) -> None:
        self._metrics.bump("copies_removed")

    def on_request_satisfied(
        self, request_id: int, at_time: float, hops: int
    ) -> None:
        self._metrics.bump("requests_satisfied")

    def on_storage_reserved(
        self, item_id: int, machine: int, amount: float, start: float, release: float
    ) -> None:
        self._metrics.bump("storage_reservations")

    def on_request_reopened(self, request_id: int) -> None:
        self._metrics.bump("requests_reopened")

    def on_link_disabled(self, link_id: int, at_time: float) -> None:
        self._metrics.bump("links_disabled")

    # -- routing ----------------------------------------------------------

    def on_dijkstra(
        self,
        item_id: int,
        relaxations: int,
        pruned: int,
        finalized: int,
        seeds: int,
        compiled: bool = False,
    ) -> None:
        metrics = self._metrics
        metrics.bump("dijkstra_searches")
        if compiled:
            metrics.bump("dijkstra_compiled")
        metrics.bump("edge_relaxations", relaxations)
        metrics.bump("edges_pruned", pruned)

    # -- engine -----------------------------------------------------------

    def on_tree_cache(self, item_id: int, hit: bool, reason: str) -> None:
        metrics = self._metrics
        metrics.bump("tree_cache_hits" if hit else "tree_cache_misses")
        metrics.tree_cache_reasons[reason] = (
            metrics.tree_cache_reasons.get(reason, 0) + 1
        )

    def on_item_scored(self, item_id: int, candidates: int) -> None:
        metrics = self._metrics
        metrics.bump("items_scored")
        metrics.bump("candidate_groups", candidates)

    def on_decision(
        self,
        item_id: int,
        next_machine: int,
        cost: float,
        hops: int,
        elapsed_seconds: float,
    ) -> None:
        metrics = self._metrics
        metrics.bump("decisions")
        metrics.bump("hops_booked", hops)
        metrics.decision_seconds.note(elapsed_seconds)

    def on_run_end(self, label: str, elapsed_seconds: float) -> None:
        self._metrics.bump("runs")

    # -- executor ---------------------------------------------------------

    def on_cell(
        self,
        index: int,
        scheduler: str,
        cache_hit: bool,
        elapsed_seconds: float,
    ) -> None:
        metrics = self._metrics
        metrics.bump("cells")
        metrics.bump("run_cache_hits" if cache_hit else "run_cache_misses")
        metrics.cell_seconds.note(elapsed_seconds)

    def finalize(self) -> RunMetrics:
        """The collected aggregate, stamped with this process's pid."""
        metrics = self._metrics
        if not metrics.workers:
            metrics.workers = (os.getpid(),)
        return metrics


# -- document validation -----------------------------------------------------

def _check_mapping(
    document: Mapping[str, Any],
    key: str,
    value_types: Tuple[type, ...],
) -> None:
    mapping = document.get(key)
    if not isinstance(mapping, Mapping):
        raise ModelError(f"metrics document key {key!r} must be a mapping")
    for name, value in mapping.items():
        if not isinstance(name, str):
            raise ModelError(
                f"metrics document {key!r} has a non-string key {name!r}"
            )
        if not isinstance(value, value_types) or isinstance(value, bool):
            raise ModelError(
                f"metrics document {key}[{name!r}] has invalid value "
                f"{value!r}"
            )


def validate_metrics_document(document: Mapping[str, Any]) -> None:
    """Structurally validate a parsed metrics JSON document.

    Raises:
        ModelError: on a wrong kind, unsupported schema version, or any
            structurally invalid field.  Returns silently when the document
            conforms to the :data:`METRICS_SCHEMA_VERSION` layout produced
            by :func:`repro.serialization.run_metrics_to_dict`.
    """
    if document.get("kind") != "run_metrics":
        raise ModelError(
            f"expected a run_metrics document, got "
            f"kind={document.get('kind')!r}"
        )
    if document.get("schema_version") != METRICS_SCHEMA_VERSION:
        raise ModelError(
            f"unsupported metrics schema version "
            f"{document.get('schema_version')!r} "
            f"(expected {METRICS_SCHEMA_VERSION})"
        )
    _check_mapping(document, "counters", (int,))
    _check_mapping(document, "rejection_reasons", (int,))
    _check_mapping(document, "tree_cache_reasons", (int,))
    _check_mapping(document, "link_busy_seconds", (int, float))
    _check_mapping(document, "link_transfer_counts", (int,))
    _check_mapping(document, "link_window_seconds", (int, float))
    for key in ("decision_seconds", "cell_seconds"):
        stat = document.get(key)
        if not isinstance(stat, Mapping):
            raise ModelError(f"metrics document key {key!r} must be a mapping")
        for stat_key in ("count", "total"):
            value = stat.get(stat_key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ModelError(
                    f"metrics document {key}.{stat_key} has invalid value "
                    f"{value!r}"
                )
        # min/max are mandatory for non-empty stats; an empty stat omits
        # them (tolerated when present, for pre-omission documents).
        for stat_key in ("min", "max"):
            if stat_key not in stat:
                if stat.get("count"):
                    raise ModelError(
                        f"metrics document {key}.{stat_key} is required "
                        f"when count > 0"
                    )
                continue
            value = stat.get(stat_key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ModelError(
                    f"metrics document {key}.{stat_key} has invalid value "
                    f"{value!r}"
                )
    workers = document.get("workers")
    if not isinstance(workers, (list, tuple)) or not all(
        isinstance(pid, int) for pid in workers
    ):
        raise ModelError("metrics document 'workers' must be a list of pids")
