"""Hierarchical phase-level span profiling for the scheduler core.

The :func:`span` context manager marks one *phase* of work::

    with span(PHASE_DIJKSTRA):
        tree = compute_shortest_path_tree(state, item_id)

Spans ride the ambient :class:`~repro.observability.tracer.Tracer` — when
the ambient tracer is the default ``NULL_TRACER`` a span costs one
function call, one attribute load, and one branch, and returns a shared
inert singleton: no timing calls, no allocation.  With a tracer
installed, entry emits ``on_span_start`` and exit (normal *or*
exceptional — the ``with`` protocol guarantees pairing) emits
``on_span_end`` carrying the wall-clock and CPU duration.

:class:`ProfileCollector` is the tracer that turns the event stream into
a :class:`Profile`: spans nest, and each completed span is recorded
under its ``/``-joined path (``"tree/dijkstra"`` is a Dijkstra search
performed during a tree recomputation).  Per path the profile keeps a
wall-time and a CPU-time :class:`~repro.observability.metrics.TimingStat`
(count, total, min, max).  Profiles merge associatively — per-cell
profiles from process-pool workers combine into sweep totals exactly
like :class:`~repro.observability.metrics.RunMetrics` — and round-trip
through :mod:`repro.serialization` (``profile_to_dict`` /
``profile_from_dict``).

The phase vocabulary instrumented in the library:

======================  ===================================================
phase                   spanned code
======================  ===================================================
scenario_generation     ``ScenarioGenerator.generate``
gc                      γ-release bookkeeping (release-matrix precompute in
                        ``NetworkState.__init__``; ``remove_copy`` release)
tree                    ``TreeCache.entry_for`` recompute (miss path)
dijkstra                ``compute_shortest_path_tree`` (nests under tree)
scoring                 candidate enumeration + pricing for one item
booking                 executing one chosen candidate group
serialization           scenario/record codec work in the bench harness
======================  ===================================================

Profiling is observation only: enabling it never changes scheduling
decisions (pinned by the trace-invariance property test).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ModelError
from repro.observability.metrics import TimingStat
from repro.observability.tracer import Tracer, current_tracer

#: Version stamp written into every serialized profile document.
PROFILE_SCHEMA_VERSION = 1

#: Separator joining nested span names into a phase path.
SPAN_PATH_SEPARATOR = "/"

# -- phase names ------------------------------------------------------------

#: One scenario drawn by the workload generator.
PHASE_SCENARIO_GENERATION = "scenario_generation"
#: Garbage-collection bookkeeping (γ-release matrix, dynamic copy release).
PHASE_GC = "gc"
#: One shortest-path-tree recomputation (cache-miss path).
PHASE_TREE = "tree"
#: One adapted-Dijkstra search (nests under ``tree``).
PHASE_DIJKSTRA = "dijkstra"
#: Candidate enumeration and pricing for one item.
PHASE_SCORING = "scoring"
#: Executing (booking) one chosen candidate group.
PHASE_BOOKING = "booking"
#: Scenario/record codec work.
PHASE_SERIALIZATION = "serialization"

#: The phase names the library instruments out of the box.
PHASE_NAMES: Tuple[str, ...] = (
    PHASE_SCENARIO_GENERATION,
    PHASE_GC,
    PHASE_TREE,
    PHASE_DIJKSTRA,
    PHASE_SCORING,
    PHASE_BOOKING,
    PHASE_SERIALIZATION,
)


# -- the span context manager ------------------------------------------------

class _NullSpan:
    """The inert span handed out while the ambient tracer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """One live span: emits start/end events with wall + CPU duration."""

    __slots__ = ("_name", "_tracer", "_wall_started", "_cpu_started")

    def __init__(self, name: str, tracer: Tracer) -> None:
        self._name = name
        self._tracer = tracer

    def __enter__(self) -> "_ActiveSpan":
        self._tracer.on_span_start(self._name)
        self._cpu_started = time.process_time()
        self._wall_started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall_started
        cpu = time.process_time() - self._cpu_started
        self._tracer.on_span_end(self._name, wall, cpu)
        return False


def span(name: str, tracer: Optional[Tracer] = None):
    """Open a profiling span named ``name`` for the ``with`` block.

    Near-zero cost when the observing tracer is disabled (the default):
    the shared inert singleton is returned without touching the clock.
    Spans nest — a collector sees the ``/``-joined path — and the end
    event fires even when the spanned code raises.

    Args:
        name: the phase name (one of :data:`PHASE_NAMES`, or any label).
        tracer: the tracer to emit to; defaults to the ambient tracer.
            State-bound emission sites pass ``state.tracer`` so spans
            follow the same capture-at-construction rule as every other
            scheduler event.
    """
    if tracer is None:
        tracer = current_tracer()
    if not tracer.enabled:
        return _NULL_SPAN
    return _ActiveSpan(name, tracer)


# -- the aggregate -----------------------------------------------------------

@dataclass
class SpanStat:
    """Timing summary of one span path: wall and CPU distributions.

    Attributes:
        wall: wall-clock durations (seconds).
        cpu: CPU-time durations (seconds, ``time.process_time`` deltas).
    """

    wall: TimingStat = field(default_factory=TimingStat)
    cpu: TimingStat = field(default_factory=TimingStat)

    @property
    def count(self) -> int:
        """Number of completed spans recorded under this path."""
        return self.wall.count

    def note(self, wall_seconds: float, cpu_seconds: float) -> None:
        """Fold one completed span in."""
        self.wall.note(wall_seconds)
        self.cpu.note(cpu_seconds)

    def merged(self, other: "SpanStat") -> "SpanStat":
        """The combined summary of two span distributions."""
        return SpanStat(
            wall=self.wall.merged(other.wall),
            cpu=self.cpu.merged(other.cpu),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (empty stats omit min/max, like TimingStat)."""
        return {"wall": self.wall.to_dict(), "cpu": self.cpu.to_dict()}

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "SpanStat":
        """Rebuild from :meth:`to_dict` output."""
        return SpanStat(
            wall=TimingStat.from_dict(document.get("wall", {})),
            cpu=TimingStat.from_dict(document.get("cpu", {})),
        )


@dataclass(frozen=True)
class Hotspot:
    """One ranked entry of a profile's hotspot table.

    Attributes:
        path: the span path (``"tree/dijkstra"``).
        self_wall_seconds: wall time spent in the path itself, excluding
            its direct children.
        total_wall_seconds: wall time including children.
        count: completed spans under the path.
        share: ``self_wall_seconds`` as a fraction of the profile's
            total top-level wall time (0.0 when the profile is empty).
    """

    path: str
    self_wall_seconds: float
    total_wall_seconds: float
    count: int
    share: float


@dataclass
class Profile:
    """A mergeable aggregate of completed spans, keyed by path.

    Attributes:
        spans: per-path :class:`SpanStat`, keyed by the ``/``-joined
            span path.
    """

    spans: Dict[str, SpanStat] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        """True when no span has been recorded."""
        return not self.spans

    def note(self, path: str, wall_seconds: float, cpu_seconds: float) -> None:
        """Fold one completed span in under ``path``."""
        stat = self.spans.get(path)
        if stat is None:
            stat = SpanStat()
            self.spans[path] = stat
        stat.note(wall_seconds, cpu_seconds)

    def stat(self, path: str) -> SpanStat:
        """The path's summary (a fresh empty stat when never recorded)."""
        return self.spans.get(path, SpanStat())

    def merged(self, other: "Profile") -> "Profile":
        """The path-wise combination of two profiles (associative)."""
        result = Profile()
        for source in (self, other):
            for path, stat in source.spans.items():
                existing = result.spans.get(path)
                # merged() always allocates, so the result owns its data
                # even for paths present on only one side.
                result.spans[path] = (
                    stat.merged(SpanStat())
                    if existing is None
                    else existing.merged(stat)
                )
        return result

    def _children(self, path: str) -> List[str]:
        prefix = path + SPAN_PATH_SEPARATOR
        return [
            candidate
            for candidate in self.spans
            if candidate.startswith(prefix)
            and SPAN_PATH_SEPARATOR not in candidate[len(prefix):]
        ]

    def self_wall_seconds(self, path: str) -> float:
        """Wall time in ``path`` itself, excluding its direct children."""
        total = self.stat(path).wall.total
        return total - sum(
            self.spans[child].wall.total for child in self._children(path)
        )

    def total_wall_seconds(self) -> float:
        """Summed wall time of all top-level (unnested) spans."""
        return sum(
            stat.wall.total
            for path, stat in self.spans.items()
            if SPAN_PATH_SEPARATOR not in path
        )

    def hotspots(self, limit: Optional[int] = None) -> List[Hotspot]:
        """Paths ranked by self wall time, hottest first."""
        total = self.total_wall_seconds()
        ranked = sorted(
            (
                Hotspot(
                    path=path,
                    self_wall_seconds=self.self_wall_seconds(path),
                    total_wall_seconds=stat.wall.total,
                    count=stat.count,
                    share=(
                        self.self_wall_seconds(path) / total
                        if total > 0.0
                        else 0.0
                    ),
                )
                for path, stat in self.spans.items()
            ),
            key=lambda hotspot: (-hotspot.self_wall_seconds, hotspot.path),
        )
        return ranked if limit is None else ranked[:limit]


def merge_profiles(parts: Iterable[Optional[Profile]]) -> Profile:
    """Fold many (possibly ``None``) profiles into one."""
    total = Profile()
    for part in parts:
        if part is not None:
            total = total.merged(part)
    return total


class ProfileCollector(Tracer):
    """A tracer folding span events into a hierarchical :class:`Profile`.

    Maintains the live span stack: ``on_span_start`` pushes, the
    matching ``on_span_end`` records the completed span under the
    ``/``-joined path of the stack at that moment and pops.  The
    :func:`span` context manager guarantees starts and ends pair up even
    under exceptions; an end that does not match the top of the stack
    (a collector installed mid-span) is recorded flat under its own name
    rather than corrupting the hierarchy.
    """

    def __init__(self) -> None:
        self._profile = Profile()
        self._stack: List[str] = []

    def on_span_start(self, name: str) -> None:
        """Push the opening span onto the live stack."""
        self._stack.append(name)

    def on_span_end(
        self, name: str, wall_seconds: float, cpu_seconds: float
    ) -> None:
        """Record the completed span under its hierarchical path."""
        stack = self._stack
        if stack and stack[-1] == name:
            path = SPAN_PATH_SEPARATOR.join(stack)
            stack.pop()
        else:
            path = name
        self._profile.note(path, wall_seconds, cpu_seconds)

    def finalize(self) -> Profile:
        """The collected profile (the live object — collect, then read)."""
        return self._profile


# -- document validation -----------------------------------------------------

def _check_timing_stat(
    context: str, document: Any, allow_missing: bool = False
) -> None:
    if not isinstance(document, Mapping):
        raise ModelError(f"{context} must be a timing-stat mapping")
    for key in ("count", "total"):
        value = document.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ModelError(
                f"{context}.{key} has invalid value {value!r}"
            )
    count = document.get("count")
    for key in ("min", "max"):
        if key not in document:
            if count:
                raise ModelError(
                    f"{context}.{key} is required when count > 0"
                )
            continue
        value = document.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ModelError(
                f"{context}.{key} has invalid value {value!r}"
            )


def validate_profile_document(document: Mapping[str, Any]) -> None:
    """Structurally validate a parsed profile JSON document.

    Raises:
        ModelError: on a wrong kind, unsupported schema version, or any
            structurally invalid span entry.  Returns silently when the
            document conforms to the layout produced by
            :func:`repro.serialization.profile_to_dict`.
    """
    if document.get("kind") != "profile":
        raise ModelError(
            f"expected a profile document, got "
            f"kind={document.get('kind')!r}"
        )
    if document.get("schema_version") != PROFILE_SCHEMA_VERSION:
        raise ModelError(
            f"unsupported profile schema version "
            f"{document.get('schema_version')!r} "
            f"(expected {PROFILE_SCHEMA_VERSION})"
        )
    spans = document.get("spans")
    if not isinstance(spans, Mapping):
        raise ModelError("profile document key 'spans' must be a mapping")
    for path, stat in spans.items():
        if not isinstance(path, str) or not path:
            raise ModelError(
                f"profile document has an invalid span path {path!r}"
            )
        if not isinstance(stat, Mapping):
            raise ModelError(
                f"profile document spans[{path!r}] must be a mapping"
            )
        for axis in ("wall", "cpu"):
            _check_timing_stat(f"profile spans[{path!r}].{axis}", stat.get(axis))
