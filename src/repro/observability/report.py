"""Plain-text rendering of collected scheduler metrics and profiles.

Five renderers, all returning aligned ASCII tables (via the same
:func:`~repro.experiments.tables.render_table` the figure output uses):

* :func:`render_run_metrics` — one aggregate's counters, rejection
  reasons, tree-cache outcome tallies, and timing summaries;
* :func:`render_scheduler_summaries` — one row per scheduler label
  (bookings, attempts, rejection rate, search effort, cache behavior);
* :func:`render_link_utilization` — the busiest virtual links with their
  mean per-run busy time and utilization fraction;
* :func:`render_profile` — one span profile's per-phase wall/CPU
  breakdown, ranked hottest (self wall time) first;
* :func:`render_timeline` — one simulated-time telemetry document's
  digest (saturation, per-class outcomes, worst-off requests).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.observability.metrics import RunMetrics
from repro.observability.profiling import Profile
from repro.observability.timeline import Timeline


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Delegate to the shared ASCII renderer (imported lazily).

    The import happens at call time because :mod:`repro.experiments`
    imports this package back for metrics collection; a module-level
    import would be circular.
    """
    from repro.experiments.tables import render_table as render

    return render(headers, rows, title=title)


def _rate(part: int, whole: int) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def render_run_metrics(metrics: RunMetrics, title: str = "metrics") -> str:
    """One aggregate's counters and timings as a two-column table."""
    rows = [
        [key, str(metrics.counter(key))]
        for key in sorted(metrics.counters)
    ]
    for reason in sorted(metrics.rejection_reasons):
        rows.append(
            [f"reason:{reason}", str(metrics.rejection_reasons[reason])]
        )
    for reason in sorted(metrics.tree_cache_reasons):
        rows.append(
            [
                f"tree_cache:{reason}",
                str(metrics.tree_cache_reasons[reason]),
            ]
        )
    decision = metrics.decision_seconds
    if decision.count:
        rows.append(
            ["decision_mean_ms", f"{decision.mean * 1000.0:.3f}"]
        )
        rows.append(["decision_max_ms", f"{decision.max * 1000.0:.3f}"])
    cell = metrics.cell_seconds
    if cell.count:
        rows.append(["cell_mean_s", f"{cell.mean:.3f}"])
        rows.append(["cell_max_s", f"{cell.max:.3f}"])
    if metrics.workers:
        rows.append(["workers", str(len(metrics.workers))])
    return render_table(["metric", "value"], rows, title=title)


def render_scheduler_summaries(
    by_scheduler: Mapping[str, RunMetrics],
    title: str = "per-scheduler metrics",
) -> str:
    """One summary row per scheduler label, sorted by label."""
    rows = []
    for label in sorted(by_scheduler):
        metrics = by_scheduler[label]
        attempts = metrics.counter("booking_attempts")
        rejections = metrics.counter("booking_rejections")
        hits = metrics.counter("tree_cache_hits")
        misses = metrics.counter("tree_cache_misses")
        rows.append(
            [
                label,
                str(metrics.counter("runs")),
                str(metrics.counter("bookings")),
                str(attempts),
                _rate(rejections, attempts),
                str(metrics.counter("dijkstra_searches")),
                str(metrics.counter("edge_relaxations")),
                _rate(hits, hits + misses),
                (
                    f"{metrics.decision_seconds.mean * 1000.0:.3f}"
                    if metrics.decision_seconds.count
                    else "-"
                ),
            ]
        )
    return render_table(
        [
            "scheduler",
            "runs",
            "bookings",
            "attempts",
            "rejected",
            "dijkstra",
            "relax",
            "tree-hit",
            "decision-ms",
        ],
        rows,
        title=title,
    )


def render_profile(
    profile: Profile,
    top: int = 10,
    title: str = "phase profile",
) -> str:
    """The profile's hotspot table: one row per span path.

    Rows rank by self wall time (time in the phase excluding its direct
    children), so a hot parent whose cost lives entirely in a nested
    phase sorts below the child.
    """
    rows = []
    for hotspot in profile.hotspots(top):
        stat = profile.stat(hotspot.path)
        rows.append(
            [
                hotspot.path,
                str(hotspot.count),
                f"{hotspot.self_wall_seconds:.3f}",
                f"{hotspot.total_wall_seconds:.3f}",
                f"{stat.cpu.total:.3f}",
                f"{100.0 * hotspot.share:.1f}%",
            ]
        )
    return render_table(
        ["phase", "count", "self-s", "total-s", "cpu-s", "share"],
        rows,
        title=title,
    )


def render_link_utilization(
    metrics: RunMetrics,
    top: int = 10,
    title: str = "busiest virtual links",
) -> str:
    """The ``top`` busiest links by total booked seconds.

    Utilization is the link's mean booked fraction of its availability
    window per observed run (busy seconds / runs / window seconds), so
    values stay comparable when metrics from many runs were merged.
    """
    runs = max(metrics.counter("runs"), 1)
    ranked = sorted(
        metrics.link_busy_seconds.items(),
        key=lambda pair: (-pair[1], pair[0]),
    )[:top]
    rows = []
    for link_id, busy in ranked:
        window = metrics.link_window_seconds.get(link_id, 0.0)
        utilization = (
            f"{busy / runs / window:.4f}" if window > 0.0 else "-"
        )
        rows.append(
            [
                f"L{link_id}",
                str(metrics.link_transfer_counts.get(link_id, 0)),
                f"{busy:.1f}",
                utilization,
            ]
        )
    return render_table(
        ["link", "transfers", "busy-s", "mean-util"], rows, title=title
    )


def render_timeline(
    timeline: Timeline,
    top: int = 5,
    title: str = "simulated-time telemetry",
) -> str:
    """A timeline's plain-text digest: three stacked tables.

    The headline table carries the merged-run totals and the peak link;
    the class table breaks requests down per priority (satisfied,
    cancelled, reopened, worst observed slack); the forensics table
    lists the ``top`` unsatisfied requests with their dominant rejection
    cause (see :meth:`~repro.observability.timeline.Timeline.explain`
    for the full per-request story).
    """
    summary = timeline.summary()
    headline = render_table(
        ["metric", "value"],
        [
            ["runs", str(summary["runs"])],
            ["requests", str(summary["requests"])],
            ["satisfied", str(summary["satisfied"])],
            ["unsatisfied", str(summary["unsatisfied"])],
            [
                "peak_link_utilization",
                f"{summary['peak_utilization']:.4f} "
                f"(L{summary['peak_link']})",
            ],
            ["top_rejection", summary["top_rejection"] or "-"],
        ],
        title=title,
    )
    class_rows = []
    for priority in sorted(timeline.classes, reverse=True):
        series = timeline.classes[priority]
        worst_slack = (
            f"{min(slack for _, slack in series.slack):.1f}"
            if series.slack
            else "-"
        )
        class_rows.append(
            [
                f"p{priority}",
                str(series.requests),
                str(series.satisfied),
                str(series.cancelled),
                str(series.reopened),
                worst_slack,
            ]
        )
    classes = render_table(
        ["class", "requests", "satisfied", "cancelled", "reopened",
         "worst-slack-s"],
        class_rows,
        title="priority classes",
    )
    losers = [
        timeline.forensics[key]
        for key in sorted(timeline.forensics)
        if timeline.forensics[key].satisfied
        < timeline.forensics[key].observed
    ]
    losers.sort(
        key=lambda ledger: (
            -ledger.priority,
            ledger.deadline,
            ledger.scenario,
            ledger.request_id,
        )
    )
    loser_rows = [
        [
            ledger.scenario,
            str(ledger.request_id),
            f"p{ledger.priority}",
            f"{ledger.deadline:.1f}",
            str(ledger.attempts),
            ledger.dominant_reason() or "-",
        ]
        for ledger in losers[:top]
    ]
    forensics = render_table(
        ["scenario", "request", "class", "deadline", "attempts", "cause"],
        loser_rows,
        title=f"unsatisfied requests (top {min(len(losers), top)} "
        f"of {len(losers)})",
    )
    return "\n\n".join([headline, classes, forensics])
