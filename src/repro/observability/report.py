"""Plain-text rendering of collected scheduler metrics and profiles.

Four renderers, all returning aligned ASCII tables (via the same
:func:`~repro.experiments.tables.render_table` the figure output uses):

* :func:`render_run_metrics` — one aggregate's counters, rejection
  reasons, and timing summaries;
* :func:`render_scheduler_summaries` — one row per scheduler label
  (bookings, attempts, rejection rate, search effort, cache behavior);
* :func:`render_link_utilization` — the busiest virtual links with their
  mean per-run busy time and utilization fraction;
* :func:`render_profile` — one span profile's per-phase wall/CPU
  breakdown, ranked hottest (self wall time) first.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.observability.metrics import RunMetrics
from repro.observability.profiling import Profile


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Delegate to the shared ASCII renderer (imported lazily).

    The import happens at call time because :mod:`repro.experiments`
    imports this package back for metrics collection; a module-level
    import would be circular.
    """
    from repro.experiments.tables import render_table as render

    return render(headers, rows, title=title)


def _rate(part: int, whole: int) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.1f}%"


def render_run_metrics(metrics: RunMetrics, title: str = "metrics") -> str:
    """One aggregate's counters and timings as a two-column table."""
    rows = [
        [key, str(metrics.counter(key))]
        for key in sorted(metrics.counters)
    ]
    for reason in sorted(metrics.rejection_reasons):
        rows.append(
            [f"reason:{reason}", str(metrics.rejection_reasons[reason])]
        )
    decision = metrics.decision_seconds
    if decision.count:
        rows.append(
            ["decision_mean_ms", f"{decision.mean * 1000.0:.3f}"]
        )
        rows.append(["decision_max_ms", f"{decision.max * 1000.0:.3f}"])
    cell = metrics.cell_seconds
    if cell.count:
        rows.append(["cell_mean_s", f"{cell.mean:.3f}"])
        rows.append(["cell_max_s", f"{cell.max:.3f}"])
    if metrics.workers:
        rows.append(["workers", str(len(metrics.workers))])
    return render_table(["metric", "value"], rows, title=title)


def render_scheduler_summaries(
    by_scheduler: Mapping[str, RunMetrics],
    title: str = "per-scheduler metrics",
) -> str:
    """One summary row per scheduler label, sorted by label."""
    rows = []
    for label in sorted(by_scheduler):
        metrics = by_scheduler[label]
        attempts = metrics.counter("booking_attempts")
        rejections = metrics.counter("booking_rejections")
        hits = metrics.counter("tree_cache_hits")
        misses = metrics.counter("tree_cache_misses")
        rows.append(
            [
                label,
                str(metrics.counter("runs")),
                str(metrics.counter("bookings")),
                str(attempts),
                _rate(rejections, attempts),
                str(metrics.counter("dijkstra_searches")),
                str(metrics.counter("edge_relaxations")),
                _rate(hits, hits + misses),
                (
                    f"{metrics.decision_seconds.mean * 1000.0:.3f}"
                    if metrics.decision_seconds.count
                    else "-"
                ),
            ]
        )
    return render_table(
        [
            "scheduler",
            "runs",
            "bookings",
            "attempts",
            "rejected",
            "dijkstra",
            "relax",
            "tree-hit",
            "decision-ms",
        ],
        rows,
        title=title,
    )


def render_profile(
    profile: Profile,
    top: int = 10,
    title: str = "phase profile",
) -> str:
    """The profile's hotspot table: one row per span path.

    Rows rank by self wall time (time in the phase excluding its direct
    children), so a hot parent whose cost lives entirely in a nested
    phase sorts below the child.
    """
    rows = []
    for hotspot in profile.hotspots(top):
        stat = profile.stat(hotspot.path)
        rows.append(
            [
                hotspot.path,
                str(hotspot.count),
                f"{hotspot.self_wall_seconds:.3f}",
                f"{hotspot.total_wall_seconds:.3f}",
                f"{stat.cpu.total:.3f}",
                f"{100.0 * hotspot.share:.1f}%",
            ]
        )
    return render_table(
        ["phase", "count", "self-s", "total-s", "cpu-s", "share"],
        rows,
        title=title,
    )


def render_link_utilization(
    metrics: RunMetrics,
    top: int = 10,
    title: str = "busiest virtual links",
) -> str:
    """The ``top`` busiest links by total booked seconds.

    Utilization is the link's mean booked fraction of its availability
    window per observed run (busy seconds / runs / window seconds), so
    values stay comparable when metrics from many runs were merged.
    """
    runs = max(metrics.counter("runs"), 1)
    ranked = sorted(
        metrics.link_busy_seconds.items(),
        key=lambda pair: (-pair[1], pair[0]),
    )[:top]
    rows = []
    for link_id, busy in ranked:
        window = metrics.link_window_seconds.get(link_id, 0.0)
        utilization = (
            f"{busy / runs / window:.4f}" if window > 0.0 else "-"
        )
        rows.append(
            [
                f"L{link_id}",
                str(metrics.link_transfer_counts.get(link_id, 0)),
                f"{busy:.1f}",
                utilization,
            ]
        )
    return render_table(
        ["link", "transfers", "busy-s", "mean-util"], rows, title=title
    )
