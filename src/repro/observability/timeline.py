"""Simulated-time telemetry: the mergeable :class:`Timeline` document.

The tracer/metrics/profiler stack measures the *solver* — which phase
burned CPU, how many searches ran.  This module measures the *simulated
network*: how saturated each virtual link was at simulated time ``t``,
how receiver storage filled up, how deadline slack eroded per priority
class, and — request by request — *why* a data request ended up
satisfied, cancelled, or unscheduled.

:class:`TimelineCollector` is a
:class:`~repro.observability.tracer.Tracer` observing one scheduler run
on one scenario.  :meth:`TimelineCollector.finalize` snapshots a
:class:`Timeline`, which merges associatively (like
:class:`~repro.observability.metrics.RunMetrics` and
:class:`~repro.observability.profiling.Profile`) so per-cell timelines
from parallel workers combine into sweep totals, and round-trips through
:mod:`repro.serialization` (``timeline_to_dict`` / ``timeline_from_dict``,
schema-versioned by :data:`TIMELINE_SCHEMA_VERSION`).

Three layers of telemetry ride in one document:

* **links/storage** — per-virtual-link booked intervals, attempt and
  rejection tallies, and per-machine storage reservations, from which
  the report derives utilization, oversubscription-ratio, and occupancy
  series over simulated time;
* **classes** — per-priority-class request totals, satisfaction times
  with deadline slack, and pending-queue drain times;
* **forensics** — a per-request lifecycle ledger whose
  :meth:`Timeline.explain` query reconstructs the causal chain (attempts,
  rejection reason codes from
  :data:`~repro.observability.tracer.REASON_CODES`, bookings, fault
  cancellations, reopens) for any request id.

All times in this module are *simulated* seconds — no wall clock is ever
read, so timelines are deterministic and byte-identical across worker
counts and cache replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.scenario import Scenario
from repro.errors import ConfigurationError, ModelError
from repro.observability.tracer import (
    REASON_ALREADY_AT_DESTINATION,
    REASON_LINK_BUSY,
    REASON_LINK_CUTOFF,
    REASON_NEVER_ATTEMPTED,
    REASON_NO_LINK_SLOT,
    REASON_NO_SENDER_COPY,
    REASON_NO_STORAGE,
    REASON_SENDER_NOT_AVAILABLE,
    REASON_SENDER_RELEASED,
    REASON_STORAGE_CONFLICT,
    REASON_WINDOW_CLOSED,
    REASON_WINDOW_ESCAPE,
    Tracer,
    _inherit_hook_docs,
)

#: Version stamp written into every serialized timeline document.
TIMELINE_SCHEMA_VERSION = 1

#: Per-request causal chains keep at most this many events; overflow is
#: *explicitly* counted in ``chain_dropped`` (never silently discarded),
#: and the rejection-reason tallies remain exact regardless.
MAX_CHAIN_EVENTS = 512

#: Human-readable one-liners for every rejection reason code, used by
#: :meth:`Timeline.explain` to annotate the causal chain.
REASON_DESCRIPTIONS: Dict[str, str] = {
    REASON_ALREADY_AT_DESTINATION: (
        "the receiver already held a copy of the item"
    ),
    REASON_WINDOW_CLOSED: (
        "window, residency, or outage cutoff left no room at all"
    ),
    REASON_NO_LINK_SLOT: "the link had no idle slot long enough",
    REASON_NO_STORAGE: (
        "receiver storage could never cover the copy's residency"
    ),
    REASON_NO_SENDER_COPY: "the sender held no copy of the item",
    REASON_SENDER_NOT_AVAILABLE: (
        "the transfer would start before the sender copy exists"
    ),
    REASON_SENDER_RELEASED: (
        "the transfer would outlive the sender copy's residency"
    ),
    REASON_LINK_BUSY: "the link already carried a transfer in the interval",
    REASON_WINDOW_ESCAPE: (
        "the transfer would escape the link's availability window"
    ),
    REASON_LINK_CUTOFF: (
        "the transfer would complete after a dynamic outage cutoff"
    ),
    REASON_STORAGE_CONFLICT: (
        "receiver storage could not cover the copy's residency"
    ),
    REASON_NEVER_ATTEMPTED: (
        "no transfer toward the item was ever attempted while the "
        "request was pending"
    ),
}

#: One causal-chain entry: ``(kind, *fields)`` of JSON scalars.  Kinds:
#: ``attempt(link)``, ``rejected(link, reason)``,
#: ``booked(link, start, end)``, ``booking_failed(link, reason)``,
#: ``satisfied(at_time, hops)``, ``cancelled(at_time)``, ``reopened()``.
ChainEvent = Tuple[Any, ...]


def _merge_tallies(a: Mapping[str, int], b: Mapping[str, int]) -> Dict[str, int]:
    merged = dict(a)
    for key, value in b.items():
        merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class LinkSeries:
    """One virtual link's simulated-time activity.

    Attributes:
        window_start: the link window's opening instant ``Lst``.
        window_end: the link window's closing instant ``Let``.
        attempts: feasibility searches that touched this link.
        rejections: rejection tallies keyed by reason code.
        bookings: booked busy intervals as ``(start, end, item_id)``, in
            emission order (concatenated, never re-sorted, on merge so
            merging stays associative and worker-count independent).
    """

    window_start: float = 0.0
    window_end: float = 0.0
    attempts: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    bookings: List[Tuple[float, float, int]] = field(default_factory=list)

    def merged(self, other: "LinkSeries") -> "LinkSeries":
        """The combined activity of two series (associative)."""
        return LinkSeries(
            window_start=min(self.window_start, other.window_start),
            window_end=max(self.window_end, other.window_end),
            attempts=self.attempts + other.attempts,
            rejections=_merge_tallies(self.rejections, other.rejections),
            bookings=self.bookings + other.bookings,
        )

    @property
    def window_seconds(self) -> float:
        """The window length in simulated seconds."""
        return self.window_end - self.window_start

    @property
    def busy_seconds(self) -> float:
        """Total booked transfer seconds (across all merged runs)."""
        return sum(end - start for start, end, _ in self.bookings)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "window_start": self.window_start,
            "window_end": self.window_end,
            "attempts": self.attempts,
            "rejections": {
                reason: self.rejections[reason]
                for reason in sorted(self.rejections)
            },
            "bookings": [list(entry) for entry in self.bookings],
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "LinkSeries":
        """Rebuild from :meth:`to_dict` output."""
        return LinkSeries(
            window_start=float(document["window_start"]),
            window_end=float(document["window_end"]),
            attempts=int(document["attempts"]),
            rejections={
                str(reason): int(count)
                for reason, count in document["rejections"].items()
            },
            bookings=[
                (float(entry[0]), float(entry[1]), int(entry[2]))
                for entry in document["bookings"]
            ],
        )


@dataclass
class StorageSeries:
    """One machine's receiver-storage reservations over simulated time.

    Attributes:
        capacity: the machine's storage ceiling in bytes.
        reservations: held residencies as
            ``(start, release, amount, item_id)`` in emission order.
    """

    capacity: float = 0.0
    reservations: List[Tuple[float, float, float, int]] = field(
        default_factory=list
    )

    def merged(self, other: "StorageSeries") -> "StorageSeries":
        """The combined reservations of two series (associative)."""
        return StorageSeries(
            capacity=max(self.capacity, other.capacity),
            reservations=self.reservations + other.reservations,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "capacity": self.capacity,
            "reservations": [list(entry) for entry in self.reservations],
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "StorageSeries":
        """Rebuild from :meth:`to_dict` output."""
        return StorageSeries(
            capacity=float(document["capacity"]),
            reservations=[
                (
                    float(entry[0]),
                    float(entry[1]),
                    float(entry[2]),
                    int(entry[3]),
                )
                for entry in document["reservations"]
            ],
        )


@dataclass
class ClassSeries:
    """One priority class's request population over simulated time.

    Attributes:
        requests: requests in this class, summed across merged runs.
        satisfied: satisfaction events observed.
        cancelled: fault-churn cancellations observed.
        reopened: reopen events observed (reopens carry no simulated
            time, so they adjust the counters but not the drain series).
        slack: per-satisfaction ``(arrival, deadline - arrival)`` points
            — the deadline-slack trajectory of the class.
        drains: simulated times at which one request left the pending
            queue (a satisfaction arrival or a cancellation), in
            emission order.
    """

    requests: int = 0
    satisfied: int = 0
    cancelled: int = 0
    reopened: int = 0
    slack: List[Tuple[float, float]] = field(default_factory=list)
    drains: List[float] = field(default_factory=list)

    def merged(self, other: "ClassSeries") -> "ClassSeries":
        """The element-wise combination of two series (associative)."""
        return ClassSeries(
            requests=self.requests + other.requests,
            satisfied=self.satisfied + other.satisfied,
            cancelled=self.cancelled + other.cancelled,
            reopened=self.reopened + other.reopened,
            slack=self.slack + other.slack,
            drains=self.drains + other.drains,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "requests": self.requests,
            "satisfied": self.satisfied,
            "cancelled": self.cancelled,
            "reopened": self.reopened,
            "slack": [list(point) for point in self.slack],
            "drains": list(self.drains),
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "ClassSeries":
        """Rebuild from :meth:`to_dict` output."""
        return ClassSeries(
            requests=int(document["requests"]),
            satisfied=int(document["satisfied"]),
            cancelled=int(document["cancelled"]),
            reopened=int(document["reopened"]),
            slack=[
                (float(point[0]), float(point[1]))
                for point in document["slack"]
            ],
            drains=[float(value) for value in document["drains"]],
        )


@dataclass
class RequestForensics:
    """The full observed lifecycle of one request.

    Item-level events (attempts, rejections, bookings) have no request
    id on the wire; the collector attributes them to every request of
    the item that is still pending at that point in the run, so a
    request's ledger answers "what did the scheduler try *for me*, and
    why did each try fail?".

    Attributes:
        scenario: owning scenario's name.
        request_id: the request's scenario-wide id.
        item_id: the requested data item.
        destination: the requesting machine's index.
        priority: the request's priority class.
        deadline: the request's delivery deadline ``Rft``.
        observed: runs that observed this request (merge counter).
        satisfied: satisfaction events across observed runs.
        cancelled: fault-churn cancellations across observed runs.
        reopened: reopen events across observed runs.
        attempts: feasibility searches for the item while pending.
        bookings: transfers booked for the item while pending.
        rejections: rejection-reason tallies while pending (exact even
            when the chain below is truncated).
        arrivals: ``(arrival, deadline - arrival)`` per satisfaction.
        chain: the causal chain, at most :data:`MAX_CHAIN_EVENTS`
            entries (see :data:`ChainEvent` for the entry forms).
        chain_dropped: chain events dropped past the cap — explicit
            truncation, surfaced by :meth:`Timeline.explain`.
    """

    scenario: str = "scenario"
    request_id: int = 0
    item_id: int = 0
    destination: int = 0
    priority: int = 0
    deadline: float = 0.0
    observed: int = 1
    satisfied: int = 0
    cancelled: int = 0
    reopened: int = 0
    attempts: int = 0
    bookings: int = 0
    rejections: Dict[str, int] = field(default_factory=dict)
    arrivals: List[Tuple[float, float]] = field(default_factory=list)
    chain: List[ChainEvent] = field(default_factory=list)
    chain_dropped: int = 0

    def note_chain(self, event: ChainEvent) -> None:
        """Append one causal-chain entry, honoring the explicit cap."""
        if len(self.chain) < MAX_CHAIN_EVENTS:
            self.chain.append(event)
        else:
            self.chain_dropped += 1

    def merged(self, other: "RequestForensics") -> "RequestForensics":
        """The combined ledger of two observations (associative).

        Chains concatenate keeping the first :data:`MAX_CHAIN_EVENTS`
        entries; the overflow moves into ``chain_dropped`` so the cap
        stays associative (the kept prefix and the dropped count of
        ``(a+b)+c`` and ``a+(b+c)`` coincide).
        """
        chain = self.chain + other.chain
        dropped = self.chain_dropped + other.chain_dropped
        if len(chain) > MAX_CHAIN_EVENTS:
            dropped += len(chain) - MAX_CHAIN_EVENTS
            chain = chain[:MAX_CHAIN_EVENTS]
        return RequestForensics(
            scenario=self.scenario,
            request_id=self.request_id,
            item_id=self.item_id,
            destination=self.destination,
            priority=self.priority,
            deadline=self.deadline,
            observed=self.observed + other.observed,
            satisfied=self.satisfied + other.satisfied,
            cancelled=self.cancelled + other.cancelled,
            reopened=self.reopened + other.reopened,
            attempts=self.attempts + other.attempts,
            bookings=self.bookings + other.bookings,
            rejections=_merge_tallies(self.rejections, other.rejections),
            arrivals=self.arrivals + other.arrivals,
            chain=chain,
            chain_dropped=dropped,
        )

    def dominant_reason(self) -> Optional[str]:
        """The most frequent rejection reason, or
        :data:`~repro.observability.tracer.REASON_NEVER_ATTEMPTED` when
        the request went unsatisfied without a single attempt; ``None``
        for a request satisfied in every observed run."""
        if self.satisfied >= self.observed:
            return None
        if not self.rejections:
            if self.attempts == 0:
                return REASON_NEVER_ATTEMPTED
            return None
        # Highest count wins; ties break lexicographically so the answer
        # is deterministic.
        return min(
            sorted(self.rejections),
            key=lambda reason: (-self.rejections[reason], reason),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "scenario": self.scenario,
            "request_id": self.request_id,
            "item_id": self.item_id,
            "destination": self.destination,
            "priority": self.priority,
            "deadline": self.deadline,
            "observed": self.observed,
            "satisfied": self.satisfied,
            "cancelled": self.cancelled,
            "reopened": self.reopened,
            "attempts": self.attempts,
            "bookings": self.bookings,
            "rejections": {
                reason: self.rejections[reason]
                for reason in sorted(self.rejections)
            },
            "arrivals": [list(point) for point in self.arrivals],
            "chain": [list(event) for event in self.chain],
            "chain_dropped": self.chain_dropped,
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "RequestForensics":
        """Rebuild from :meth:`to_dict` output."""
        return RequestForensics(
            scenario=str(document["scenario"]),
            request_id=int(document["request_id"]),
            item_id=int(document["item_id"]),
            destination=int(document["destination"]),
            priority=int(document["priority"]),
            deadline=float(document["deadline"]),
            observed=int(document["observed"]),
            satisfied=int(document["satisfied"]),
            cancelled=int(document["cancelled"]),
            reopened=int(document["reopened"]),
            attempts=int(document["attempts"]),
            bookings=int(document["bookings"]),
            rejections={
                str(reason): int(count)
                for reason, count in document["rejections"].items()
            },
            arrivals=[
                (float(point[0]), float(point[1]))
                for point in document["arrivals"]
            ],
            chain=[tuple(event) for event in document["chain"]],
            chain_dropped=int(document["chain_dropped"]),
        )


def _forensics_key(scenario: str, request_id: int) -> str:
    """The forensics-ledger key: scenario-qualified so request ids from
    different scenarios in one merged sweep never collide."""
    return f"{scenario}#{request_id}"


@dataclass
class Timeline:
    """The serializable simulated-time telemetry of one (or many merged)
    observed runs.

    Attributes:
        horizon: the scheduling horizon (max across merged scenarios).
        runs: observed runs folded into this document.
        links: per-virtual-link activity keyed by link id.
        storage: per-machine reservation series keyed by machine index.
        classes: per-priority-class series keyed by priority.
        forensics: per-request ledgers keyed ``"<scenario>#<request_id>"``.
    """

    horizon: float = 0.0
    runs: int = 0
    links: Dict[int, LinkSeries] = field(default_factory=dict)
    storage: Dict[int, StorageSeries] = field(default_factory=dict)
    classes: Dict[int, ClassSeries] = field(default_factory=dict)
    forensics: Dict[str, RequestForensics] = field(default_factory=dict)

    # -- merging -----------------------------------------------------------

    def merged(self, other: "Timeline") -> "Timeline":
        """The element-wise combination of two timelines (associative)."""
        links = dict(self.links)
        for link_id, series in other.links.items():
            mine = links.get(link_id)
            links[link_id] = series if mine is None else mine.merged(series)
        storage = dict(self.storage)
        for machine, series in other.storage.items():
            held = storage.get(machine)
            storage[machine] = (
                series if held is None else held.merged(series)
            )
        classes = dict(self.classes)
        for priority, series in other.classes.items():
            mine_cls = classes.get(priority)
            classes[priority] = (
                series if mine_cls is None else mine_cls.merged(series)
            )
        forensics = dict(self.forensics)
        for key, ledger in other.forensics.items():
            mine_led = forensics.get(key)
            forensics[key] = (
                ledger if mine_led is None else mine_led.merged(ledger)
            )
        return Timeline(
            horizon=max(self.horizon, other.horizon),
            runs=self.runs + other.runs,
            links=links,
            storage=storage,
            classes=classes,
            forensics=forensics,
        )

    # -- derived series ----------------------------------------------------

    def _bucket_edges(self, points: int) -> List[float]:
        if points < 1:
            raise ConfigurationError(
                f"timeline series need at least 1 bucket, got {points}"
            )
        horizon = self.horizon if self.horizon > 0 else 1.0
        width = horizon / points
        return [index * width for index in range(points + 1)]

    @staticmethod
    def _overlap(start: float, end: float, lo: float, hi: float) -> float:
        return max(0.0, min(end, hi) - max(start, lo))

    def link_utilization_series(
        self, link_id: int, points: int = 48
    ) -> List[Tuple[float, float]]:
        """Per-run link utilization over simulated time.

        Returns ``points`` pairs ``(bucket_start, fraction)`` where the
        fraction is booked seconds inside the bucket divided by the
        bucket seconds the link's window keeps open, averaged over the
        merged runs (0.0 where the window is closed).
        """
        series = self.links.get(link_id)
        if series is None:
            raise ConfigurationError(
                f"timeline observed no virtual link {link_id}"
            )
        edges = self._bucket_edges(points)
        runs = max(self.runs, 1)
        output: List[Tuple[float, float]] = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            open_seconds = self._overlap(
                series.window_start, series.window_end, lo, hi
            )
            if open_seconds <= 0.0:
                output.append((lo, 0.0))
                continue
            busy = sum(
                self._overlap(start, end, lo, hi)
                for start, end, _ in series.bookings
            )
            output.append((lo, busy / (open_seconds * runs)))
        return output

    def oversubscription_series(
        self, points: int = 48
    ) -> List[Tuple[float, float]]:
        """Network-wide subscription ratio over simulated time.

        For each bucket: summed booked link-seconds across every virtual
        link, divided by the summed open-window link-seconds.  A
        sustained ratio near 1.0 means the open windows are fully
        booked — the oversubscribed regime the paper studies, where
        demand shows up as the rejection tallies rather than more
        bookings.  Buckets where no window is open report 0.0.
        """
        edges = self._bucket_edges(points)
        output: List[Tuple[float, float]] = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            open_seconds = 0.0
            busy = 0.0
            for link_id in sorted(self.links):
                series = self.links[link_id]
                open_seconds += self._overlap(
                    series.window_start, series.window_end, lo, hi
                )
                busy += sum(
                    self._overlap(start, end, lo, hi)
                    for start, end, _ in series.bookings
                )
            runs = max(self.runs, 1)
            ratio = busy / (open_seconds * runs) if open_seconds > 0 else 0.0
            output.append((lo, ratio))
        return output

    def storage_occupancy_series(
        self, machine: int, points: int = 48
    ) -> List[Tuple[float, float]]:
        """Per-run reserved bytes on one machine over simulated time.

        Returns ``points`` pairs ``(bucket_start, bytes)`` sampling the
        summed reserved residencies at each bucket's start, averaged
        over the merged runs.
        """
        series = self.storage.get(machine)
        if series is None:
            raise ConfigurationError(
                f"timeline observed no machine {machine}"
            )
        edges = self._bucket_edges(points)
        runs = max(self.runs, 1)
        output: List[Tuple[float, float]] = []
        for lo in edges[:-1]:
            held = sum(
                amount
                for start, release, amount, _ in series.reservations
                if start <= lo < release
            )
            output.append((lo, held / runs))
        return output

    def pending_depth_series(
        self, priority: int, points: int = 48
    ) -> List[Tuple[float, float]]:
        """Per-run pending-queue depth of one priority class over time.

        Depth at ``t`` is the class's request count minus the drains
        (satisfactions and cancellations) at or before ``t``, averaged
        over the merged runs.  Reopens carry no simulated time on the
        wire, so a reopened request is *not* re-added to the depth (the
        ``reopened`` counter records the undercount).
        """
        series = self.classes.get(priority)
        if series is None:
            raise ConfigurationError(
                f"timeline observed no priority class {priority}"
            )
        edges = self._bucket_edges(points)
        runs = max(self.runs, 1)
        output: List[Tuple[float, float]] = []
        for lo in edges[:-1]:
            drained = sum(1 for when in series.drains if when <= lo)
            output.append((lo, (series.requests - drained) / runs))
        return output

    # -- summaries ---------------------------------------------------------

    def peak_link_utilization(self) -> Tuple[int, float]:
        """``(link_id, fraction)`` of the busiest link overall.

        The fraction is per-run booked seconds over the link's window
        length; ``(-1, 0.0)`` when no link was observed.
        """
        peak_link = -1
        peak = 0.0
        runs = max(self.runs, 1)
        for link_id in sorted(self.links):
            series = self.links[link_id]
            window = series.window_seconds
            if window <= 0.0:
                continue
            fraction = series.busy_seconds / (window * runs)
            if fraction > peak:
                peak = fraction
                peak_link = link_id
        return peak_link, peak

    def total_requests(self) -> int:
        """Requests observed, summed across merged runs."""
        return sum(
            self.classes[priority].requests
            for priority in sorted(self.classes)
        )

    def total_satisfied(self) -> int:
        """Satisfaction events observed, summed across merged runs."""
        return sum(
            self.classes[priority].satisfied
            for priority in sorted(self.classes)
        )

    def top_rejection(self) -> Optional[str]:
        """The most tallied rejection reason across all links."""
        totals: Dict[str, int] = {}
        for link_id in sorted(self.links):
            totals = _merge_tallies(totals, self.links[link_id].rejections)
        if not totals:
            return None
        return min(
            sorted(totals), key=lambda reason: (-totals[reason], reason)
        )

    def summary(self) -> Dict[str, Any]:
        """The compact digest bench documents embed per entry."""
        peak_link, peak = self.peak_link_utilization()
        requests = self.total_requests()
        satisfied = self.total_satisfied()
        return {
            "runs": self.runs,
            "requests": requests,
            "satisfied": satisfied,
            "unsatisfied": requests - satisfied,
            "peak_link": peak_link,
            "peak_utilization": peak,
            "top_rejection": self.top_rejection(),
        }

    # -- forensics ---------------------------------------------------------

    def forensics_for(
        self, request_id: int, scenario: Optional[str] = None
    ) -> RequestForensics:
        """The single ledger for ``request_id``.

        Raises:
            ConfigurationError: when the request was never observed, or
                when the id exists in several merged scenarios and
                ``scenario`` does not disambiguate.
        """
        matches = [
            self.forensics[key]
            for key in sorted(self.forensics)
            if self.forensics[key].request_id == request_id
            and (scenario is None or self.forensics[key].scenario == scenario)
        ]
        if not matches:
            raise ConfigurationError(
                f"timeline holds no forensics for request {request_id}"
                + (f" in scenario {scenario!r}" if scenario else "")
            )
        scenarios = sorted({ledger.scenario for ledger in matches})
        if len(scenarios) > 1:
            raise ConfigurationError(
                f"request {request_id} appears in {len(scenarios)} merged "
                f"scenarios ({', '.join(scenarios)}); pass scenario= to "
                f"disambiguate"
            )
        ledger = matches[0]
        for extra in matches[1:]:
            ledger = ledger.merged(extra)
        return ledger

    def explain(
        self, request_id: int, scenario: Optional[str] = None
    ) -> str:
        """A plain-text reconstruction of one request's causal chain.

        Walks the forensics ledger: identity, final outcome across the
        observed runs, the exact rejection-reason tallies (annotated
        from :data:`REASON_DESCRIPTIONS`), and the event-by-event chain
        (with explicit truncation when the chain overflowed
        :data:`MAX_CHAIN_EVENTS`).
        """
        ledger = self.forensics_for(request_id, scenario)
        lines: List[str] = [
            f"request {ledger.request_id} "
            f"(scenario {ledger.scenario!r}): "
            f"item {ledger.item_id} -> machine {ledger.destination}, "
            f"priority {ledger.priority}, deadline {ledger.deadline:g}",
        ]
        outcome = (
            f"  outcome: satisfied in {ledger.satisfied} of "
            f"{ledger.observed} observed run(s)"
        )
        if ledger.arrivals:
            first = ledger.arrivals[0]
            outcome += f"; first arrival t={first[0]:g} (slack {first[1]:g})"
        if ledger.cancelled:
            outcome += f"; cancelled {ledger.cancelled}x"
        if ledger.reopened:
            outcome += f"; reopened {ledger.reopened}x"
        lines.append(outcome)
        lines.append(
            f"  activity while pending: {ledger.attempts} attempt(s), "
            f"{ledger.bookings} booking(s) toward item {ledger.item_id}"
        )
        dominant = ledger.dominant_reason()
        if ledger.rejections:
            lines.append("  rejection reasons:")
            for reason in sorted(
                ledger.rejections,
                key=lambda name: (-ledger.rejections[name], name),
            ):
                description = REASON_DESCRIPTIONS.get(reason, "")
                lines.append(
                    f"    {reason} x{ledger.rejections[reason]}"
                    + (f" — {description}" if description else "")
                )
        if dominant is not None:
            description = REASON_DESCRIPTIONS.get(dominant, "")
            lines.append(
                f"  dominant cause: {dominant}"
                + (f" — {description}" if description else "")
            )
        if ledger.chain:
            lines.append(
                f"  causal chain ({len(ledger.chain)} event(s)"
                + (
                    f", {ledger.chain_dropped} dropped past the "
                    f"{MAX_CHAIN_EVENTS}-event cap"
                    if ledger.chain_dropped
                    else ""
                )
                + "):"
            )
            for event in ledger.chain:
                lines.append(f"    {_render_chain_event(event)}")
        return "\n".join(lines)

    # -- serialization helpers ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready body (the ``kind``/version stamps are added by
        :func:`repro.serialization.timeline_to_dict`).  All mappings are
        key-sorted so equal timelines serialize byte-identically."""
        return {
            "horizon": self.horizon,
            "runs": self.runs,
            "links": {
                str(link_id): self.links[link_id].to_dict()
                for link_id in sorted(self.links)
            },
            "storage": {
                str(machine): self.storage[machine].to_dict()
                for machine in sorted(self.storage)
            },
            "classes": {
                str(priority): self.classes[priority].to_dict()
                for priority in sorted(self.classes)
            },
            "forensics": {
                key: self.forensics[key].to_dict()
                for key in sorted(self.forensics)
            },
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "Timeline":
        """Rebuild from :meth:`to_dict` output."""
        return Timeline(
            horizon=float(document["horizon"]),
            runs=int(document["runs"]),
            links={
                int(link_id): LinkSeries.from_dict(series)
                for link_id, series in document["links"].items()
            },
            storage={
                int(machine): StorageSeries.from_dict(series)
                for machine, series in document["storage"].items()
            },
            classes={
                int(priority): ClassSeries.from_dict(series)
                for priority, series in document["classes"].items()
            },
            forensics={
                str(key): RequestForensics.from_dict(ledger)
                for key, ledger in document["forensics"].items()
            },
        )


def _render_chain_event(event: ChainEvent) -> str:
    """One causal-chain entry as a human-readable line."""
    kind = event[0]
    if kind == "attempt":
        return f"attempt link={event[1]}"
    if kind == "rejected":
        return f"rejected link={event[1]} reason={event[2]}"
    if kind == "booked":
        return f"booked link={event[1]} [{event[2]:g}, {event[3]:g})"
    if kind == "booking_failed":
        return f"booking failed link={event[1]} reason={event[2]}"
    if kind == "satisfied":
        return f"satisfied at t={event[1]:g} (hops={event[2]})"
    if kind == "cancelled":
        return f"cancelled at t={event[1]:g}"
    if kind == "reopened":
        return "reopened (satisfaction undone)"
    return " ".join(str(part) for part in event)


def merge_timelines(parts: Iterable[Optional[Timeline]]) -> Timeline:
    """Fold many (possibly ``None``) timelines into one."""
    total = Timeline()
    for part in parts:
        if part is not None:
            total = total.merged(part)
    return total


@_inherit_hook_docs
class TimelineCollector(Tracer):
    """A tracer folding one run's trace stream into a :class:`Timeline`.

    The collector needs the scenario up front: the static structure
    (link windows, storage capacities, the request table) seeds the
    document, and the request table drives the forensics attribution —
    item-level events are credited to every request of that item still
    pending when the event fires.

    One collector observes one scheduler run on one scenario (the
    executor builds one per sweep cell); reuse across runs would
    double-seed the static structure.
    """

    def __init__(self, scenario: Scenario) -> None:
        timeline = Timeline(horizon=scenario.horizon, runs=1)
        for link in scenario.network.virtual_links:
            timeline.links[link.link_id] = LinkSeries(
                window_start=link.start, window_end=link.end
            )
        for machine in scenario.network.machines:
            timeline.storage[machine.index] = StorageSeries(
                capacity=machine.capacity
            )
        pending: Dict[int, List[int]] = {}
        keys: Dict[int, str] = {}
        for request in scenario.requests:
            series = timeline.classes.get(request.priority)
            if series is None:
                series = ClassSeries()
                timeline.classes[request.priority] = series
            series.requests += 1
            key = _forensics_key(scenario.name, request.request_id)
            timeline.forensics[key] = RequestForensics(
                scenario=scenario.name,
                request_id=request.request_id,
                item_id=request.item_id,
                destination=request.destination,
                priority=request.priority,
                deadline=request.deadline,
            )
            pending.setdefault(request.item_id, []).append(
                request.request_id
            )
            keys[request.request_id] = key
        for request_ids in pending.values():
            request_ids.sort()
        self._timeline = timeline
        self._scenario = scenario
        self._pending = pending
        self._keys = keys

    def _pending_ledgers(self, item_id: int) -> List[RequestForensics]:
        return [
            self._timeline.forensics[self._keys[request_id]]
            for request_id in self._pending.get(item_id, [])
        ]

    def _ledger(self, request_id: int) -> Optional[RequestForensics]:
        key = self._keys.get(request_id)
        if key is None:
            return None
        return self._timeline.forensics[key]

    # -- booking ----------------------------------------------------------

    def on_transfer_attempt(self, item_id: int, link_id: int) -> None:
        series = self._timeline.links.get(link_id)
        if series is not None:
            series.attempts += 1
        for ledger in self._pending_ledgers(item_id):
            ledger.attempts += 1
            ledger.note_chain(("attempt", link_id))

    def on_transfer_rejected(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        series = self._timeline.links.get(link_id)
        if series is not None:
            series.rejections[reason] = (
                series.rejections.get(reason, 0) + 1
            )
        for ledger in self._pending_ledgers(item_id):
            ledger.rejections[reason] = (
                ledger.rejections.get(reason, 0) + 1
            )
            ledger.note_chain(("rejected", link_id, reason))

    def on_transfer_booked(
        self,
        item_id: int,
        link_id: int,
        start: float,
        end: float,
        window_seconds: float,
    ) -> None:
        series = self._timeline.links.get(link_id)
        if series is not None:
            series.bookings.append((start, end, item_id))
        for ledger in self._pending_ledgers(item_id):
            ledger.bookings += 1
            ledger.note_chain(("booked", link_id, start, end))

    def on_booking_failed(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        series = self._timeline.links.get(link_id)
        if series is not None:
            series.rejections[reason] = (
                series.rejections.get(reason, 0) + 1
            )
        for ledger in self._pending_ledgers(item_id):
            ledger.rejections[reason] = (
                ledger.rejections.get(reason, 0) + 1
            )
            ledger.note_chain(("booking_failed", link_id, reason))

    # -- storage -----------------------------------------------------------

    def on_storage_reserved(
        self, item_id: int, machine: int, amount: float, start: float, release: float
    ) -> None:
        series = self._timeline.storage.get(machine)
        if series is not None:
            series.reservations.append((start, release, amount, item_id))

    # -- request lifecycle -------------------------------------------------

    def on_request_satisfied(
        self, request_id: int, at_time: float, hops: int
    ) -> None:
        ledger = self._ledger(request_id)
        if ledger is None:
            return
        ledger.satisfied += 1
        slack = ledger.deadline - at_time
        ledger.arrivals.append((at_time, slack))
        ledger.note_chain(("satisfied", at_time, hops))
        series = self._timeline.classes[ledger.priority]
        series.satisfied += 1
        series.slack.append((at_time, slack))
        series.drains.append(at_time)
        self._drop_pending(ledger.item_id, request_id)

    def on_request_cancelled(self, request_id: int, at_time: float) -> None:
        ledger = self._ledger(request_id)
        if ledger is None:
            return
        ledger.cancelled += 1
        ledger.note_chain(("cancelled", at_time))
        series = self._timeline.classes[ledger.priority]
        series.cancelled += 1
        series.drains.append(at_time)
        self._drop_pending(ledger.item_id, request_id)

    def on_request_reopened(self, request_id: int) -> None:
        ledger = self._ledger(request_id)
        if ledger is None:
            return
        ledger.reopened += 1
        ledger.note_chain(("reopened",))
        self._timeline.classes[ledger.priority].reopened += 1
        waiting = self._pending.setdefault(ledger.item_id, [])
        if request_id not in waiting:
            waiting.append(request_id)
            waiting.sort()

    def _drop_pending(self, item_id: int, request_id: int) -> None:
        waiting = self._pending.get(item_id)
        if waiting is not None and request_id in waiting:
            waiting.remove(request_id)

    def finalize(self) -> Timeline:
        """The collected timeline document."""
        return self._timeline


# -- document validation -----------------------------------------------------

def _check_int(document: Mapping[str, Any], key: str, context: str) -> None:
    value = document.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ModelError(
            f"timeline document {context}.{key} has invalid value {value!r}"
        )


def _check_number(
    document: Mapping[str, Any], key: str, context: str
) -> None:
    value = document.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ModelError(
            f"timeline document {context}.{key} has invalid value {value!r}"
        )


def _check_rows(
    document: Mapping[str, Any],
    key: str,
    context: str,
    width: int,
) -> None:
    rows = document.get(key)
    if not isinstance(rows, list):
        raise ModelError(
            f"timeline document {context}.{key} must be a list"
        )
    for row in rows:
        if not isinstance(row, (list, tuple)) or len(row) != width:
            raise ModelError(
                f"timeline document {context}.{key} has a malformed row "
                f"{row!r} (expected {width} columns)"
            )


def validate_timeline_document(document: Mapping[str, Any]) -> None:
    """Structurally validate a parsed timeline JSON document.

    Raises:
        ModelError: on a wrong kind, unsupported schema version, or any
            structurally invalid field.  Returns silently when the
            document conforms to the :data:`TIMELINE_SCHEMA_VERSION`
            layout produced by
            :func:`repro.serialization.timeline_to_dict`.
    """
    if document.get("kind") != "timeline":
        raise ModelError(
            f"expected a timeline document, got "
            f"kind={document.get('kind')!r}"
        )
    if document.get("schema_version") != TIMELINE_SCHEMA_VERSION:
        raise ModelError(
            f"unsupported timeline schema version "
            f"{document.get('schema_version')!r} "
            f"(expected {TIMELINE_SCHEMA_VERSION})"
        )
    _check_number(document, "horizon", "timeline")
    _check_int(document, "runs", "timeline")
    for key in ("links", "storage", "classes", "forensics"):
        mapping = document.get(key)
        if not isinstance(mapping, Mapping):
            raise ModelError(
                f"timeline document key {key!r} must be a mapping"
            )
    for link_id, series in document["links"].items():
        context = f"links[{link_id}]"
        _check_number(series, "window_start", context)
        _check_number(series, "window_end", context)
        _check_int(series, "attempts", context)
        if not isinstance(series.get("rejections"), Mapping):
            raise ModelError(
                f"timeline document {context}.rejections must be a mapping"
            )
        _check_rows(series, "bookings", context, 3)
    for machine, series in document["storage"].items():
        context = f"storage[{machine}]"
        _check_number(series, "capacity", context)
        _check_rows(series, "reservations", context, 4)
    for priority, series in document["classes"].items():
        context = f"classes[{priority}]"
        for key in ("requests", "satisfied", "cancelled", "reopened"):
            _check_int(series, key, context)
        _check_rows(series, "slack", context, 2)
        if not isinstance(series.get("drains"), list):
            raise ModelError(
                f"timeline document {context}.drains must be a list"
            )
    for key, ledger in document["forensics"].items():
        context = f"forensics[{key}]"
        if not isinstance(ledger.get("scenario"), str):
            raise ModelError(
                f"timeline document {context}.scenario must be a string"
            )
        for int_key in (
            "request_id",
            "item_id",
            "destination",
            "priority",
            "observed",
            "satisfied",
            "cancelled",
            "reopened",
            "attempts",
            "bookings",
            "chain_dropped",
        ):
            _check_int(ledger, int_key, context)
        _check_number(ledger, "deadline", context)
        if not isinstance(ledger.get("rejections"), Mapping):
            raise ModelError(
                f"timeline document {context}.rejections must be a mapping"
            )
        _check_rows(ledger, "arrivals", context, 2)
        if not isinstance(ledger.get("chain"), list):
            raise ModelError(
                f"timeline document {context}.chain must be a list"
            )
