"""The tracer hook protocol and its built-in implementations.

Event sites in the scheduler core guard every emission with
``if tracer.enabled:`` so the disabled path costs one attribute load and
one branch — no event objects are ever allocated unless a real tracer is
installed.  Hooks are named methods (not a generic ``emit(event)``) so a
:class:`~repro.observability.metrics.MetricsCollector` can aggregate by
bumping plain integers without building dictionaries on the hot path.

Event taxonomy (one hook per event kind; see ``docs/OBSERVABILITY.md``):

====================  =====================================================
hook                  emitted by
====================  =====================================================
on_transfer_attempt   ``NetworkState.earliest_transfer`` entry
on_transfer_rejected  ``earliest_transfer`` infeasible exit (reason code)
on_transfer_booked    ``NetworkState.book_transfer`` success
on_booking_failed     ``book_transfer`` raising (reason code)
on_copy_removed       ``NetworkState.remove_copy``
on_request_reopened   ``NetworkState.reopen_request``
on_link_disabled      ``NetworkState.disable_link_from``
on_dijkstra           one shortest-path-tree computation
on_tree_cache         ``TreeCache.entry_for`` (hit or miss)
on_item_scored        candidate enumeration for one item
on_decision           one scheduled outer-loop choice (with timing)
on_run_end            one finished heuristic run
on_cell               one executor grid cell (run-cache hit or computed)
on_span_start         ``repro.observability.profiling.span`` entry
on_span_end           ``span`` exit (wall + CPU duration, exception-safe)
on_faults_applied     ``NetworkState`` applied a fault plan at construction
on_request_cancelled  dynamic driver withdrew a request (churn fault)
on_cell_retry         executor retried a cell after a transient failure
on_cache_quarantined  executor quarantined a corrupted run-cache record
on_request_satisfied  ``NetworkState`` delivered a copy satisfying a request
on_storage_reserved   ``book_transfer`` reserved receiver storage
====================  =====================================================
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

# -- reason codes -----------------------------------------------------------

#: ``earliest_transfer``: the receiver already holds a copy.
REASON_ALREADY_AT_DESTINATION = "already_at_destination"
#: ``earliest_transfer``: window/residency/cutoff leave no room at all.
REASON_WINDOW_CLOSED = "window_closed"
#: ``earliest_transfer``: the link has no idle slot long enough.
REASON_NO_LINK_SLOT = "no_link_slot"
#: ``earliest_transfer``: receiver storage can never cover the residency.
REASON_NO_STORAGE = "no_storage"
#: ``book_transfer``: the sender holds no copy of the item.
REASON_NO_SENDER_COPY = "no_sender_copy"
#: ``book_transfer``: the transfer starts before the sender copy exists.
REASON_SENDER_NOT_AVAILABLE = "sender_not_available"
#: ``book_transfer``: the transfer outlives the sender copy's residency.
REASON_SENDER_RELEASED = "sender_released"
#: ``book_transfer``: the link already carries a transfer in the interval.
REASON_LINK_BUSY = "link_busy"
#: ``book_transfer``: the transfer escapes the link's availability window.
REASON_WINDOW_ESCAPE = "window_escape"
#: ``book_transfer``: the transfer completes after a dynamic outage cutoff.
REASON_LINK_CUTOFF = "link_cutoff"
#: ``book_transfer``: receiver storage cannot cover the copy's residency.
REASON_STORAGE_CONFLICT = "storage_conflict"
#: Timeline forensics: the request's item never reached a feasibility
#: search — the scheduler ran out of budget (or pruned the item) before
#: any transfer toward it was even attempted.
REASON_NEVER_ATTEMPTED = "never_attempted"

# -- tree-cache outcome reasons ---------------------------------------------
#
# Every ``on_tree_cache`` event carries one of these codes explaining why
# the cache served (hit) or recomputed (miss) an item's tree.  They form
# their own registry (:data:`TREE_CACHE_REASONS`) separate from the
# booking :data:`REASON_CODES`.

#: Hit: no availability-removing mutation occurred since the snapshot.
TREE_CACHE_CLEAN = "clean"
#: Hit: mutations occurred but provably miss the tree's footprint.
TREE_CACHE_REVALIDATED = "revalidated"
#: Miss: the item had no cached tree yet.
TREE_CACHE_COLD = "cold"
#: Miss: caching is disabled (recompute-every-iteration mode).
TREE_CACHE_DISABLED = "disabled"
#: Miss: the item's own copy/request set changed (seeds or targets moved).
TREE_CACHE_ITEM_CHANGED = "item_changed"
#: Miss: storage capacity was returned somewhere (global invalidation).
TREE_CACHE_CAPACITY_RELEASED = "capacity_released"
#: Miss: a booking's busy interval overlaps a planned hop on a footprint
#: link.
TREE_CACHE_LINK_CONFLICT = "link_conflict"
#: Miss: an outage cutoff tightened below a planned hop's completion.
TREE_CACHE_CUTOFF_TIGHTENED = "cutoff_tightened"
#: Miss: a new storage reservation breaks a planned residency on a
#: footprint machine.
TREE_CACHE_RESIDENCY_CONFLICT = "residency_conflict"
#: Miss: a bandwidth degradation changed transfer durations globally
#: (degradation epoch moved — not journalled, not footprint-checkable).
TREE_CACHE_BANDWIDTH_DEGRADED = "bandwidth_degraded"

#: All event names a materializing tracer may emit — the registry the
#: ``repro.staticcheck`` R3 rule checks string literals against.  One
#: entry per hook in the taxonomy table above; readers filtering events
#: (``RecordingTracer.named``) must use names from this tuple.
EVENT_NAMES: Tuple[str, ...] = (
    "transfer_attempt",
    "transfer_rejected",
    "transfer_booked",
    "booking_failed",
    "copy_removed",
    "request_reopened",
    "link_disabled",
    "dijkstra",
    "tree_cache",
    "item_scored",
    "decision",
    "run_end",
    "cell",
    "span_start",
    "span_end",
    "faults_applied",
    "request_cancelled",
    "cell_retry",
    "cache_quarantined",
    "request_satisfied",
    "storage_reserved",
)

#: All reason codes a rejection/failure event may carry.
REASON_CODES: Tuple[str, ...] = (
    REASON_ALREADY_AT_DESTINATION,
    REASON_WINDOW_CLOSED,
    REASON_NO_LINK_SLOT,
    REASON_NO_STORAGE,
    REASON_NO_SENDER_COPY,
    REASON_SENDER_NOT_AVAILABLE,
    REASON_SENDER_RELEASED,
    REASON_LINK_BUSY,
    REASON_WINDOW_ESCAPE,
    REASON_LINK_CUTOFF,
    REASON_STORAGE_CONFLICT,
    REASON_NEVER_ATTEMPTED,
)

#: All outcome codes a ``tree_cache`` event may carry.  The first two are
#: hits; the rest explain why a tree was recomputed.
TREE_CACHE_REASONS: Tuple[str, ...] = (
    TREE_CACHE_CLEAN,
    TREE_CACHE_REVALIDATED,
    TREE_CACHE_COLD,
    TREE_CACHE_DISABLED,
    TREE_CACHE_ITEM_CHANGED,
    TREE_CACHE_CAPACITY_RELEASED,
    TREE_CACHE_LINK_CONFLICT,
    TREE_CACHE_CUTOFF_TIGHTENED,
    TREE_CACHE_RESIDENCY_CONFLICT,
    TREE_CACHE_BANDWIDTH_DEGRADED,
)


class Tracer:
    """Base tracer: enabled, every hook a no-op.

    Subclass and override the hooks you care about.  ``enabled`` is read
    on the hot path before any hook is called; a subclass that sets it to
    ``False`` receives no events at all.
    """

    #: Event sites skip emission entirely when this is ``False``.
    enabled: bool = True

    # -- booking ----------------------------------------------------------

    def on_transfer_attempt(self, item_id: int, link_id: int) -> None:
        """A feasibility search started on one (item, virtual link) pair."""

    def on_transfer_rejected(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        """A feasibility search found no feasible start (reason code)."""

    def on_transfer_booked(
        self,
        item_id: int,
        link_id: int,
        start: float,
        end: float,
        window_seconds: float,
    ) -> None:
        """A transfer was booked onto a virtual link."""

    def on_booking_failed(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        """``book_transfer`` rejected a stale plan (reason code)."""

    # -- state surgery ----------------------------------------------------

    def on_copy_removed(
        self, item_id: int, machine: int, at_time: float
    ) -> None:
        """A resident copy was removed (dynamic loss / GC release)."""

    def on_request_reopened(self, request_id: int) -> None:
        """A previously satisfied request became unsatisfied again."""

    def on_link_disabled(self, link_id: int, at_time: float) -> None:
        """A virtual link received a dynamic outage cutoff."""

    # -- routing ----------------------------------------------------------

    def on_dijkstra(
        self,
        item_id: int,
        relaxations: int,
        pruned: int,
        finalized: int,
        seeds: int,
        compiled: bool = False,
    ) -> None:
        """One adapted-Dijkstra search finished (with search effort).

        ``compiled`` reports which kernel ran: the array-backed
        :mod:`repro.routing.compiled` path or the reference
        object-walking loop.  The two are byte-identical in every other
        observable, so this flag is the only way a trace reveals the
        kernel choice.
        """

    # -- engine -----------------------------------------------------------

    def on_tree_cache(self, item_id: int, hit: bool, reason: str) -> None:
        """The tree cache answered a request (hit or recompute).

        ``reason`` is one of :data:`TREE_CACHE_REASONS` and explains the
        outcome: how a hit was justified (``clean`` / ``revalidated``) or
        which mutation class forced the recompute.
        """

    def on_item_scored(self, item_id: int, candidates: int) -> None:
        """An item's candidate groups were enumerated and priced."""

    def on_decision(
        self,
        item_id: int,
        next_machine: int,
        cost: float,
        hops: int,
        elapsed_seconds: float,
    ) -> None:
        """One outer-loop decision was taken (choose + execute timing)."""

    def on_run_end(self, label: str, elapsed_seconds: float) -> None:
        """One heuristic run completed."""

    # -- executor ---------------------------------------------------------

    def on_cell(
        self,
        index: int,
        scheduler: str,
        cache_hit: bool,
        elapsed_seconds: float,
    ) -> None:
        """One sweep grid cell was resolved (computed or replayed)."""

    # -- profiling --------------------------------------------------------

    def on_span_start(self, name: str) -> None:
        """A profiling span opened (see :mod:`repro.observability.profiling`).

        Spans are emitted by the :func:`~repro.observability.profiling.span`
        context manager; starts and ends pair up even when the spanned code
        raises, and spans nest (the pairings form a well-bracketed
        sequence), so a collector may maintain a stack.
        """

    def on_span_end(
        self, name: str, wall_seconds: float, cpu_seconds: float
    ) -> None:
        """The matching profiling span closed (wall + CPU duration)."""

    # -- fault injection and robustness -----------------------------------

    def on_faults_applied(
        self, masked_windows: int, degraded_links: int
    ) -> None:
        """A :class:`~repro.faults.plan.FaultPlan` was applied to a state.

        ``masked_windows`` counts the busy intervals pre-booked by outage
        windows (one per affected virtual link window); ``degraded_links``
        counts virtual links running below nominal bandwidth.
        """

    def on_request_cancelled(self, request_id: int, at_time: float) -> None:
        """The dynamic driver withdrew a request (cancellation churn)."""

    def on_cell_retry(self, index: int, attempt: int, error: str) -> None:
        """The executor is retrying cell ``index`` after a transient
        worker failure (``error`` is the exception class name)."""

    def on_cache_quarantined(self, path: str) -> None:
        """A corrupted run-cache record was renamed aside and will be
        recomputed (``path`` is the quarantined file)."""

    # -- simulated-time telemetry ------------------------------------------

    def on_request_satisfied(
        self, request_id: int, at_time: float, hops: int
    ) -> None:
        """A delivered copy satisfied a pending request.

        ``at_time`` is the copy's arrival (simulated time); ``hops`` is
        the staging depth of the delivered copy.  Reopening the request
        later (:meth:`on_request_reopened`) undoes the satisfaction.
        """

    def on_storage_reserved(
        self, item_id: int, machine: int, amount: float, start: float, release: float
    ) -> None:
        """``book_transfer`` reserved receiver storage for a new copy.

        ``amount`` bytes are held on ``machine`` over the simulated-time
        residency ``[start, release)`` (``release`` may be the horizon
        when the copy never expires).
        """


def _inherit_hook_docs(cls: type) -> type:
    """Copy hook docstrings from :class:`Tracer` onto bare overrides.

    Hook semantics are defined once on the base protocol; implementations
    stay docstring-free without losing introspectable documentation.
    """
    for name, attr in vars(cls).items():
        if name.startswith("on_") and attr.__doc__ is None:
            base = getattr(Tracer, name, None)
            if base is not None:
                attr.__doc__ = base.__doc__
    return cls


class NullTracer(Tracer):
    """The default disabled tracer — every event site short-circuits."""

    enabled = False


#: Shared disabled tracer; ambient default for every process.
NULL_TRACER = NullTracer()

_current: List[Tracer] = [NULL_TRACER]


def current_tracer() -> Tracer:
    """The ambient tracer of this process (``NULL_TRACER`` by default)."""
    return _current[-1]


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` block.

    Nesting is supported (the previous tracer is restored on exit).  The
    ambient tracer is captured by :class:`~repro.core.state.NetworkState`
    at construction, so runs started inside the block are observed even
    when they outlive it.
    """
    _current.append(tracer)
    try:
        yield tracer
    finally:
        _current.pop()


@dataclass(frozen=True)
class TraceEvent:
    """One materialized event: a name plus its payload fields."""

    name: str
    fields: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        """The event as a JSON-ready dict (``event`` key first)."""
        document: Dict[str, Any] = {"event": self.name}
        document.update(self.fields)
        return document

    def __getitem__(self, key: str) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        raise KeyError(key)


@_inherit_hook_docs
class _EventTracer(Tracer):
    """Shared hook bodies for tracers that materialize generic events.

    Every hook funnels into :meth:`_event` with the event name and its
    payload fields; subclasses decide what an event *becomes* — an
    in-memory :class:`TraceEvent` (:class:`RecordingTracer`) or one JSON
    line on disk (:class:`JsonlTracer`).
    """

    def _event(self, name: str, **fields: Any) -> None:
        raise NotImplementedError

    # Hook implementations -------------------------------------------------

    def on_transfer_attempt(self, item_id: int, link_id: int) -> None:
        self._event("transfer_attempt", item_id=item_id, link_id=link_id)

    def on_transfer_rejected(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        self._event(
            "transfer_rejected",
            item_id=item_id,
            link_id=link_id,
            reason=reason,
        )

    def on_transfer_booked(
        self,
        item_id: int,
        link_id: int,
        start: float,
        end: float,
        window_seconds: float,
    ) -> None:
        self._event(
            "transfer_booked",
            item_id=item_id,
            link_id=link_id,
            start=start,
            end=end,
            window_seconds=window_seconds,
        )

    def on_booking_failed(
        self, item_id: int, link_id: int, reason: str
    ) -> None:
        self._event(
            "booking_failed", item_id=item_id, link_id=link_id, reason=reason
        )

    def on_copy_removed(
        self, item_id: int, machine: int, at_time: float
    ) -> None:
        self._event(
            "copy_removed", item_id=item_id, machine=machine, at_time=at_time
        )

    def on_request_reopened(self, request_id: int) -> None:
        self._event("request_reopened", request_id=request_id)

    def on_link_disabled(self, link_id: int, at_time: float) -> None:
        self._event("link_disabled", link_id=link_id, at_time=at_time)

    def on_dijkstra(
        self,
        item_id: int,
        relaxations: int,
        pruned: int,
        finalized: int,
        seeds: int,
        compiled: bool = False,
    ) -> None:
        self._event(
            "dijkstra",
            item_id=item_id,
            relaxations=relaxations,
            pruned=pruned,
            finalized=finalized,
            seeds=seeds,
            compiled=compiled,
        )

    def on_tree_cache(self, item_id: int, hit: bool, reason: str) -> None:
        self._event("tree_cache", item_id=item_id, hit=hit, reason=reason)

    def on_item_scored(self, item_id: int, candidates: int) -> None:
        self._event("item_scored", item_id=item_id, candidates=candidates)

    def on_decision(
        self,
        item_id: int,
        next_machine: int,
        cost: float,
        hops: int,
        elapsed_seconds: float,
    ) -> None:
        self._event(
            "decision",
            item_id=item_id,
            next_machine=next_machine,
            cost=cost,
            hops=hops,
            elapsed_seconds=elapsed_seconds,
        )

    def on_run_end(self, label: str, elapsed_seconds: float) -> None:
        self._event("run_end", label=label, elapsed_seconds=elapsed_seconds)

    def on_cell(
        self,
        index: int,
        scheduler: str,
        cache_hit: bool,
        elapsed_seconds: float,
    ) -> None:
        self._event(
            "cell",
            index=index,
            scheduler=scheduler,
            cache_hit=cache_hit,
            elapsed_seconds=elapsed_seconds,
        )

    def on_span_start(self, name: str) -> None:
        self._event("span_start", span=name)

    def on_span_end(
        self, name: str, wall_seconds: float, cpu_seconds: float
    ) -> None:
        self._event(
            "span_end",
            span=name,
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
        )

    def on_faults_applied(
        self, masked_windows: int, degraded_links: int
    ) -> None:
        self._event(
            "faults_applied",
            masked_windows=masked_windows,
            degraded_links=degraded_links,
        )

    def on_request_cancelled(self, request_id: int, at_time: float) -> None:
        self._event(
            "request_cancelled", request_id=request_id, at_time=at_time
        )

    def on_cell_retry(self, index: int, attempt: int, error: str) -> None:
        self._event("cell_retry", index=index, attempt=attempt, error=error)

    def on_cache_quarantined(self, path: str) -> None:
        self._event("cache_quarantined", path=path)

    def on_request_satisfied(
        self, request_id: int, at_time: float, hops: int
    ) -> None:
        self._event(
            "request_satisfied",
            request_id=request_id,
            at_time=at_time,
            hops=hops,
        )

    def on_storage_reserved(
        self, item_id: int, machine: int, amount: float, start: float, release: float
    ) -> None:
        self._event(
            "storage_reserved",
            item_id=item_id,
            machine=machine,
            amount=amount,
            start=start,
            release=release,
        )


class RecordingTracer(_EventTracer):
    """Materializes every event as a :class:`TraceEvent` in memory.

    Intended for tests and interactive inspection; for long runs prefer
    :class:`JsonlTracer` (bounded memory) or
    :class:`~repro.observability.metrics.MetricsCollector` (aggregates).
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def _event(self, name: str, **fields: Any) -> None:
        self.events.append(TraceEvent(name=name, fields=tuple(fields.items())))

    def named(self, name: str) -> List[TraceEvent]:
        """All recorded events of one kind, in emission order."""
        return [event for event in self.events if event.name == name]


class JsonlTracer(_EventTracer):
    """Streams events to a JSON-lines file instead of keeping them.

    One compact JSON object per line, ``{"event": <name>, ...fields}``.
    The tracer is also a context manager; use :meth:`close` (or the
    ``with`` block) to flush and release the file handle.

    Events are *not* retained in memory (that is the point — a ci-scale
    figure emits millions).  Accessing :attr:`events` or calling
    :meth:`named` raises :class:`~repro.errors.ConfigurationError` rather
    than silently answering ``[]``; tee a :class:`RecordingTracer`
    alongside when in-memory inspection is also needed.
    """

    def __init__(self, path: Union[str, Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._stream: IO[str] = path  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = Path(path).open("w", encoding="utf-8")
            self._owns_stream = True

    def _event(self, name: str, **fields: Any) -> None:
        document: Dict[str, Any] = {"event": name}
        document.update(fields)
        self._stream.write(
            json.dumps(document, separators=(",", ":")) + "\n"
        )

    @property
    def events(self) -> List[TraceEvent]:
        """Unsupported — streamed events are not retained.

        Raises:
            ConfigurationError: always; see the class docstring.
        """
        raise ConfigurationError(
            "JsonlTracer streams events to disk and retains none in "
            "memory; use a RecordingTracer (or a TeeTracer fanning out to "
            "both) to inspect events after the run"
        )

    def named(self, name: str) -> List[TraceEvent]:
        """Unsupported — streamed events are not retained.

        Raises:
            ConfigurationError: always; see the class docstring.
        """
        raise ConfigurationError(
            "JsonlTracer streams events to disk and retains none in "
            "memory; named() has nothing to filter — use a "
            "RecordingTracer (or a TeeTracer fanning out to both)"
        )

    def close(self) -> None:
        """Flush buffered lines and close an owned file handle."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@_inherit_hook_docs
@dataclass
class TeeTracer(Tracer):
    """Fans every event out to several child tracers.

    Disabled children are skipped; the tee itself reports ``enabled``
    as "any child enabled" so event sites short-circuit when all
    children are off.
    """

    children: Sequence[Tracer] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.children = tuple(self.children)

    @property  # type: ignore[override]
    def enabled(self) -> bool:
        """``True`` iff any child is enabled, recomputed on every read.

        A property (not a snapshot taken at construction) so a child
        toggling its own ``enabled`` after the tee is built is honored;
        when every child is a :class:`NullTracer` the tee reports
        disabled and event sites allocate nothing.
        """
        return any(child.enabled for child in self.children)

    def _fan_out(self, method: str, *args: Any, **kwargs: Any) -> None:
        for child in self.children:
            if child.enabled:
                getattr(child, method)(*args, **kwargs)

    def on_transfer_attempt(self, *args: Any) -> None:
        self._fan_out("on_transfer_attempt", *args)

    def on_transfer_rejected(self, *args: Any) -> None:
        self._fan_out("on_transfer_rejected", *args)

    def on_transfer_booked(self, *args: Any) -> None:
        self._fan_out("on_transfer_booked", *args)

    def on_booking_failed(self, *args: Any) -> None:
        self._fan_out("on_booking_failed", *args)

    def on_copy_removed(self, *args: Any) -> None:
        self._fan_out("on_copy_removed", *args)

    def on_request_reopened(self, *args: Any) -> None:
        self._fan_out("on_request_reopened", *args)

    def on_link_disabled(self, *args: Any) -> None:
        self._fan_out("on_link_disabled", *args)

    def on_dijkstra(self, *args: Any, **kwargs: Any) -> None:
        self._fan_out("on_dijkstra", *args, **kwargs)

    def on_tree_cache(self, *args: Any) -> None:
        self._fan_out("on_tree_cache", *args)

    def on_item_scored(self, *args: Any) -> None:
        self._fan_out("on_item_scored", *args)

    def on_decision(self, *args: Any) -> None:
        self._fan_out("on_decision", *args)

    def on_run_end(self, *args: Any) -> None:
        self._fan_out("on_run_end", *args)

    def on_cell(self, *args: Any) -> None:
        self._fan_out("on_cell", *args)

    def on_span_start(self, *args: Any) -> None:
        self._fan_out("on_span_start", *args)

    def on_span_end(self, *args: Any) -> None:
        self._fan_out("on_span_end", *args)

    def on_faults_applied(self, *args: Any) -> None:
        self._fan_out("on_faults_applied", *args)

    def on_request_cancelled(self, *args: Any) -> None:
        self._fan_out("on_request_cancelled", *args)

    def on_cell_retry(self, *args: Any) -> None:
        self._fan_out("on_cell_retry", *args)

    def on_cache_quarantined(self, *args: Any) -> None:
        self._fan_out("on_cache_quarantined", *args)

    def on_request_satisfied(self, *args: Any) -> None:
        self._fan_out("on_request_satisfied", *args)

    def on_storage_reserved(self, *args: Any) -> None:
        self._fan_out("on_storage_reserved", *args)
