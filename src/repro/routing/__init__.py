"""Time-dependent multiple-source shortest paths (paper §4.2).

The routing layer answers one question for the heuristics: *given the
current bookings, how early could this data item reach each machine, and
along which hops?*  See :func:`compute_shortest_path_tree`.
"""

from repro.routing.dijkstra import compute_shortest_path_tree
from repro.routing.paths import Hop, Path, ShortestPathTree, make_tree

__all__ = [
    "Hop",
    "Path",
    "ShortestPathTree",
    "compute_shortest_path_tree",
    "make_tree",
]
