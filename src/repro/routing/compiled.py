"""Array-compiled scenario kernel for the §4.2 shortest-path search.

:func:`~repro.routing.dijkstra.compute_shortest_path_tree`'s reference
inner loop walks :class:`~repro.core.link.VirtualLink` objects and reads
their attributes Python-object by Python-object on every edge relaxation.
This module compiles the scenario once into flat columns so the hot loop
is a pure index-and-float affair:

* :class:`CompiledScenario` — the virtual-link multigraph flattened into
  CSR adjacency: a per-machine offset array plus parallel ``array('l')``
  / ``array('d')`` columns (``link_id``, ``destination``, window start /
  end, latency) in exactly the order
  :meth:`~repro.core.network.Network.outgoing` yields edges, so the
  compiled search relaxes edges — and therefore probes, books, and
  tie-breaks — in the reference order.
* per-item *duration tables* — ``size / effective_bandwidth + latency``
  per edge, computed once per ``(item, degradation epoch)`` instead of
  once per relaxation, and invalidated whenever
  :attr:`~repro.core.state.NetworkState.degradation_epoch` moves.

Both compilation steps are pure functions of their inputs
(:func:`compile_network`, :func:`compile_durations`) and are registered
as staticcheck R7 purity entry points; the memo layers
(:func:`compiled_for`, :func:`durations_for`) live outside them and key
on object identity via weak references, so a scenario or state being
dropped releases its compiled columns with it.

The kernel is **behaviorally invisible**: it performs the same float
computations in the same order, calls
:meth:`~repro.core.state.NetworkState.earliest_transfer` with identical
arguments in an identical sequence, and reconstructs the result dicts in
the reference insertion order, so schedules — and traces, down to
individual rejection events — are byte-identical to the reference path.
The only observable difference is the ``compiled`` flag on the
``on_dijkstra`` tracer event.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from repro.core.network import Network
from repro.core.state import NetworkState
from repro.routing.paths import ShortestPathTree, make_tree


class CompiledScenario:
    """CSR-flattened virtual-link adjacency of one :class:`Network`.

    Edge ``e`` of machine ``m`` lives at index ``offsets[m] + e`` of each
    parallel column; ``offsets[m + 1]`` bounds the slice.  The edge order
    within a machine equals :meth:`Network.outgoing` order (``link_id``
    ascending), which the reference search iterates — identical order is
    what makes the compiled search tie-break identically.

    Attributes:
        machine_count: number of machines (``len(offsets) - 1``).
        offsets: CSR row offsets, one per machine plus a terminator.
        link_ids: virtual-link id per edge.
        destinations: receiving machine per edge.
        window_starts: window start (``Lst``) per edge.
        window_ends: window end (``Let``) per edge.
        latencies: link latency per edge.
    """

    __slots__ = (
        "machine_count",
        "offsets",
        "link_ids",
        "destinations",
        "window_starts",
        "window_ends",
        "latencies",
    )

    def __init__(
        self,
        machine_count: int,
        offsets: "array[int]",
        link_ids: "array[int]",
        destinations: "array[int]",
        window_starts: "array[float]",
        window_ends: "array[float]",
        latencies: "array[float]",
    ) -> None:
        self.machine_count = machine_count
        self.offsets = offsets
        self.link_ids = link_ids
        self.destinations = destinations
        self.window_starts = window_starts
        self.window_ends = window_ends
        self.latencies = latencies

    @property
    def edge_count(self) -> int:
        """Total number of compiled edges (= virtual links)."""
        return len(self.link_ids)


def compile_network(network: Network) -> CompiledScenario:
    """Flatten a network's virtual-link multigraph into CSR columns.

    A pure function of the (immutable) network — called once per network
    by :func:`compiled_for` and memoized there.
    """
    offsets = array("l", [0])
    link_ids = array("l")
    destinations = array("l")
    window_starts = array("d")
    window_ends = array("d")
    latencies = array("d")
    for machine in range(network.machine_count):
        for link in network.outgoing(machine):
            link_ids.append(link.link_id)
            destinations.append(link.destination)
            window_starts.append(link.start)
            window_ends.append(link.end)
            latencies.append(link.latency)
        offsets.append(len(link_ids))
    return CompiledScenario(
        machine_count=network.machine_count,
        offsets=offsets,
        link_ids=link_ids,
        destinations=destinations,
        window_starts=window_starts,
        window_ends=window_ends,
        latencies=latencies,
    )


def compile_durations(
    item_size: float,
    compiled: CompiledScenario,
    bandwidths: List[float],
) -> "array[float]":
    """Per-edge transfer durations for one item at given bandwidths.

    Exactly the reference relaxation expression
    ``item_size / bandwidth[link_id] + latency`` evaluated per edge; a
    pure function of its arguments, memoized per ``(state, item,
    degradation epoch)`` by :func:`durations_for`.
    """
    link_ids = compiled.link_ids
    latencies = compiled.latencies
    return array(
        "d",
        [
            item_size / bandwidths[link_ids[edge]] + latencies[edge]
            for edge in range(len(link_ids))
        ],
    )


#: Per-network compiled CSR columns.  Weakly keyed: dropping the scenario
#: releases the compiled form.
_NETWORK_MEMO: "WeakKeyDictionary[Network, CompiledScenario]" = (
    WeakKeyDictionary()
)


class _DurationTables:
    """Per-state duration tables, valid for one degradation epoch."""

    __slots__ = ("epoch", "tables")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        self.tables: Dict[int, "array[float]"] = {}


#: Per-state duration tables.  Weakly keyed on the state; epoch-checked
#: on every read, so a bandwidth degradation invalidates the whole table
#: in one comparison.
_DURATION_MEMO: "WeakKeyDictionary[NetworkState, _DurationTables]" = (
    WeakKeyDictionary()
)


def compiled_for(network: Network) -> CompiledScenario:
    """The network's compiled form, built on first use and memoized."""
    compiled = _NETWORK_MEMO.get(network)
    if compiled is None:
        compiled = compile_network(network)
        _NETWORK_MEMO[network] = compiled
    return compiled


def durations_for(
    state: NetworkState, item_id: int, compiled: CompiledScenario
) -> "array[float]":
    """The item's per-edge duration table against the state's bandwidths.

    Valid for the state's current
    :attr:`~repro.core.state.NetworkState.degradation_epoch`; a moved
    epoch drops every table (durations are global functions of the
    bandwidth list, so partial invalidation is impossible).
    """
    epoch = state.degradation_epoch
    memo = _DURATION_MEMO.get(state)
    if memo is None or memo.epoch != epoch:
        memo = _DurationTables(epoch)
        _DURATION_MEMO[state] = memo
    table = memo.tables.get(item_id)
    if table is None:
        table = compile_durations(
            state.scenario.item(item_id).size,
            compiled,
            state.effective_bandwidths(),
        )
        memo.tables[item_id] = table
    return table


def compute_tree_compiled(
    state: NetworkState,
    item_id: int,
    targets: Optional[Set[int]],
    not_before: float,
) -> ShortestPathTree:
    """Array-backed replica of the reference ``_compute_tree`` kernel.

    Labels live in a dense list indexed by machine id with a parallel
    ``discovered`` byte per machine (instead of ``dict.get`` probes —
    and instead of sentinel-float comparisons, which would reintroduce
    the exact-equality hazards rule R2 exists to catch); finalization is
    a byte array plus a counter.  Everything observable — seed order,
    heap contents, per-edge probe order, tracer events, result dict
    insertion order — replicates the reference path exactly.
    """
    network = state.scenario.network
    compiled = compiled_for(network)
    seeds: Dict[int, float] = {
        machine: max(record.available_from, not_before)
        for machine, record in state.copies(item_id).items()
        if record.release > not_before
    }
    machine_count = compiled.machine_count
    labels_list = [0.0] * machine_count
    discovered = bytearray(machine_count)
    finalized = bytearray(machine_count)
    finalized_count = 0
    #: Non-seed machines in first-discovery order, for rebuilding the
    #: labels dict with the reference insertion order.
    order: List[int] = []
    for machine, available in seeds.items():
        labels_list[machine] = available
        discovered[machine] = 1
    parents: Dict[int, Tuple[int, int, float, float]] = {}
    pending_targets = set(targets) if targets is not None else None
    tracer = state.tracer
    tracing = tracer.enabled
    relaxations = 0
    pruned = 0
    durations = durations_for(state, item_id, compiled)
    links = network.virtual_links
    offsets = compiled.offsets
    link_ids = compiled.link_ids
    destinations = compiled.destinations
    window_starts = compiled.window_starts
    earliest_transfer = state.earliest_transfer

    heap = [(available, machine) for machine, available in seeds.items()]
    heapq.heapify(heap)
    infinity = float("inf")

    while heap:
        label, machine = heapq.heappop(heap)
        if finalized[machine]:
            continue
        if label > (
            labels_list[machine] if discovered[machine] else infinity
        ):
            continue
        finalized[machine] = 1
        finalized_count += 1
        if pending_targets is not None:
            pending_targets.discard(machine)
            if not pending_targets:
                break
        for edge in range(offsets[machine], offsets[machine + 1]):
            receiver = destinations[edge]
            if finalized[receiver]:
                continue
            receiver_label = (
                labels_list[receiver] if discovered[receiver] else infinity
            )
            duration = durations[edge]
            window_start = window_starts[edge]
            start_floor = window_start if window_start > label else label
            if start_floor + duration >= receiver_label:
                if tracing:
                    pruned += 1
                continue
            if tracing:
                relaxations += 1
            plan = earliest_transfer(
                item_id, links[link_ids[edge]], label, duration
            )
            if plan is None:
                continue
            plan_end = plan.end
            if plan_end < receiver_label:
                labels_list[receiver] = plan_end
                if not discovered[receiver]:
                    discovered[receiver] = 1
                    order.append(receiver)
                parents[receiver] = (
                    machine,
                    link_ids[edge],
                    plan.start,
                    plan_end,
                )
                heapq.heappush(heap, (plan_end, receiver))

    # Rebuild the labels dict in the reference insertion order — seeds
    # first, then non-seeds by first discovery — dropping unfinalized
    # machines when an early exit fired (their values may not be exact).
    early_exit = pending_targets is not None
    labels: Dict[int, float] = {}
    for machine in seeds:
        if not early_exit or finalized[machine]:
            labels[machine] = labels_list[machine]
    for machine in order:
        if not early_exit or finalized[machine]:
            labels[machine] = labels_list[machine]
    if early_exit:
        parents = {
            machine: parent
            for machine, parent in parents.items()
            if finalized[machine]
        }
    if tracing:
        tracer.on_dijkstra(
            item_id,
            relaxations,
            pruned,
            finalized_count,
            len(seeds),
            compiled=True,
        )
    return make_tree(
        item_id=item_id, seeds=seeds, labels=labels, parents=parents
    )
