"""The adapted multiple-source shortest-path algorithm of §4.2.

For one requested data item the algorithm computes, against the *current*
scheduling state, the earliest time a copy could arrive at every machine.
It is Dijkstra's algorithm on a time-dependent graph:

* the source set is the item's current copy holders, seeded with the times
  their copies become available;
* relaxing edge ``L[u,v][k]`` from a machine labelled ``t`` asks the state
  for the earliest feasible transfer start at or after ``t`` — respecting
  the link's availability window, its already-booked transfers, the
  receiver's storage over the copy's full residency (including garbage
  collection), and the sender's residency;
* the arrival label of ``v`` is the minimum completion time over all
  inbound virtual links.

Label-setting is correct because the earliest-completion function is
monotone in the ready time (waiting never lets a transfer finish earlier):
once a machine is popped its label is final.  Machines that already hold the
item are never relaxed *into* (a machine stores at most one copy).
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Set, Tuple

from repro.core.state import NetworkState
from repro.observability.profiling import PHASE_DIJKSTRA, span
from repro.routing.compiled import compute_tree_compiled
from repro.routing.paths import ShortestPathTree, make_tree


def compute_shortest_path_tree(
    state: NetworkState,
    item_id: int,
    targets: Optional[Set[int]] = None,
    not_before: float = 0.0,
    use_compiled: bool = True,
) -> ShortestPathTree:
    """Earliest-arrival tree for one data item over the current state.

    Args:
        state: the scheduling state to plan against (not mutated).
        item_id: the data item to route.
        targets: optional early-exit set — once every target machine is
            finalized the search stops.  Labels of machines finalized before
            the exit are still exact; unfinalized machines are reported
            unreachable, so only pass ``targets`` when paths to other
            machines are genuinely not needed.
        not_before: wall-clock lower bound on every planned transfer start
            (the "now" of a dynamic re-scheduling pass).  Copies whose
            release precedes it cannot seed the search.
        use_compiled: run the array-backed
            :mod:`repro.routing.compiled` kernel (the default).  The two
            kernels produce byte-identical trees — this escape hatch
            mirrors ``use_tree_cache`` and exists for differential
            testing and fallback, not for behavioral choice.

    Returns:
        The :class:`~repro.routing.paths.ShortestPathTree` with exact
        earliest arrivals for every reachable (finalized) machine.
    """
    with span(PHASE_DIJKSTRA, state.tracer):
        if use_compiled:
            return compute_tree_compiled(state, item_id, targets, not_before)
        return _compute_tree(state, item_id, targets, not_before)


def _compute_tree(
    state: NetworkState,
    item_id: int,
    targets: Optional[Set[int]],
    not_before: float,
) -> ShortestPathTree:
    network = state.scenario.network
    item_size = state.scenario.item(item_id).size
    seeds: Dict[int, float] = {
        machine: max(record.available_from, not_before)
        for machine, record in state.copies(item_id).items()
        if record.release > not_before
    }
    labels: Dict[int, float] = dict(seeds)
    parents: Dict[int, Tuple[int, int, float, float]] = {}
    finalized: Set[int] = set()
    pending_targets = set(targets) if targets is not None else None
    tracer = state.tracer
    tracing = tracer.enabled
    relaxations = 0
    pruned = 0
    # Delivered (possibly fault-degraded) bandwidth per link, fetched once
    # so the relaxation loop below stays a plain list index.
    bandwidths = state.effective_bandwidths()

    heap = [(available, machine) for machine, available in seeds.items()]
    heapq.heapify(heap)
    infinity = float("inf")

    while heap:
        label, machine = heapq.heappop(heap)
        if machine in finalized:
            continue
        if label > labels.get(machine, infinity):
            continue
        finalized.add(machine)
        if pending_targets is not None:
            pending_targets.discard(machine)
            if not pending_targets:
                break
        for link in network.outgoing(machine):
            receiver = link.destination
            if receiver in finalized:
                continue
            # Cheap pruning: even an uncontended transfer cannot complete
            # before max(window start, ready time) + communication time, so
            # links that cannot beat the receiver's current label are
            # skipped without the full feasibility search.  (Inlined
            # arithmetic — this is the hottest line of the library.)
            # The receiver's current label is read once per edge: nothing
            # between the prune check and the improvement test can change
            # it (earliest_transfer never touches labels).
            receiver_label = labels.get(receiver, infinity)
            duration = item_size / bandwidths[link.link_id] + link.latency
            start_floor = link.start if link.start > label else label
            if start_floor + duration >= receiver_label:
                if tracing:
                    pruned += 1
                continue
            if tracing:
                relaxations += 1
            plan = state.earliest_transfer(item_id, link, label, duration)
            if plan is None:
                continue
            if plan.end < receiver_label:
                labels[receiver] = plan.end
                parents[receiver] = (
                    machine,
                    link.link_id,
                    plan.start,
                    plan.end,
                )
                heapq.heappush(heap, (plan.end, receiver))

    # Drop labels of machines that were discovered but never finalized when
    # an early exit fired: their values may not be exact.
    if pending_targets is not None:
        labels = {
            machine: value
            for machine, value in labels.items()
            if machine in finalized
        }
        parents = {
            machine: parent
            for machine, parent in parents.items()
            if machine in finalized
        }
    if tracing:
        tracer.on_dijkstra(
            item_id, relaxations, pruned, len(finalized), len(seeds)
        )
    return make_tree(
        item_id=item_id, seeds=seeds, labels=labels, parents=parents
    )
