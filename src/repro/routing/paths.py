"""Shortest-path trees and path reconstruction for one data item.

The adapted Dijkstra of §4.2 produces, for one requested data item, the
earliest time a copy could reach every machine (the ``A_T`` values of §4.8)
together with parent pointers.  :class:`ShortestPathTree` packages those
labels, reconstructs hop-by-hop :class:`Path` objects toward requesting
destinations, and reports the *resource footprint* of the tree — the links
and storage machines its destination paths rely on — which the heuristics
use to decide when a cached tree must be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError


@dataclass(frozen=True)
class Hop:
    """One planned transfer along a shortest path.

    Attributes:
        sender: the transmitting machine.
        receiver: the receiving machine.
        link_id: the virtual link the tree selected.
        start: planned transfer start time.
        end: planned arrival time at ``receiver``.
    """

    sender: int
    receiver: int
    link_id: int
    start: float
    end: float


@dataclass(frozen=True)
class Path:
    """A hop sequence from a current copy holder to a target machine.

    Attributes:
        item_id: the data item the path moves.
        origin: the copy-holding machine the path starts from.
        hops: the transfers, in travel order; empty when ``origin`` is the
            target itself (the item is already there).
    """

    item_id: int
    origin: int
    hops: Tuple[Hop, ...]

    @property
    def target(self) -> int:
        """The machine the path delivers to."""
        if not self.hops:
            return self.origin
        return self.hops[-1].receiver

    @property
    def arrival(self) -> Optional[float]:
        """Arrival time at the target (``None`` for an empty path)."""
        if not self.hops:
            return None
        return self.hops[-1].end

    @property
    def first_hop(self) -> Optional[Hop]:
        """The next transfer to book, or ``None`` for an empty path."""
        return self.hops[0] if self.hops else None

    def machines(self) -> Tuple[int, ...]:
        """All machines on the path, origin first."""
        return (self.origin,) + tuple(hop.receiver for hop in self.hops)

    def __len__(self) -> int:
        return len(self.hops)


@dataclass(frozen=True)
class _Parent:
    """Internal parent pointer: how the tree reaches a machine."""

    sender: int
    link_id: int
    start: float
    end: float


class ShortestPathTree:
    """Earliest-arrival labels plus parent pointers for one data item.

    Built by :func:`repro.routing.dijkstra.compute_shortest_path_tree`; the
    heuristics only read it.

    Attributes are exposed through methods so the internal dictionaries stay
    private and the object can be safely shared across heuristic iterations.
    """

    def __init__(
        self,
        item_id: int,
        seeds: Mapping[int, float],
        labels: Mapping[int, float],
        parents: Mapping[int, _Parent],
    ) -> None:
        self._item_id = item_id
        self._seeds = dict(seeds)
        self._labels = dict(labels)
        self._parents = dict(parents)
        # The tree is immutable, so reconstructed paths are memoized:
        # candidate enumeration, footprint capture, and booking all walk
        # the same destination paths every engine iteration.
        self._paths: Dict[int, Optional[Path]] = {}

    @property
    def item_id(self) -> int:
        """The data item this tree routes."""
        return self._item_id

    def seed_machines(self) -> Tuple[int, ...]:
        """Machines that already hold a copy (the multi-source set)."""
        return tuple(sorted(self._seeds))

    def arrival(self, machine: int) -> float:
        """Earliest arrival ``A_T`` at a machine (``inf`` if unreachable)."""
        return self._labels.get(machine, float("inf"))

    def is_reachable(self, machine: int) -> bool:
        """True if the item can reach the machine at all."""
        return machine in self._labels

    def path_to(self, machine: int) -> Optional[Path]:
        """The shortest path delivering the item to ``machine``.

        Returns ``None`` when the machine is unreachable; returns an empty
        path when the machine already holds a copy.

        Raises:
            SchedulingError: if the parent pointers are cyclic (tree bug).
        """
        if machine in self._paths:
            return self._paths[machine]
        if machine not in self._labels:
            self._paths[machine] = None
            return None
        hops = []
        cursor = machine
        visited = {machine}
        while cursor not in self._seeds:
            parent = self._parents.get(cursor)
            if parent is None:
                raise SchedulingError(
                    f"machine {cursor} has a label but no parent and is not "
                    f"a seed (item {self._item_id})"
                )
            hops.append(
                Hop(
                    sender=parent.sender,
                    receiver=cursor,
                    link_id=parent.link_id,
                    start=parent.start,
                    end=parent.end,
                )
            )
            cursor = parent.sender
            if cursor in visited:
                raise SchedulingError(
                    f"cyclic parent pointers at machine {cursor} "
                    f"(item {self._item_id})"
                )
            visited.add(cursor)
        hops.reverse()
        path = Path(item_id=self._item_id, origin=cursor, hops=tuple(hops))
        self._paths[machine] = path
        return path

    def next_hop_toward(self, machine: int) -> Optional[Hop]:
        """The first transfer on the path to ``machine``.

        ``None`` when the machine is unreachable or already holds the item.
        """
        path = self.path_to(machine)
        if path is None:
            return None
        return path.first_hop

    def destination_hops(
        self, destinations: Sequence[int]
    ) -> Dict[int, Hop]:
        """Every planned hop on the paths to ``destinations``, by receiver.

        A tree has at most one inbound edge per machine, so the union of
        the destination paths is a receiver-keyed hop map; paths sharing a
        prefix contribute each shared hop once.  Unreachable destinations
        contribute nothing.  This is the cache's *interval footprint*: the
        concrete link occupations and storage residencies the tree's
        labels depend on.
        """
        hops: Dict[int, Hop] = {}
        for destination in destinations:
            path = self.path_to(destination)
            if path is None:
                continue
            for hop in path.hops:
                hops.setdefault(hop.receiver, hop)
        return hops

    def footprint(
        self, destinations: Sequence[int]
    ) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """Resources the tree's paths to ``destinations`` depend on.

        Returns:
            ``(link_ids, storage_machines)`` where ``storage_machines`` are
            the machines that would *receive* a copy along any of the paths
            (their free capacity influenced the labels).  Unreachable
            destinations contribute nothing.
        """
        hops = self.destination_hops(destinations)
        return (
            frozenset(hop.link_id for hop in hops.values()),
            frozenset(hops),
        )

    def reachable_machines(self) -> Tuple[int, ...]:
        """All machines with a finite label, ascending."""
        return tuple(sorted(self._labels))

    def __repr__(self) -> str:
        return (
            f"ShortestPathTree(item={self._item_id}, "
            f"seeds={sorted(self._seeds)}, reachable={len(self._labels)})"
        )


def make_tree(
    item_id: int,
    seeds: Mapping[int, float],
    labels: Mapping[int, float],
    parents: Mapping[int, Tuple[int, int, float, float]],
) -> ShortestPathTree:
    """Assemble a tree from plain tuples (used by the Dijkstra driver).

    Args:
        item_id: the routed item.
        seeds: machine -> availability time for current copy holders.
        labels: machine -> earliest arrival (must include the seeds).
        parents: machine -> ``(sender, link_id, start, end)`` for every
            non-seed labelled machine.
    """
    parent_objs: Dict[int, _Parent] = {
        machine: _Parent(sender=p[0], link_id=p[1], start=p[2], end=p[3])
        for machine, p in parents.items()
    }
    return ShortestPathTree(
        item_id=item_id, seeds=seeds, labels=labels, parents=parent_objs
    )
