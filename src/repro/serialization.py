"""JSON serialization of scenarios, schedules, and experiment results.

Round-trippable plain-dict codecs: ``scenario_to_dict`` /
``scenario_from_dict`` and friends (including :class:`~repro.experiments
.runner.RunRecord` via ``run_record_to_dict`` / ``run_record_from_dict``),
plus file helpers and the content-addressed :func:`scenario_fingerprint`
used by the run cache.  The format is versioned so future extensions can
stay backward compatible.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

from repro.core.data import DataItem, SourceLocation
from repro.core.intervals import Interval
from repro.core.link import PhysicalLink
from repro.core.machine import Machine
from repro.core.network import Network
from repro.core.priority import PriorityWeighting
from repro.core.request import Request
from repro.core.scenario import Scenario
from repro.core.schedule import Schedule
from repro.errors import ModelError
from repro.faults.plan import (
    FAULTS_SCHEMA_VERSION,
    BandwidthDegradation,
    CancellationFault,
    FaultPlan,
    LateArrivalFault,
    OutageWindow,
)
from repro.observability.metrics import (
    METRICS_SCHEMA_VERSION,
    RunMetrics,
    TimingStat,
    validate_metrics_document,
)
from repro.observability.profiling import (
    PROFILE_SCHEMA_VERSION,
    Profile,
    SpanStat,
    validate_profile_document,
)
from repro.observability.timeline import (
    TIMELINE_SCHEMA_VERSION,
    Timeline,
    validate_timeline_document,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports
    # the core model; experiments modules import this module back)
    from repro.experiments.runner import RunRecord

#: Format version written into every serialized document.
FORMAT_VERSION = 1


def _require(document: Dict[str, Any], key: str) -> Any:
    if key not in document:
        raise ModelError(f"serialized document is missing key {key!r}")
    return document[key]


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------

def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """A JSON-ready dict capturing the complete scenario."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "scenario",
        "name": scenario.name,
        "gc_delay": scenario.gc_delay,
        "horizon": scenario.horizon,
        "weighting": {
            "name": scenario.weighting.name,
            "weights": list(scenario.weighting.weights),
        },
        "machines": [
            {
                "index": machine.index,
                "capacity": machine.capacity,
                "name": machine.name,
            }
            for machine in scenario.network.machines
        ],
        "physical_links": [
            {
                "physical_id": link.physical_id,
                "source": link.source,
                "destination": link.destination,
                "bandwidth": link.bandwidth,
                "latency": link.latency,
                "windows": [[w.start, w.end] for w in link.windows],
            }
            for link in scenario.network.physical_links
        ],
        "items": [
            {
                "item_id": item.item_id,
                "name": item.name,
                "size": item.size,
                "sources": [
                    {
                        "machine": src.machine,
                        "available_from": src.available_from,
                    }
                    for src in item.sources
                ],
            }
            for item in scenario.items
        ],
        "requests": [
            {
                "request_id": request.request_id,
                "item_id": request.item_id,
                "destination": request.destination,
                "priority": request.priority,
                "deadline": request.deadline,
            }
            for request in scenario.requests
        ],
    }


def scenario_from_dict(document: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Raises:
        ModelError: on missing keys or a wrong document kind.
    """
    if _require(document, "kind") != "scenario":
        raise ModelError(
            f"expected a scenario document, got kind={document.get('kind')!r}"
        )
    machines = tuple(
        Machine(
            index=entry["index"],
            capacity=entry["capacity"],
            name=entry.get("name", ""),
        )
        for entry in _require(document, "machines")
    )
    links = tuple(
        PhysicalLink(
            physical_id=entry["physical_id"],
            source=entry["source"],
            destination=entry["destination"],
            bandwidth=entry["bandwidth"],
            latency=entry["latency"],
            windows=tuple(
                Interval(start, end) for start, end in entry["windows"]
            ),
        )
        for entry in _require(document, "physical_links")
    )
    items = tuple(
        DataItem(
            item_id=entry["item_id"],
            name=entry["name"],
            size=entry["size"],
            sources=tuple(
                SourceLocation(
                    machine=src["machine"],
                    available_from=src["available_from"],
                )
                for src in entry["sources"]
            ),
        )
        for entry in _require(document, "items")
    )
    requests = tuple(
        Request(
            request_id=entry["request_id"],
            item_id=entry["item_id"],
            destination=entry["destination"],
            priority=entry["priority"],
            deadline=entry["deadline"],
        )
        for entry in _require(document, "requests")
    )
    weighting_doc = _require(document, "weighting")
    return Scenario(
        network=Network(machines, links),
        items=items,
        requests=requests,
        weighting=PriorityWeighting(
            weighting_doc["weights"], name=weighting_doc.get("name", "")
        ),
        gc_delay=_require(document, "gc_delay"),
        horizon=_require(document, "horizon"),
        name=document.get("name", "scenario"),
    )


# ---------------------------------------------------------------------------
# Schedule
# ---------------------------------------------------------------------------

def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """A JSON-ready dict capturing steps and deliveries."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "schedule",
        "name": schedule.name,
        "steps": [
            {
                "item_id": step.item_id,
                "source": step.source,
                "destination": step.destination,
                "link_id": step.link_id,
                "start": step.start,
                "end": step.end,
            }
            for step in schedule.steps
        ],
        "deliveries": [
            {
                "request_id": delivery.request_id,
                "arrival": delivery.arrival,
                "hops": delivery.hops,
            }
            for delivery in schedule.deliveries.values()
        ],
    }


def schedule_from_dict(document: Dict[str, Any]) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    Raises:
        ModelError: on missing keys or a wrong document kind.
    """
    if _require(document, "kind") != "schedule":
        raise ModelError(
            f"expected a schedule document, got kind={document.get('kind')!r}"
        )
    schedule = Schedule(name=document.get("name", ""))
    for entry in _require(document, "steps"):
        schedule.add_step(
            item_id=entry["item_id"],
            source=entry["source"],
            destination=entry["destination"],
            link_id=entry["link_id"],
            start=entry["start"],
            end=entry["end"],
        )
    for entry in _require(document, "deliveries"):
        schedule.add_delivery(
            request_id=entry["request_id"],
            arrival=entry["arrival"],
            hops=entry["hops"],
        )
    return schedule


# ---------------------------------------------------------------------------
# Run records
# ---------------------------------------------------------------------------

def run_record_to_dict(record: "RunRecord") -> Dict[str, Any]:
    """A JSON-ready dict capturing one scheduler execution record."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "run_record",
        "scenario": record.scenario,
        "scheduler": record.scheduler,
        "eu_label": record.eu_label,
        "weighted_sum": record.weighted_sum,
        "satisfied_by_priority": list(record.satisfied_by_priority),
        "total_by_priority": list(record.total_by_priority),
        "steps": record.steps,
        "dijkstra_runs": record.dijkstra_runs,
        "elapsed_seconds": record.elapsed_seconds,
        "average_hops": record.average_hops,
        "cache_hit": record.cache_hit,
        "metrics": (
            run_metrics_to_dict(record.metrics)
            if record.metrics is not None
            else None
        ),
        "profile": (
            profile_to_dict(record.profile)
            if record.profile is not None
            else None
        ),
        "timeline": (
            timeline_to_dict(record.timeline)
            if record.timeline is not None
            else None
        ),
    }


def run_record_from_dict(document: Dict[str, Any]) -> "RunRecord":
    """Rebuild a run record from :func:`run_record_to_dict` output.

    Raises:
        ModelError: on missing keys or a wrong document kind.
    """
    from repro.experiments.runner import RunRecord

    if _require(document, "kind") != "run_record":
        raise ModelError(
            f"expected a run_record document, got "
            f"kind={document.get('kind')!r}"
        )
    return RunRecord(
        scenario=_require(document, "scenario"),
        scheduler=_require(document, "scheduler"),
        eu_label=_require(document, "eu_label"),
        weighted_sum=_require(document, "weighted_sum"),
        satisfied_by_priority=tuple(
            _require(document, "satisfied_by_priority")
        ),
        total_by_priority=tuple(_require(document, "total_by_priority")),
        steps=_require(document, "steps"),
        dijkstra_runs=_require(document, "dijkstra_runs"),
        elapsed_seconds=_require(document, "elapsed_seconds"),
        average_hops=_require(document, "average_hops"),
        cache_hit=bool(document.get("cache_hit", False)),
        metrics=(
            run_metrics_from_dict(document["metrics"])
            if document.get("metrics") is not None
            else None
        ),
        profile=(
            profile_from_dict(document["profile"])
            if document.get("profile") is not None
            else None
        ),
        timeline=(
            timeline_from_dict(document["timeline"])
            if document.get("timeline") is not None
            else None
        ),
    )


# ---------------------------------------------------------------------------
# Run metrics
# ---------------------------------------------------------------------------

def run_metrics_to_dict(metrics: RunMetrics) -> Dict[str, Any]:
    """A JSON-ready dict capturing one metrics aggregate.

    Link maps are keyed by link id; JSON object keys must be strings, so
    ids are stringified here and parsed back in
    :func:`run_metrics_from_dict`.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "run_metrics",
        "schema_version": METRICS_SCHEMA_VERSION,
        "counters": dict(metrics.counters),
        "rejection_reasons": dict(metrics.rejection_reasons),
        "tree_cache_reasons": dict(metrics.tree_cache_reasons),
        "link_busy_seconds": {
            str(link_id): value
            for link_id, value in metrics.link_busy_seconds.items()
        },
        "link_transfer_counts": {
            str(link_id): value
            for link_id, value in metrics.link_transfer_counts.items()
        },
        "link_window_seconds": {
            str(link_id): value
            for link_id, value in metrics.link_window_seconds.items()
        },
        "decision_seconds": metrics.decision_seconds.to_dict(),
        "cell_seconds": metrics.cell_seconds.to_dict(),
        "workers": list(metrics.workers),
    }


def run_metrics_from_dict(document: Dict[str, Any]) -> RunMetrics:
    """Rebuild a metrics aggregate from :func:`run_metrics_to_dict` output.

    Raises:
        ModelError: on a wrong kind, schema version, or invalid structure
            (delegates to
            :func:`repro.observability.metrics.validate_metrics_document`).
    """
    validate_metrics_document(document)
    return RunMetrics(
        counters={
            key: int(value)
            for key, value in document["counters"].items()
        },
        rejection_reasons={
            key: int(value)
            for key, value in document["rejection_reasons"].items()
        },
        tree_cache_reasons={
            key: int(value)
            for key, value in document["tree_cache_reasons"].items()
        },
        link_busy_seconds={
            int(link_id): float(value)
            for link_id, value in document["link_busy_seconds"].items()
        },
        link_transfer_counts={
            int(link_id): int(value)
            for link_id, value in document["link_transfer_counts"].items()
        },
        link_window_seconds={
            int(link_id): float(value)
            for link_id, value in document["link_window_seconds"].items()
        },
        decision_seconds=TimingStat.from_dict(document["decision_seconds"]),
        cell_seconds=TimingStat.from_dict(document["cell_seconds"]),
        workers=tuple(int(pid) for pid in document["workers"]),
    )


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------

def profile_to_dict(profile: Profile) -> Dict[str, Any]:
    """A JSON-ready dict capturing one span profile.

    Span paths become object keys; each entry carries the ``wall`` and
    ``cpu`` timing stats (empty stats omit min/max, like
    :class:`~repro.observability.metrics.TimingStat`).
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "profile",
        "schema_version": PROFILE_SCHEMA_VERSION,
        "spans": {
            path: stat.to_dict()
            for path, stat in sorted(profile.spans.items())
        },
    }


def profile_from_dict(document: Dict[str, Any]) -> Profile:
    """Rebuild a span profile from :func:`profile_to_dict` output.

    Raises:
        ModelError: on a wrong kind, schema version, or invalid structure
            (delegates to :func:`repro.observability.profiling
            .validate_profile_document`).
    """
    validate_profile_document(document)
    return Profile(
        spans={
            path: SpanStat.from_dict(stat)
            for path, stat in document["spans"].items()
        }
    )


# ---------------------------------------------------------------------------
# Timelines
# ---------------------------------------------------------------------------

def timeline_to_dict(timeline: Timeline) -> Dict[str, Any]:
    """A JSON-ready dict capturing one simulated-time telemetry document.

    The body layout (key-sorted link/storage/class/forensics maps) is
    produced by :meth:`repro.observability.timeline.Timeline.to_dict`;
    this wrapper adds the ``kind`` tag and version stamps.  Equal
    timelines serialize byte-identically, which is what the cache-replay
    invariance tests pin.
    """
    document: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "kind": "timeline",
        "schema_version": TIMELINE_SCHEMA_VERSION,
    }
    document.update(timeline.to_dict())
    return document


def timeline_from_dict(document: Dict[str, Any]) -> Timeline:
    """Rebuild a timeline from :func:`timeline_to_dict` output.

    Raises:
        ModelError: on a wrong kind, schema version, or invalid
            structure (delegates to :func:`repro.observability.timeline
            .validate_timeline_document`).
    """
    validate_timeline_document(document)
    return Timeline.from_dict(document)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """A JSON-ready dict capturing the complete fault plan.

    Plans are canonically ordered at construction, so two equal plans
    serialize to identical documents (the basis of
    :func:`fault_plan_fingerprint` and the run cache's fault keying).
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "fault_plan",
        "schema_version": FAULTS_SCHEMA_VERSION,
        "name": plan.name,
        "outages": [
            {
                "physical_id": outage.physical_id,
                "start": outage.start,
                "end": outage.end,
            }
            for outage in plan.outages
        ],
        "degradations": [
            {
                "physical_id": degradation.physical_id,
                "factor": degradation.factor,
            }
            for degradation in plan.degradations
        ],
        "cancellations": [
            {"request_id": fault.request_id, "time": fault.time}
            for fault in plan.cancellations
        ],
        "late_arrivals": [
            {"request_id": fault.request_id, "time": fault.time}
            for fault in plan.late_arrivals
        ],
    }


def fault_plan_from_dict(document: Dict[str, Any]) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` serialized by :func:`fault_plan_to_dict`.

    Raises:
        ModelError: on missing keys, a wrong document kind, or an
            unsupported schema version.
    """
    if _require(document, "kind") != "fault_plan":
        raise ModelError(
            f"expected a fault_plan document, got "
            f"kind={document.get('kind')!r}"
        )
    schema = _require(document, "schema_version")
    if schema != FAULTS_SCHEMA_VERSION:
        raise ModelError(
            f"unsupported fault plan schema version {schema!r} "
            f"(expected {FAULTS_SCHEMA_VERSION})"
        )
    return FaultPlan(
        outages=tuple(
            OutageWindow(
                physical_id=entry["physical_id"],
                start=entry["start"],
                end=entry["end"],
            )
            for entry in _require(document, "outages")
        ),
        degradations=tuple(
            BandwidthDegradation(
                physical_id=entry["physical_id"],
                factor=entry["factor"],
            )
            for entry in _require(document, "degradations")
        ),
        cancellations=tuple(
            CancellationFault(
                request_id=entry["request_id"], time=entry["time"]
            )
            for entry in _require(document, "cancellations")
        ),
        late_arrivals=tuple(
            LateArrivalFault(
                request_id=entry["request_id"], time=entry["time"]
            )
            for entry in _require(document, "late_arrivals")
        ),
        name=_require(document, "name"),
    )


def fault_plan_fingerprint(plan: FaultPlan) -> str:
    """SHA-256 hex digest of the plan's canonical JSON.

    Because plans normalize at construction, logically equal plans
    fingerprint equal; the executor keys cached runs on this digest so a
    faulted record can never shadow a healthy one (or vice versa).
    """
    canonical = json.dumps(
        fault_plan_to_dict(plan),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def canonical_scenario_json(scenario: Scenario) -> str:
    """The scenario's canonical JSON text (sorted keys, no whitespace).

    Two scenarios produce the same text exactly when
    :func:`scenario_to_dict` captures them identically, so this is the
    content-addressing basis of the run cache.
    """
    return json.dumps(
        scenario_to_dict(scenario),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )


def scenario_fingerprint(scenario: Scenario) -> str:
    """SHA-256 hex digest of :func:`canonical_scenario_json`.

    Any change to the scenario content — topology, windows, items,
    requests, weighting, name — yields a different fingerprint, which
    invalidates every cached run record keyed on it.
    """
    return hashlib.sha256(
        canonical_scenario_json(scenario).encode("utf-8")
    ).hexdigest()


# ---------------------------------------------------------------------------
# File helpers
# ---------------------------------------------------------------------------

def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write a scenario to a JSON file."""
    Path(path).write_text(
        json.dumps(scenario_to_dict(scenario), indent=2), encoding="utf-8"
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a scenario from a JSON file."""
    return scenario_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> None:
    """Write a schedule to a JSON file."""
    Path(path).write_text(
        json.dumps(schedule_to_dict(schedule), indent=2), encoding="utf-8"
    )


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


def save_suite(scenarios, directory: Union[str, Path]) -> None:
    """Write a test-case suite, one ``case-NNN.json`` per scenario.

    Together with :func:`load_suite` this lets the exact cases behind a
    recorded experiment be shared and replayed byte-identically (the
    paper's "same 40 randomly generated test cases").
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    for index, scenario in enumerate(scenarios):
        save_scenario(scenario, base / f"case-{index:03d}.json")


def load_suite(directory: Union[str, Path]):
    """Read back a suite written by :func:`save_suite`, in case order.

    Raises:
        ModelError: when the directory contains no suite files.
    """
    base = Path(directory)
    paths = sorted(base.glob("case-*.json"))
    if not paths:
        raise ModelError(f"no case-*.json files under {base}")
    return tuple(load_scenario(path) for path in paths)
