"""``repro.staticcheck`` — AST-based domain lint for this reproduction.

A zero-dependency static-analysis subsystem enforcing the invariants
the run cache, parallel executor, and mergeable artifacts rely on:
deterministic wall-clock-free scheduling code, no raw float equality on
simulated times, registered tracer event/reason literals, and
schema-versioned codecs.  See ``docs/STATICCHECK.md``.

Run it as ``datastage lint`` or ``python -m repro.staticcheck``.
"""

from repro.staticcheck.baseline import (
    BASELINE_SCHEMA_VERSION,
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.engine import (
    CheckContext,
    CheckResult,
    Finding,
    Module,
    RULE_REGISTRY,
    Rule,
    default_rules,
    load_module,
    register,
    resolve_rules,
    run_check,
    suppressed_rules,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "CheckContext",
    "CheckResult",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "Module",
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "load_baseline",
    "load_module",
    "register",
    "resolve_rules",
    "run_check",
    "save_baseline",
    "suppressed_rules",
]
