"""Baseline files: grandfathered findings the gate tolerates.

A baseline lets the lint gate turn on *strict for new code* while the
backlog of pre-existing findings is burned down deliberately.  The file
(``staticcheck-baseline.json`` at the repository root by convention) is
a JSON document::

    {
      "version": 1,
      "findings": [
        {"rule": "R2", "path": "core/legacy.py",
         "line_text": "if a.start == b.start:"},
        ...
      ]
    }

Matching is by ``(rule, path, stripped source line)`` — deliberately
line-number-free so unrelated edits above a grandfathered site do not
resurrect it, while any edit *to the offending line itself* re-triggers
the gate.  Each entry absorbs exactly one finding; duplicate entries
absorb duplicates.  ``datastage lint --update-baseline`` rewrites the
file from the current findings (and prunes entries that no longer
match, keeping the baseline monotonically shrinking).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from repro.errors import ModelError
from repro.staticcheck.engine import Finding

#: Version stamp of the baseline document layout.
BASELINE_SCHEMA_VERSION = 1

#: Conventional baseline filename at the repository root.
DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"


def load_baseline(path: Union[str, Path]) -> List[Tuple[str, str, str]]:
    """Read a baseline file into finding fingerprints.

    Raises:
        ModelError: on a malformed document or unsupported version.
    """
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict):
        raise ModelError(f"baseline {path} is not a JSON object")
    version = document.get("version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ModelError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_SCHEMA_VERSION})"
        )
    entries = document.get("findings")
    if not isinstance(entries, list):
        raise ModelError(f"baseline {path} has no 'findings' list")
    fingerprints: List[Tuple[str, str, str]] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ModelError(f"baseline {path} has a non-object entry")
        try:
            fingerprints.append(
                (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry["line_text"]),
                )
            )
        except KeyError as exc:
            raise ModelError(
                f"baseline {path} entry is missing key {exc}"
            ) from exc
    return fingerprints


def save_baseline(
    findings: Iterable[Finding], path: Union[str, Path]
) -> None:
    """Write the given findings as a fresh baseline file."""
    entries = [
        {"rule": rule, "path": relpath, "line_text": line_text}
        for rule, relpath, line_text in sorted(
            finding.fingerprint() for finding in findings
        )
    ]
    document = {"version": BASELINE_SCHEMA_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
