"""The ``datastage lint`` / ``python -m repro.staticcheck`` front end.

Exit codes: 0 when the tree is clean (after suppressions and baseline),
1 when active findings remain or ``--ratchet-check`` finds stale
baseline entries, 2 on configuration errors (unknown rule, unparseable
file, bad baseline, a ``--update-baseline`` that would grow the
baseline) via the shared CLI error handling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.engine import (
    CheckResult,
    default_rules,
    resolve_rules,
    run_check,
)

#: Exit code when active findings remain.
EXIT_FINDINGS = 1

#: Exit code for configuration errors (also used for ratchet refusals).
EXIT_CONFIG = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an argparse parser (shared with cli.py)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package roots to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            f"baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline from the current findings and exit 0; "
            "refuses to grow an existing baseline (the ratchet)"
        ),
    )
    parser.add_argument(
        "--ratchet-check",
        action="store_true",
        help=(
            "fail when the baseline carries stale entries no current "
            "finding matches (CI enforces a shrink-only baseline)"
        ),
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "report per-rule finding counts, suppression/baseline "
            "totals, and call-graph resolution coverage"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def _stats_payload(total: CheckResult) -> Dict[str, object]:
    """The ``--stats`` block shared by the text and JSON renderings."""
    coverage = (
        100.0
        if total.call_sites == 0
        else 100.0 * total.resolved_calls / total.call_sites
    )
    return {
        "findings_by_rule": total.findings_by_rule(),
        "suppressed": total.suppressed,
        "baselined": total.baselined,
        "baseline_entries": total.baseline_entries,
        "call_sites": total.call_sites,
        "resolved_calls": total.resolved_calls,
        "call_graph_coverage_percent": round(coverage, 1),
    }


def _print_stats(total: CheckResult, stream: "TextIO") -> None:
    payload = _stats_payload(total)
    print("stats:", file=stream)
    by_rule = payload["findings_by_rule"]
    assert isinstance(by_rule, dict)
    if by_rule:
        for rule_id, count in by_rule.items():
            print(f"  findings[{rule_id}]: {count}", file=stream)
    else:
        print("  findings: 0", file=stream)
    print(f"  suppressed: {payload['suppressed']}", file=stream)
    print(f"  baselined: {payload['baselined']}", file=stream)
    print(
        f"  baseline entries: {payload['baseline_entries']}", file=stream
    )
    print(
        f"  call graph: {payload['resolved_calls']}/"
        f"{payload['call_sites']} call sites resolved "
        f"({payload['call_graph_coverage_percent']}%)",
        file=stream,
    )


def _refuse_baseline_growth(
    new_fingerprints: List[Tuple[str, str, str]],
    old_fingerprints: List[Tuple[str, str, str]],
    target: Path,
) -> Optional[str]:
    """The ratchet: the refusal message when the baseline would grow.

    A rewrite is admissible only when the new fingerprint multiset is
    contained in the old one — entries may drop out (violations fixed)
    but never appear (new violations must be *fixed*, not
    grandfathered).  Returns ``None`` when the rewrite shrinks.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for fingerprint in old_fingerprints:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    grown: List[Tuple[str, str, str]] = []
    for fingerprint in new_fingerprints:
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
        else:
            grown.append(fingerprint)
    if not grown:
        return None
    preview = "; ".join(
        f"{rule} {path}: {text[:60]}" for rule, path, text in grown[:3]
    )
    more = f" (+{len(grown) - 3} more)" if len(grown) > 3 else ""
    return (
        f"refusing to grow baseline {target}: "
        f"{len(old_fingerprints)} -> {len(new_fingerprints)} entries; "
        f"the baseline is a ratchet — fix the new finding(s) instead of "
        f"grandfathering them: {preview}{more}"
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint with parsed arguments; returns the exit code."""
    if args.list_rules:
        for rule in default_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.id}  {rule.title}  [{scope}]")
        return 0
    rule_ids = (
        [token.strip() for token in args.rules.split(",") if token.strip()]
        if args.rules
        else None
    )
    rules = resolve_rules(rule_ids)
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif Path(DEFAULT_BASELINE_NAME).is_file():
            baseline_path = Path(DEFAULT_BASELINE_NAME)
    fingerprints = (
        load_baseline(baseline_path)
        if baseline_path is not None and baseline_path.is_file()
        else []
    )
    # ``--update-baseline`` needs the *full* finding set (nothing
    # absorbed), so the rewrite runs baseline-free.
    run_fingerprints = [] if args.update_baseline else fingerprints
    total = CheckResult(baseline_entries=len(fingerprints))
    for root in args.paths:
        result = run_check(
            Path(root),
            rules=rules,
            baseline=run_fingerprints,
            build_graph=args.stats,
        )
        total.findings.extend(result.findings)
        total.suppressed += result.suppressed
        total.baselined += result.baselined
        total.files_checked += result.files_checked
        total.call_sites += result.call_sites
        total.resolved_calls += result.resolved_calls
    if args.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        if target.is_file():
            refusal = _refuse_baseline_growth(
                [finding.fingerprint() for finding in total.findings],
                load_baseline(target),
                target,
            )
            if refusal is not None:
                print(f"error: {refusal}", file=sys.stderr)
                return EXIT_CONFIG
        save_baseline(total.findings, target)
        print(
            f"baseline written to {target} "
            f"({len(total.findings)} finding(s) grandfathered)"
        )
        return 0
    stale_entries = max(0, total.baseline_entries - total.baselined)
    if args.output_format == "json":
        payload: Dict[str, object] = {
            "files_checked": total.files_checked,
            "findings": [f.as_dict() for f in total.findings],
            "suppressed": total.suppressed,
            "baselined": total.baselined,
        }
        if args.stats:
            payload["stats"] = _stats_payload(total)
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.output_format == "sarif":
        from repro.staticcheck.sarif import (
            build_sarif,
            render_sarif,
            validate_sarif,
        )

        document = build_sarif(total.findings, rules)
        validate_sarif(document)
        sys.stdout.write(render_sarif(document))
        if args.stats:
            _print_stats(total, sys.stderr)
    else:
        for finding in total.findings:
            print(finding.render())
        summary = (
            f"{total.files_checked} file(s) checked: "
            f"{len(total.findings)} finding(s), "
            f"{total.suppressed} suppressed, {total.baselined} baselined"
        )
        print(summary)
        if args.stats:
            _print_stats(total, sys.stdout)
    if args.ratchet_check and stale_entries:
        print(
            f"ratchet: baseline carries {stale_entries} stale entr"
            f"{'y' if stale_entries == 1 else 'ies'} no current finding "
            f"matches; shrink it with --update-baseline",
            file=sys.stderr,
        )
        return EXIT_FINDINGS
    return EXIT_FINDINGS if total.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.staticcheck``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "AST-based domain lint for determinism and codec invariants "
            "(see docs/STATICCHECK.md)"
        ),
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    from repro.errors import DataStagingError

    try:
        return run_lint(args)
    except DataStagingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
