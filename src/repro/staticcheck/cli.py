"""The ``datastage lint`` / ``python -m repro.staticcheck`` front end.

Exit codes: 0 when the tree is clean (after suppressions and baseline),
1 when active findings remain, 2 on configuration errors (unknown rule,
unparseable file, bad baseline) via the shared CLI error handling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.staticcheck.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.engine import (
    CheckResult,
    default_rules,
    resolve_rules,
    run_check,
)

#: Exit code when active findings remain.
EXIT_FINDINGS = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an argparse parser (shared with cli.py)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="package roots to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            f"baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute the lint with parsed arguments; returns the exit code."""
    if args.list_rules:
        for rule in default_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.id}  {rule.title}  [{scope}]")
        return 0
    rule_ids = (
        [token.strip() for token in args.rules.split(",") if token.strip()]
        if args.rules
        else None
    )
    rules = resolve_rules(rule_ids)
    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = Path(args.baseline)
        elif Path(DEFAULT_BASELINE_NAME).is_file():
            baseline_path = Path(DEFAULT_BASELINE_NAME)
    fingerprints = (
        load_baseline(baseline_path)
        if baseline_path is not None and baseline_path.is_file()
        else []
    )
    total = CheckResult()
    for root in args.paths:
        result = run_check(Path(root), rules=rules, baseline=fingerprints)
        total.findings.extend(result.findings)
        total.suppressed += result.suppressed
        total.baselined += result.baselined
        total.files_checked += result.files_checked
    if args.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        save_baseline(total.findings, target)
        print(
            f"baseline written to {target} "
            f"({len(total.findings)} finding(s) grandfathered)"
        )
        return 0
    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "files_checked": total.files_checked,
                    "findings": [f.as_dict() for f in total.findings],
                    "suppressed": total.suppressed,
                    "baselined": total.baselined,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in total.findings:
            print(finding.render())
        summary = (
            f"{total.files_checked} file(s) checked: "
            f"{len(total.findings)} finding(s), "
            f"{total.suppressed} suppressed, {total.baselined} baselined"
        )
        print(summary)
    return EXIT_FINDINGS if total.findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.staticcheck``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "AST-based domain lint for determinism and codec invariants "
            "(see docs/STATICCHECK.md)"
        ),
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    from repro.errors import DataStagingError

    try:
        return run_lint(args)
    except DataStagingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
