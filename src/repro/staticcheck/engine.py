"""The staticcheck engine: findings, suppressions, rule registry, runner.

``repro.staticcheck`` is a zero-dependency AST linter for the *domain*
invariants the test suite cannot see syntactically: scheduling code must
stay deterministic and wall-clock-free, simulated times must never be
compared with raw float ``==``, event/reason literals must exist in the
tracer registry, and serialized codecs must stay schema-versioned.  The
engine walks a source tree, parses every module once, and hands the
parsed :class:`Module` to each registered :class:`Rule`.

Rules report :class:`Finding` objects (rule id, location, message, fix
hint).  Two escape hatches exist:

* per-line suppressions — a ``staticcheck: disable=R1`` (or
  ``disable=R1,R2`` / ``disable=all``) hash-comment on the offending
  line;
* a committed baseline file of grandfathered findings (see
  :mod:`repro.staticcheck.baseline`), matched by rule, path, and the
  normalized source-line text so findings survive unrelated line drift.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.staticcheck.graph import ProjectGraph

#: Matches a per-line suppression comment anywhere on a physical line.
_SUPPRESSION_RE = re.compile(
    r"#\s*staticcheck:\s*disable=([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: the rule id (``"R1"`` .. ``"R6"``).
        path: path of the offending module, relative to the scanned root,
            always with POSIX separators (stable across platforms, used
            for baseline matching).
        line: 1-based line number.
        column: 0-based column offset.
        message: what is wrong, concretely.
        hint: how to fix it (the rule's standing advice).
        line_text: the stripped source line, for baseline fingerprints.
    """

    rule: str
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    line_text: str = ""

    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.line_text)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (used by ``--format json`` and baselines)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "line_text": self.line_text,
        }

    def render(self) -> str:
        """One-line human rendering, ``path:line:col Rn message``."""
        text = f"{self.path}:{self.line}:{self.column + 1} {self.rule} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text


@dataclass
class Module:
    """One parsed source module handed to every rule.

    Attributes:
        path: absolute filesystem path.
        relpath: POSIX path relative to the scanned root (rule scopes and
            baseline fingerprints key on this).
        source: the full source text.
        tree: the parsed ``ast.Module``.
        lines: the source split into lines (index 0 = line 1).
    """

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]

    def line_text(self, line: int) -> str:
        """The stripped text of a 1-based source line ("" out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at an AST node."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            path=self.relpath,
            line=line,
            column=column,
            message=message,
            hint=hint if hint is not None else rule.hint,
            line_text=self.line_text(line),
        )


@dataclass
class CheckContext:
    """Cross-module facts shared by all rules during one run.

    Attributes:
        root: the scanned root directory.
        event_names: the tracer event-name registry in force (extracted
            from the scanned tree's ``observability/tracer.py`` when
            present, else the installed package's registry).
        reason_codes: likewise for reason codes — the union of the
            rejection/failure codes (``REASON_*``) and the tree-cache
            outcome codes (``TREE_CACHE_*``).
        modules: every parsed module of the scanned tree, in path order
            (project-scope rules iterate these).
        graph: the project call graph (see
            :mod:`repro.staticcheck.graph`), built when at least one
            active rule sets ``needs_graph`` — ``None`` otherwise.
    """

    root: Path
    event_names: frozenset
    reason_codes: frozenset
    modules: Tuple[Module, ...] = ()
    graph: Optional["ProjectGraph"] = None

    def module_for(self, relpath: str) -> Optional[Module]:
        """The parsed module at ``relpath``, if the tree carries one."""
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


class Rule:
    """Base class for staticcheck rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        id: short stable id (``"R1"``).
        title: one-line rule name for ``--list-rules`` and docs.
        hint: the standing fix advice attached to findings by default.
        scope: top-level package directories (relative to the scanned
            root) the rule applies to; ``None`` means every module.
        project: ``True`` for whole-program rules — the engine calls
            :meth:`check_project` once per run instead of
            :meth:`check` once per module.
        needs_graph: ``True`` when the rule queries ``context.graph``;
            the engine builds the call graph only when some active rule
            asks for it.
    """

    id: str = ""
    title: str = ""
    hint: str = ""
    scope: Optional[Tuple[str, ...]] = None
    project: bool = False
    needs_graph: bool = False

    def applies_to(self, module: Module) -> bool:
        """True when the module lies inside the rule's scope."""
        if self.scope is None:
            return True
        first = module.relpath.split("/", 1)[0]
        return first in self.scope

    def check(self, module: Module, context: CheckContext) -> Iterator[Finding]:
        """Yield findings for one module (per-module rules)."""
        raise NotImplementedError

    def check_project(self, context: CheckContext) -> Iterator[Finding]:
        """Yield findings across the whole tree (project rules)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.id}: {self.title}>"


#: Registry of rule instances, keyed by rule id, in registration order.
RULE_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator adding one rule instance to :data:`RULE_REGISTRY`."""
    rule = rule_class()
    if not rule.id:
        raise ConfigurationError(
            f"rule class {rule_class.__name__} has no id"
        )
    if rule.id in RULE_REGISTRY:
        raise ConfigurationError(f"duplicate rule id {rule.id}")
    RULE_REGISTRY[rule.id] = rule
    return rule_class


def default_rules() -> Tuple[Rule, ...]:
    """All built-in rules, importing the rule modules on first use."""
    from repro.staticcheck import rules as _rules  # noqa: F401

    return tuple(RULE_REGISTRY.values())


def resolve_rules(ids: Optional[Sequence[str]]) -> Tuple[Rule, ...]:
    """The selected rules (all by default).

    Raises:
        ConfigurationError: on an unknown rule id.
    """
    rules = default_rules()
    if not ids:
        return rules
    unknown = sorted(set(ids) - set(RULE_REGISTRY))
    if unknown:
        raise ConfigurationError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(RULE_REGISTRY))}"
        )
    wanted = set(ids)
    return tuple(rule for rule in rules if rule.id in wanted)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def suppressed_rules(line_text: str) -> frozenset:
    """Rule ids suppressed by a line's comment (``{"all"}`` for blanket)."""
    match = _SUPPRESSION_RE.search(line_text)
    if match is None:
        return frozenset()
    return frozenset(
        token.strip() for token in match.group(1).split(",") if token.strip()
    )


def is_suppressed(finding: Finding, module: Module) -> bool:
    """True when the finding's source line carries a matching suppression."""
    rules = suppressed_rules(module.line_text(finding.line))
    return bool(rules) and ("all" in rules or finding.rule in rules)


# ---------------------------------------------------------------------------
# Tree walking
# ---------------------------------------------------------------------------

def _iter_source_files(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") for part in path.parts):
            continue
        if "__pycache__" in path.parts:
            continue
        yield path


def load_module(path: Path, root: Path) -> Module:
    """Parse one source file into a :class:`Module`.

    Raises:
        ConfigurationError: when the file does not parse.
    """
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
    relpath = path.relative_to(root).as_posix()
    return Module(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def _registry_from_tree(root: Path) -> Tuple[frozenset, frozenset]:
    """Extract the tracer event/reason registries for R3.

    Prefers the scanned tree's own ``observability/tracer.py`` (so a
    vendored or fixture tree is checked against *its* registry); falls
    back to the installed package's registry when the tree carries none.
    """
    tracer_path = root / "observability" / "tracer.py"
    if tracer_path.is_file():
        tree = ast.parse(tracer_path.read_text(encoding="utf-8"))
        events: List[str] = []
        reasons: List[str] = []
        for node in tree.body:
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            value = node.value
            if "EVENT_NAMES" in names and isinstance(value, ast.Tuple):
                events.extend(
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                )
            if any(
                name.startswith(("REASON_", "TREE_CACHE_"))
                and not name.endswith(("_CODES", "_REASONS"))
                for name in names
            ) and isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                reasons.append(value.value)
        if events or reasons:
            return frozenset(events), frozenset(reasons)
    from repro.observability.tracer import (
        EVENT_NAMES,
        REASON_CODES,
        TREE_CACHE_REASONS,
    )

    return frozenset(EVENT_NAMES), frozenset(
        REASON_CODES + TREE_CACHE_REASONS
    )


@dataclass
class CheckResult:
    """The outcome of one :func:`run_check` invocation.

    Attributes:
        findings: active findings, sorted by (path, line, rule).
        suppressed: count of findings silenced by inline comments.
        baselined: count of findings matched by the baseline.
        baseline_entries: fingerprints the supplied baseline carried.
        files_checked: number of modules scanned.
        call_sites: call sites seen by the project call graph (0 when no
            active rule needed the graph).
        resolved_calls: call sites whose resolution is exact (direct,
            method, or provably external; see
            :mod:`repro.staticcheck.graph`).
    """

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    baseline_entries: int = 0
    files_checked: int = 0
    call_sites: int = 0
    resolved_calls: int = 0

    @property
    def clean(self) -> bool:
        """True when no active findings remain."""
        return not self.findings

    def findings_by_rule(self) -> Dict[str, int]:
        """Active finding counts keyed by rule id, sorted by id."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def _unused_suppression_findings(
    module: Module,
    used: Dict[int, Set[str]],
    active_ids: frozenset,
    rule: Rule,
) -> Iterator[Finding]:
    """R0: suppression comments that silenced nothing this run.

    A ``disable=Rn`` token is stale when ``Rn`` ran and suppressed no
    finding on that line; an unknown token is always stale.  Tokens for
    rules *not* selected this run are skipped (a partial ``--rules`` run
    cannot prove anything about them), and ``disable=all`` is only
    judged when the full registry ran.
    """
    full_run = active_ids >= frozenset(RULE_REGISTRY)
    for lineno, line in enumerate(module.lines, start=1):
        tokens = suppressed_rules(line)
        if not tokens:
            continue
        used_here = used.get(lineno, set())
        for token in sorted(tokens):
            if token == "all":
                if used_here or not full_run:
                    continue
            elif token in RULE_REGISTRY:
                if token not in active_ids or token in used_here:
                    continue
                if token == rule.id:
                    continue
            yield Finding(
                rule=rule.id,
                path=module.relpath,
                line=lineno,
                column=max(line.find("#"), 0),
                message=(
                    f"suppression 'staticcheck: disable={token}' silences "
                    f"nothing on this line"
                    + (
                        ""
                        if token in RULE_REGISTRY or token == "all"
                        else f" (unknown rule id {token!r})"
                    )
                ),
                hint=rule.hint,
                line_text=module.line_text(lineno),
            )


def run_check(
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Iterable[Tuple[str, str, str]]] = None,
    build_graph: bool = False,
) -> CheckResult:
    """Lint every module under ``root`` with the given rules.

    Args:
        root: directory to scan (typically ``src/repro`` or a fixture
            tree mirroring its layout).
        rules: rule instances to run (default: all registered rules).
        baseline: grandfathered finding fingerprints; each matching
            fingerprint absorbs at most as many findings as it appears.
        build_graph: force the project call graph even when no active
            rule needs it (``--stats`` reports its coverage).

    Raises:
        ConfigurationError: when ``root`` is not a directory or a module
            fails to parse.
    """
    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(f"lint root {root} is not a directory")
    active_rules = tuple(rules) if rules is not None else default_rules()
    active_ids = frozenset(rule.id for rule in active_rules)
    event_names, reason_codes = _registry_from_tree(root)
    modules = tuple(
        load_module(path, root) for path in _iter_source_files(root)
    )
    graph = None
    if build_graph or any(rule.needs_graph for rule in active_rules):
        from repro.staticcheck.graph import build_graph as _build

        graph = _build(modules)
    context = CheckContext(
        root=root,
        event_names=event_names,
        reason_codes=reason_codes,
        modules=modules,
        graph=graph,
    )
    budget: Dict[Tuple[str, str, str], int] = {}
    baseline_entries = 0
    for fingerprint in baseline or ():
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
        baseline_entries += 1
    result = CheckResult(baseline_entries=baseline_entries)
    result.files_checked = len(modules)
    if graph is not None:
        coverage = graph.coverage()
        result.call_sites = coverage.call_sites
        result.resolved_calls = coverage.resolved
    modules_by_path = {module.relpath: module for module in modules}
    #: (relpath, line) -> rule ids actually suppressed there, feeding R0.
    used_suppressions: Dict[str, Dict[int, Set[str]]] = {}

    def _admit(
        finding: Finding, module: Module, explicit_only: bool = False
    ) -> None:
        # ``explicit_only`` (the R0 findings): a stale ``disable=all``
        # must not silence its own staleness report, so only a literal
        # ``disable=R0`` token counts.
        tokens = suppressed_rules(module.line_text(finding.line))
        silenced = (
            finding.rule in tokens
            if explicit_only
            else bool(tokens) and ("all" in tokens or finding.rule in tokens)
        )
        if silenced:
            result.suppressed += 1
            used_suppressions.setdefault(module.relpath, {}).setdefault(
                finding.line, set()
            ).add(finding.rule)
            return
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.baselined += 1
            return
        result.findings.append(finding)

    for module in modules:
        for rule in active_rules:
            if rule.project or not rule.applies_to(module):
                continue
            for finding in rule.check(module, context):
                _admit(finding, module)
    for rule in active_rules:
        if not rule.project:
            continue
        for finding in rule.check_project(context):
            owner = modules_by_path.get(finding.path)
            if owner is None:
                result.findings.append(finding)
                continue
            _admit(finding, owner)
    unused_rule = next(
        (rule for rule in active_rules if rule.id == "R0"), None
    )
    if unused_rule is not None:
        for module in modules:
            for finding in _unused_suppression_findings(
                module,
                used_suppressions.get(module.relpath, {}),
                active_ids,
                unused_rule,
            ):
                _admit(finding, module, explicit_only=True)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.column))
    return result
