"""A small worklist dataflow engine over the project call graph.

Two query shapes cover the interprocedural rules:

* :func:`solve` — a monotone fixpoint over call-graph facts.  Each
  function's fact is recomputed from its local contribution and its
  callees' current facts by a rule-supplied transfer function; when a
  fact changes, the function's callers re-enter the worklist.  Because
  transfer functions are monotone joins over finite fact sets, the
  fixpoint is unique — worklist order affects only running time, never
  the result.

* :func:`reachable_from` — forward reachability from a set of entry
  points, with breadth-first parent pointers so rules can render the
  *shortest* call chain from an entry to any reached function.  Sorted
  frontier expansion keeps chains deterministic.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.staticcheck.graph import ProjectGraph

F = TypeVar("F")

#: A transfer function: ``(qname, current facts) -> new fact``.  It must
#: be monotone in the callee facts it reads (only ever grow its result
#: as they grow) for :func:`solve` to terminate at the unique fixpoint.
Transfer = Callable[[str, Mapping[str, F]], F]


def solve(
    graph: ProjectGraph,
    bottom: F,
    transfer: Transfer[F],
) -> Dict[str, F]:
    """Iterate ``transfer`` over every function to its unique fixpoint.

    Args:
        graph: the project call graph.
        bottom: the initial (empty) fact every function starts from.
        transfer: recomputes one function's fact; it may read any other
            function's current fact from the mapping it is handed.

    Returns:
        The fixpoint fact per qualified function name.
    """
    facts: Dict[str, F] = {
        qname: bottom for qname in sorted(graph.functions)
    }
    pending: List[str] = sorted(graph.functions)
    queued: Set[str] = set(pending)
    while pending:
        qname = pending.pop(0)
        queued.discard(qname)
        updated = transfer(qname, facts)
        if updated == facts[qname]:
            continue
        facts[qname] = updated
        for caller in graph.callers(qname):
            if caller not in queued:
                queued.add(caller)
                pending.append(caller)
    return facts


def callee_facts(
    graph: ProjectGraph, qname: str, facts: Mapping[str, F]
) -> Iterable[Tuple[str, F]]:
    """The ``(target, fact)`` pairs a transfer function joins over."""
    for site in graph.callees(qname):
        for target in site.targets:
            fact = facts.get(target)
            if fact is not None:
                yield target, fact


def reachable_from(
    graph: ProjectGraph, entries: Sequence[str]
) -> Dict[str, Tuple[str, ...]]:
    """Functions reachable from ``entries``, with their shortest chains.

    Returns a mapping ``qname -> call chain`` (entry first, ``qname``
    last).  Entries map to their one-element chains.  Ties between
    equal-length chains break toward the lexicographically earlier
    entry/parent because expansion is breadth-first over sorted names.
    """
    chains: Dict[str, Tuple[str, ...]] = {}
    frontier: List[str] = []
    for entry in sorted(set(entries)):
        if entry in graph.functions and entry not in chains:
            chains[entry] = (entry,)
            frontier.append(entry)
    while frontier:
        next_frontier: List[str] = []
        for current in frontier:
            successors: Set[str] = set()
            for site in graph.callees(current):
                successors.update(site.targets)
            for successor in sorted(successors):
                if successor in chains:
                    continue
                chains[successor] = chains[current] + (successor,)
                next_frontier.append(successor)
        frontier = next_frontier
    return chains


def render_chain(chain: Sequence[str]) -> str:
    """Human-readable call chain (function tails joined by arrows)."""
    return " -> ".join(part.split("::", 1)[-1] for part in chain)
