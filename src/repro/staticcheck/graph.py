"""Project symbol table and call graph for the interprocedural rules.

The file-local rules (R1-R6) see one module at a time; the invariants
that matter most to the run cache — no RNG reachable from a fingerprint,
no mutation after publishing into a cache, only :mod:`repro.errors`
types escaping the public surface — are *whole-program* properties.
This module builds the shared substrate those rules query:

* a per-module symbol table (top-level functions, classes with their
  methods, import aliases, module-level names);
* a call graph over every function and method in the scanned tree.

Call resolution is deliberately simple and deterministic:

* ``f(...)`` resolves through local defs and from-imports (*direct*);
* ``mod.f(...)`` resolves through import aliases when ``mod`` maps to a
  file inside the tree (*direct*), and is classified *external* when it
  maps outside it;
* ``recv.m(...)`` resolves through the receiver's annotated type —
  parameter annotations, ``x: T`` locals, ``x = ClassName(...)``
  constructor assignments, ``self``/``cls``, and ``self.attr`` where the
  attribute's type is known from the class body or ``__init__``
  (*method*), following project base classes;
* any other attribute call falls back *conservatively* to every project
  method of that name (*fallback*), so dynamic dispatch can hide
  nothing from a reachability rule; a name matching no project function
  at all stays *unresolved*.

Everything is ordered (sorted names, source order within a module) so
two runs over the same tree build byte-identical graphs.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.staticcheck.engine import Module

#: Resolution classes a call site can land in (see module docstring).
RESOLUTION_DIRECT = "direct"
RESOLUTION_METHOD = "method"
RESOLUTION_EXTERNAL = "external"
RESOLUTION_FALLBACK = "fallback"
RESOLUTION_UNRESOLVED = "unresolved"

#: Resolutions counted as *resolved* in the coverage statistic: the
#: target set is exact (or provably outside the tree), not a guess.
RESOLVED_KINDS = frozenset(
    {RESOLUTION_DIRECT, RESOLUTION_METHOD, RESOLUTION_EXTERNAL}
)

#: Names of every builtin callable (``sorted``, ``len``, ``ValueError``).
_BUILTIN_NAMES = frozenset(dir(builtins))

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class ClassInfo:
    """One class definition in the scanned tree.

    Attributes:
        name: the bare class name.
        qname: ``relpath::ClassName``.
        relpath: defining module, relative to the scanned root.
        bases: base-class name texts (``Name``/``Attribute`` tails).
        methods: method name -> function qualified name.
        attr_types: instance-attribute name -> annotated type name,
            harvested from class-body ``AnnAssign`` fields (dataclasses)
            and ``self.x = param`` / ``self.x: T = ...`` in ``__init__``.
    """

    name: str
    qname: str
    relpath: str
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function or method in the scanned tree.

    Attributes:
        qname: ``relpath::name`` or ``relpath::Class.name``.
        relpath: defining module, relative to the scanned root.
        name: the bare function name.
        class_name: enclosing class name for methods, else ``None``.
        node: the parsed def node (body scans anchor findings here).
        lineno: 1-based definition line.
    """

    qname: str
    relpath: str
    name: str
    class_name: Optional[str]
    node: FunctionNode
    lineno: int

    @property
    def is_public(self) -> bool:
        """True when neither the function nor its class is underscored."""
        if self.name.startswith("_"):
            return False
        if self.class_name is not None and self.class_name.startswith("_"):
            return False
        return True


@dataclass(eq=False)
class CallSite:
    """One syntactic call inside a function body.

    Attributes:
        caller: qualified name of the enclosing function.
        node: the ``ast.Call`` node.
        text: rendered callee (``"obj.method"`` / ``"helper"``).
        targets: qualified names of possible project callees (empty for
            external and unresolved sites).
        resolution: one of the ``RESOLUTION_*`` classes.
    """

    caller: str
    node: ast.Call
    text: str
    targets: Tuple[str, ...]
    resolution: str

    @property
    def resolved(self) -> bool:
        """True when the target set is exact (counted as covered)."""
        return self.resolution in RESOLVED_KINDS


@dataclass
class ModuleIndex:
    """Symbol table of one module.

    Attributes:
        relpath: module path relative to the scanned root.
        functions: top-level function name -> qualified name.
        classes: class name -> :class:`ClassInfo`.
        imports: local name -> ``(module, original name)`` from-imports.
        module_aliases: local name -> dotted module (plain imports).
        module_globals: names assigned at module top level (registries,
            caches — the mutable state the purity rule watches).
    """

    relpath: str
    functions: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    module_globals: Set[str] = field(default_factory=set)


@dataclass
class GraphCoverage:
    """Call-resolution accounting for ``datastage lint --stats``.

    Attributes:
        call_sites: total syntactic calls seen.
        resolved: sites whose resolution is exact (direct, method, or
            provably external).
    """

    call_sites: int
    resolved: int

    @property
    def percent(self) -> float:
        """Resolved share of all call sites, 100.0 for an empty graph."""
        if self.call_sites == 0:
            return 100.0
        return 100.0 * self.resolved / self.call_sites


def walk_body(node: FunctionNode) -> Iterator[ast.AST]:
    """Every AST node of a function body, *excluding* nested defs.

    Nested function and class definitions open their own scopes — a
    ``raise`` inside a closure does not escape when the closure is merely
    defined — so intraprocedural scans stop at them.  (The call graph
    itself attributes nested calls to the outer function; see
    :func:`_walk_calls`.)
    """
    queue: List[ast.AST] = list(ast.iter_child_nodes(node))
    while queue:
        child = queue.pop(0)
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield child
        queue.extend(ast.iter_child_nodes(child))


def _walk_calls(node: FunctionNode) -> Iterator[ast.Call]:
    """Every call inside a function, including its nested closures.

    A closure runs with the outer function's data, so reachability rules
    treat its calls as the outer function's own; nested *class* bodies
    are skipped (their methods are graph nodes in their own right).
    """
    queue: List[ast.AST] = list(ast.iter_child_nodes(node))
    while queue:
        child = queue.pop(0)
        if isinstance(child, ast.ClassDef):
            continue
        if isinstance(child, ast.Call):
            yield child
        queue.extend(ast.iter_child_nodes(child))


def annotation_type_name(annotation: Optional[ast.AST]) -> Optional[str]:
    """Extract the class name an annotation refers to, when recognizable.

    Handles ``Name``, dotted ``Attribute`` tails, string annotations,
    ``Optional[T]`` / ``Union[T, None]`` / ``T | None`` unwrapping.
    Container annotations (``List[T]``) yield ``None`` — the receiver of
    a method call is the container, not its elements.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        text = annotation.value.strip()
        tail = text.split("[", 1)[0].split(".")[-1].strip()
        return tail if tail.isidentifier() else None
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = (
            head.id
            if isinstance(head, ast.Name)
            else head.attr
            if isinstance(head, ast.Attribute)
            else None
        )
        if head_name == "Optional":
            return annotation_type_name(annotation.slice)
        if head_name == "Union" and isinstance(annotation.slice, ast.Tuple):
            names = [
                annotation_type_name(element)
                for element in annotation.slice.elts
                if not (
                    isinstance(element, ast.Constant)
                    and element.value is None
                )
            ]
            if len(names) == 1:
                return names[0]
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        sides = [
            side
            for side in (annotation.left, annotation.right)
            if not (
                isinstance(side, ast.Constant) and side.value is None
            )
        ]
        if len(sides) == 1:
            return annotation_type_name(sides[0])
    return None


def _callee_text(func: ast.AST) -> str:
    """Render a call's callee expression for messages (best effort)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return f"{_callee_text(func.value)}.{func.attr}"
    if isinstance(func, ast.Call):
        return f"{_callee_text(func.func)}(...)"
    return "<expr>"


def _index_class(node: ast.ClassDef, relpath: str) -> ClassInfo:
    """Build the :class:`ClassInfo` of one class definition."""
    bases = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
    info = ClassInfo(
        name=node.name,
        qname=f"{relpath}::{node.name}",
        relpath=relpath,
        bases=tuple(bases),
    )
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[child.name] = (
                f"{relpath}::{node.name}.{child.name}"
            )
            if child.name == "__init__":
                _harvest_init_attr_types(child, info)
        elif isinstance(child, ast.AnnAssign) and isinstance(
            child.target, ast.Name
        ):
            type_name = annotation_type_name(child.annotation)
            if type_name is not None:
                info.attr_types.setdefault(child.target.id, type_name)
    return info


def _harvest_init_attr_types(init: FunctionNode, info: ClassInfo) -> None:
    """Record ``self.x`` types assigned in ``__init__``."""
    param_types: Dict[str, str] = {}
    for arg in init.args.args + init.args.kwonlyargs:
        type_name = annotation_type_name(arg.annotation)
        if type_name is not None:
            param_types[arg.arg] = type_name
    for node in walk_body(init):
        target: Optional[ast.AST] = None
        type_name = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(node.value, ast.Name):
                type_name = param_types.get(node.value.id)
            elif isinstance(node.value, ast.Call) and isinstance(
                node.value.func, ast.Name
            ):
                type_name = node.value.func.id
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            type_name = annotation_type_name(node.annotation)
        if (
            type_name is not None
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            info.attr_types.setdefault(target.attr, type_name)


def index_module(module: Module) -> ModuleIndex:
    """Build one module's symbol table."""
    index = ModuleIndex(relpath=module.relpath)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[node.name] = f"{module.relpath}::{node.name}"
        elif isinstance(node, ast.ClassDef):
            index.classes[node.name] = _index_class(node, module.relpath)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    index.module_globals.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            index.module_globals.add(element.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            index.module_globals.add(node.target.id)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                index.module_aliases[
                    name.asname or name.name.split(".")[0]
                ] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                index.imports[name.asname or name.name] = (
                    node.module,
                    name.name,
                )
    return index


class ProjectGraph:
    """The whole-program symbol table plus call graph.

    Built once per lint run by :func:`build_graph`; rules query it read
    only.  All accessors return deterministically ordered data.
    """

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules: Tuple[Module, ...] = tuple(modules)
        self.module_index: Dict[str, ModuleIndex] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.call_sites: List[CallSite] = []
        self._calls_by_caller: Dict[str, List[CallSite]] = {}
        self._callers: Dict[str, List[str]] = {}
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        self._methods_by_name: Dict[str, List[str]] = {}

    # -- module path resolution --------------------------------------

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Map a dotted import path to a relpath inside the tree.

        Tries suffixes longest-first (``repro.core.state`` matches
        ``core/state.py`` when the scanned root *is* the package), so
        both ``src/repro`` scans and fixture trees resolve naturally.
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            stem = "/".join(parts[start:])
            for candidate in (f"{stem}.py", f"{stem}/__init__.py"):
                if candidate in self.module_index:
                    return candidate
        return None

    def class_named(
        self, type_name: str, index: ModuleIndex
    ) -> Optional[ClassInfo]:
        """Resolve a type name seen in ``index``'s module to its class.

        Preference order: the module's own classes, its from-imports,
        then the (sorted-first) project-wide class of that name.
        """
        local = index.classes.get(type_name)
        if local is not None:
            return local
        imported = index.imports.get(type_name)
        if imported is not None:
            module_path = self.resolve_module(imported[0])
            if module_path is not None:
                other = self.module_index[module_path].classes.get(
                    imported[1]
                )
                if other is not None:
                    return other
        candidates = self._classes_by_name.get(type_name)
        if candidates:
            return candidates[0]
        return None

    def method_on(
        self, info: ClassInfo, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[str]:
        """Look a method up on a class, following project base classes."""
        seen = _seen if _seen is not None else set()
        if info.qname in seen:
            return None
        seen.add(info.qname)
        found = info.methods.get(method)
        if found is not None:
            return found
        defining_index = self.module_index[info.relpath]
        for base_name in info.bases:
            base = self.class_named(base_name, defining_index)
            if base is None:
                continue
            found = self.method_on(base, method, seen)
            if found is not None:
                return found
        return None

    # -- graph accessors ----------------------------------------------

    def callees(self, qname: str) -> Tuple[CallSite, ...]:
        """The call sites inside one function, in source order."""
        return tuple(self._calls_by_caller.get(qname, ()))

    def callers(self, qname: str) -> Tuple[str, ...]:
        """Functions with at least one site targeting ``qname``, sorted."""
        return tuple(self._callers.get(qname, ()))

    def coverage(self) -> GraphCoverage:
        """Resolution accounting over every call site."""
        return GraphCoverage(
            call_sites=len(self.call_sites),
            resolved=sum(1 for site in self.call_sites if site.resolved),
        )

    def chain(self, source: str, target: str) -> Optional[Tuple[str, ...]]:
        """Shortest call chain from ``source`` to ``target`` (inclusive).

        Breadth-first over sorted successor sets, so the returned chain
        is deterministic.  ``None`` when ``target`` is unreachable.
        """
        if source == target:
            return (source,)
        parents: Dict[str, str] = {}
        frontier = [source]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                successors: Set[str] = set()
                for site in self.callees(current):
                    successors.update(site.targets)
                for successor in sorted(successors):
                    if successor in parents or successor == source:
                        continue
                    parents[successor] = current
                    if successor == target:
                        chain = [target]
                        while chain[-1] != source:
                            chain.append(parents[chain[-1]])
                        return tuple(reversed(chain))
                    next_frontier.append(successor)
            frontier = next_frontier
        return None


def _local_types(
    function: FunctionNode, owner: Optional[ClassInfo]
) -> Dict[str, str]:
    """Map local names to their annotated (or constructed) type names."""
    types: Dict[str, str] = {}
    args = function.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        type_name = annotation_type_name(arg.annotation)
        if type_name is not None:
            types[arg.arg] = type_name
    if owner is not None and (args.args or args.posonlyargs):
        first = (args.posonlyargs + args.args)[0].arg
        decorators = {
            d.id
            for d in function.decorator_list
            if isinstance(d, ast.Name)
        }
        if "staticmethod" not in decorators:
            types[first] = owner.name
    for node in walk_body(function):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            type_name = annotation_type_name(node.annotation)
            if type_name is not None:
                types[node.target.id] = type_name
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id[:1].isupper()
        ):
            types[node.targets[0].id] = node.value.func.id
    return types


def build_graph(modules: Sequence[Module]) -> ProjectGraph:
    """Index every module and resolve every call site."""
    graph = ProjectGraph(modules)
    for module in modules:
        graph.module_index[module.relpath] = index_module(module)
    for index in graph.module_index.values():
        for info in index.classes.values():
            graph._classes_by_name.setdefault(info.name, []).append(info)
            for method_name, qname in info.methods.items():
                graph._methods_by_name.setdefault(method_name, []).append(
                    qname
                )
    for name in graph._classes_by_name:
        graph._classes_by_name[name].sort(key=lambda c: c.qname)
    for name in graph._methods_by_name:
        graph._methods_by_name[name].sort()
    for module in modules:
        _register_functions(graph, module)
    for module in modules:
        index = graph.module_index[module.relpath]
        for info in _module_functions(module):
            owner = (
                index.classes.get(info.class_name)
                if info.class_name is not None
                else None
            )
            _resolve_function_calls(graph, module, info, owner)
    for qname in graph.functions:
        graph._calls_by_caller.setdefault(qname, [])
    callers: Dict[str, Set[str]] = {}
    for site in graph.call_sites:
        for target in site.targets:
            callers.setdefault(target, set()).add(site.caller)
    graph._callers = {
        target: sorted(names) for target, names in sorted(callers.items())
    }
    return graph


def _module_functions(module: Module) -> Iterator[FunctionInfo]:
    """Top-level functions and class methods of one module, in order."""
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield FunctionInfo(
                qname=f"{module.relpath}::{node.name}",
                relpath=module.relpath,
                name=node.name,
                class_name=None,
                node=node,
                lineno=node.lineno,
            )
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield FunctionInfo(
                        qname=f"{module.relpath}::{node.name}.{child.name}",
                        relpath=module.relpath,
                        name=child.name,
                        class_name=node.name,
                        node=child,
                        lineno=child.lineno,
                    )


def _register_functions(graph: ProjectGraph, module: Module) -> None:
    for info in _module_functions(module):
        graph.functions[info.qname] = info


def _resolve_function_calls(
    graph: ProjectGraph,
    module: Module,
    info: FunctionInfo,
    owner: Optional[ClassInfo],
) -> None:
    index = graph.module_index[module.relpath]
    local_types = _local_types(info.node, owner)
    sites = graph._calls_by_caller.setdefault(info.qname, [])
    for call in _walk_calls(info.node):
        site = _resolve_call(graph, index, info, owner, local_types, call)
        sites.append(site)
        graph.call_sites.append(site)


def _constructor_targets(
    graph: ProjectGraph, class_info: ClassInfo
) -> Tuple[Tuple[str, ...], str]:
    """Edges for ``ClassName(...)``: ``__init__``/``__post_init__``."""
    targets = []
    for hook in ("__init__", "__post_init__"):
        found = graph.method_on(class_info, hook)
        if found is not None:
            targets.append(found)
    return tuple(sorted(targets)), RESOLUTION_METHOD


def _resolve_call(
    graph: ProjectGraph,
    index: ModuleIndex,
    info: FunctionInfo,
    owner: Optional[ClassInfo],
    local_types: Dict[str, str],
    call: ast.Call,
) -> CallSite:
    func = call.func
    text = _callee_text(func)

    def site(targets: Tuple[str, ...], resolution: str) -> CallSite:
        return CallSite(
            caller=info.qname,
            node=call,
            text=text,
            targets=targets,
            resolution=resolution,
        )

    if isinstance(func, ast.Name):
        name = func.id
        local = index.functions.get(name)
        if local is not None:
            return site((local,), RESOLUTION_DIRECT)
        local_class = index.classes.get(name)
        if local_class is not None:
            return site(*_constructor_targets(graph, local_class))
        imported = index.imports.get(name)
        if imported is not None:
            module_path = graph.resolve_module(imported[0])
            if module_path is None:
                return site((), RESOLUTION_EXTERNAL)
            other = graph.module_index[module_path]
            target = other.functions.get(imported[1])
            if target is not None:
                return site((target,), RESOLUTION_DIRECT)
            target_class = other.classes.get(imported[1])
            if target_class is not None:
                return site(*_constructor_targets(graph, target_class))
            return site((), RESOLUTION_EXTERNAL)
        if name in _BUILTIN_NAMES:
            return site((), RESOLUTION_EXTERNAL)
        return site((), RESOLUTION_UNRESOLVED)

    if isinstance(func, ast.Attribute):
        method = func.attr
        receiver = func.value
        receiver_type: Optional[str] = None
        if isinstance(receiver, ast.Name):
            base = receiver.id
            if base in index.module_aliases:
                dotted = f"{index.module_aliases[base]}"
                module_path = graph.resolve_module(dotted)
                if module_path is None:
                    return site((), RESOLUTION_EXTERNAL)
                other = graph.module_index[module_path]
                target = other.functions.get(method)
                if target is not None:
                    return site((target,), RESOLUTION_DIRECT)
                target_class = other.classes.get(method)
                if target_class is not None:
                    return site(*_constructor_targets(graph, target_class))
                return site((), RESOLUTION_EXTERNAL)
            receiver_type = local_types.get(base)
            if receiver_type is None and (
                base in index.classes or base in index.imports
            ):
                class_info = graph.class_named(base, index)
                if class_info is not None:
                    receiver_type = class_info.name
        elif (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
        ):
            base = receiver.value.id
            if base in index.module_aliases:
                dotted = f"{index.module_aliases[base]}.{receiver.attr}"
                module_path = graph.resolve_module(dotted)
                if module_path is not None:
                    other = graph.module_index[module_path]
                    target = other.functions.get(method)
                    if target is not None:
                        return site((target,), RESOLUTION_DIRECT)
                return site((), RESOLUTION_EXTERNAL)
            base_type = local_types.get(base)
            if base_type is not None:
                base_class = graph.class_named(base_type, index)
                if base_class is not None:
                    receiver_type = base_class.attr_types.get(receiver.attr)
        if receiver_type is not None:
            class_info = graph.class_named(receiver_type, index)
            if class_info is not None:
                target = graph.method_on(class_info, method)
                if target is not None:
                    return site((target,), RESOLUTION_METHOD)
                # The type is known but carries no such method anywhere
                # in the project: an inherited builtin (dict.get on a
                # Dict field) or a stdlib base — outside the tree.
                return site((), RESOLUTION_EXTERNAL)
        fallback = graph._methods_by_name.get(method)
        if fallback:
            return site(tuple(fallback), RESOLUTION_FALLBACK)
        return site((), RESOLUTION_UNRESOLVED)

    return site((), RESOLUTION_UNRESOLVED)
