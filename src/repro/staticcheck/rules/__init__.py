"""Built-in staticcheck rules.

Importing this package registers every rule with
:data:`repro.staticcheck.engine.RULE_REGISTRY`:

====  =====================================================
R1    no unseeded RNG / wall-clock reads in scheduling code
R2    no raw float ``==``/``!=`` on time or bandwidth values
R3    tracer event/reason literals must be registered
R4    codec modules: schema versions + field-set agreement
R5    no iteration over unordered sets in scheduling code
R6    public ``core``/``heuristics`` signatures fully typed
====  =====================================================

See ``docs/STATICCHECK.md`` for rationale and examples.
"""

from repro.staticcheck.rules import annotations  # noqa: F401
from repro.staticcheck.rules import codec_schema  # noqa: F401
from repro.staticcheck.rules import determinism  # noqa: F401
from repro.staticcheck.rules import floatcmp  # noqa: F401
from repro.staticcheck.rules import tracer_registry  # noqa: F401
