"""Built-in staticcheck rules.

Importing this package registers every rule with
:data:`repro.staticcheck.engine.RULE_REGISTRY`:

====  =====================================================
R0    no stale ``# staticcheck: disable=`` suppressions
R1    no unseeded RNG / wall-clock reads in scheduling code
R2    no raw float ``==``/``!=`` on time or bandwidth values
R3    tracer event/reason literals must be registered
R4    codec modules: schema versions + field-set agreement
R5    no iteration over unordered sets in scheduling code
R6    public ``core``/``heuristics`` signatures fully typed
R7    no impurity reachable from fingerprint/codec entry points
R8    no mutation after publishing into a cache/record/tracer
R9    public surface leaks only repro.errors / documented builtins
====  =====================================================

R1–R6 are per-module; R7 and R9 are whole-program rules driven by the
project call graph (:mod:`repro.staticcheck.graph`) and the worklist
dataflow engine (:mod:`repro.staticcheck.flow`); R0 is emitted by the
engine itself from its suppression-usage ledger.

See ``docs/STATICCHECK.md`` for rationale and examples.
"""

from repro.staticcheck.rules import annotations  # noqa: F401
from repro.staticcheck.rules import codec_schema  # noqa: F401
from repro.staticcheck.rules import determinism  # noqa: F401
from repro.staticcheck.rules import exceptions  # noqa: F401
from repro.staticcheck.rules import floatcmp  # noqa: F401
from repro.staticcheck.rules import frozen  # noqa: F401
from repro.staticcheck.rules import purity  # noqa: F401
from repro.staticcheck.rules import suppressions  # noqa: F401
from repro.staticcheck.rules import tracer_registry  # noqa: F401
