"""R6: public functions in ``core/`` and ``heuristics/`` are fully typed.

These two packages are the API surface every heuristic, baseline, and
experiment builds on; the strict mypy gate (``[tool.mypy]`` in
``pyproject.toml``) can only hold if their public signatures carry
complete annotations.  This rule is the fast, zero-dependency tier of
that gate: every public function and method (name not starting with
``_``) must annotate each parameter (``self``/``cls`` excepted) and its
return type.  Dunder methods other than ``__init__`` are treated as
public; ``__init__`` is checked for parameters but not for a return
annotation (``-> None`` is allowed, not required).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)


def _is_public(name: str) -> bool:
    if name == "__init__":
        return True
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def _unannotated_params(function: ast.FunctionDef) -> List[str]:
    names: List[str] = []
    args = function.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in {"self", "cls"}:
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            names.append(arg.arg)
    for vararg in (args.vararg, args.kwarg):
        if vararg is not None and vararg.annotation is None:
            names.append(vararg.arg)
    return names


@register
class PublicAnnotationRule(Rule):
    """R6: public core/heuristics signatures must be fully annotated."""

    id = "R6"
    title = "public core/ and heuristics/ functions must be fully typed"
    hint = "annotate every parameter and the return type"
    scope = ("core", "heuristics")

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Flag public core/heuristics signatures with missing annotations."""
        # Walk module and class bodies only — nested helpers are private
        # by construction regardless of their name.
        todo: List[ast.stmt] = list(module.tree.body)
        while todo:
            node = todo.pop(0)
            if isinstance(node, ast.ClassDef):
                todo.extend(node.body)
                continue
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not _is_public(node.name):
                continue
            missing = _unannotated_params(node)
            if missing:
                yield module.finding(
                    self,
                    node,
                    f"public function {node.name} has unannotated "
                    f"parameter(s) {', '.join(missing)}",
                )
            if node.returns is None and node.name != "__init__":
                yield module.finding(
                    self,
                    node,
                    f"public function {node.name} has no return "
                    f"annotation",
                )
