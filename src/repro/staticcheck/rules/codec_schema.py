"""R4: codec modules must be schema-versioned and field-consistent.

Serialized artifacts (scenarios, schedules, run records, metrics,
profiles) are cached on disk and merged across PRs; the run cache keys
on their exact byte layout.  A codec edit that adds or renames a field
without bumping the schema version makes stale cache entries parse into
silently-wrong objects.  Two statically checkable invariants:

* a module defining ``to_dict`` / ``from_dict`` codecs (any function
  whose name is, or ends with, ``to_dict`` / ``from_dict``) must define
  a module-level version constant (``SCHEMA_VERSION``, ``*_SCHEMA_VERSION``
  or ``FORMAT_VERSION``);
* each ``X_to_dict`` / ``X_from_dict`` pair must agree on its field set:
  every key the encoder writes must be read back by the decoder (version
  stamps and the ``kind`` tag excepted), and every key the decoder
  *requires* (``doc["k"]`` / ``_require(doc, "k")``) must be written.
  Keys read via ``doc.get("k")`` are optional by construction and may
  legitimately be absent from the encoder (legacy tolerance).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)

#: Keys exempt from the "written but never read back" check: pure
#: stamps the decoder validates elsewhere or ignores by design.
STAMP_KEYS = frozenset({"format_version", "schema_version"})


def _is_codec_name(name: str, suffix: str) -> bool:
    return name == suffix or name.endswith("_" + suffix)


def _codec_functions(
    body: List[ast.stmt],
) -> List[ast.FunctionDef]:
    return [
        node
        for node in body
        if isinstance(node, ast.FunctionDef)
        and (
            _is_codec_name(node.name, "to_dict")
            or _is_codec_name(node.name, "from_dict")
        )
    ]


def _has_version_constant(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and (
                    target.id == "SCHEMA_VERSION"
                    or target.id.endswith("_VERSION")
                ):
                    return True
        elif isinstance(node, ast.ImportFrom):
            # A codec module may delegate versioning to the module that
            # owns the constant (serialization.py imports
            # METRICS_SCHEMA_VERSION, for example).
            for name in node.names:
                local = name.asname or name.name
                if local.endswith("_VERSION") or local == "SCHEMA_VERSION":
                    return True
    return False


def _written_keys(function: ast.FunctionDef) -> Optional[Set[str]]:
    """Top-level string keys of every dict literal the encoder returns.

    ``None`` when no return statement yields a plain dict literal (the
    encoder builds its document some other way; the pair check is
    skipped rather than guessed at).
    """
    keys: Set[str] = set()
    saw_dict = False
    for node in ast.walk(function):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            saw_dict = True
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
    return keys if saw_dict else None


def _document_param(function: ast.FunctionDef) -> Optional[str]:
    """The decoder's document parameter name (first non-self/cls arg)."""
    for arg in function.args.args:
        if arg.arg in {"self", "cls"}:
            continue
        return arg.arg
    return None


def _read_keys(
    function: ast.FunctionDef,
) -> Tuple[Set[str], Set[str]]:
    """``(required, optional)`` keys the decoder reads off its document."""
    param = _document_param(function)
    required: Set[str] = set()
    optional: Set[str] = set()
    if param is None:
        return required, optional
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
        ):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, str
            ):
                required.add(index.value)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Name)
                and func.value.id == param
                and node.args
            ):
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    optional.add(key.value)
            elif (
                isinstance(func, ast.Name)
                and func.id == "_require"
                and len(node.args) >= 2
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == param
            ):
                key = node.args[1]
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    required.add(key.value)
    return required, optional


def _pair_name(name: str) -> str:
    """The sibling codec's name (``x_to_dict`` <-> ``x_from_dict``)."""
    if _is_codec_name(name, "to_dict"):
        return name[: -len("to_dict")] + "from_dict"
    return name[: -len("from_dict")] + "to_dict"


def _codec_scopes(
    module: Module,
) -> Iterator[Tuple[str, List[ast.FunctionDef]]]:
    """Yield (scope label, codec functions) per module and class body."""
    top = _codec_functions(module.tree.body)
    if top:
        yield "module", top
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            methods = _codec_functions(node.body)
            if methods:
                yield node.name, methods


@register
class CodecSchemaRule(Rule):
    """R4: schema-version constants and to/from field-set agreement."""

    id = "R4"
    title = "codec modules need schema versions and consistent field sets"
    hint = (
        "add/bump a SCHEMA_VERSION constant and keep the to_dict/"
        "from_dict field sets in sync"
    )

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Check codec modules for version constants and field drift."""
        scopes = list(_codec_scopes(module))
        if not scopes:
            return
        if not _has_version_constant(module.tree):
            first = scopes[0][1][0]
            yield module.finding(
                self,
                first,
                "module defines to_dict/from_dict codecs but no "
                "module-level SCHEMA_VERSION (or *_VERSION) constant; "
                "cached artifacts cannot be invalidated on layout change",
            )
        for _scope, functions in scopes:
            by_name: Dict[str, ast.FunctionDef] = {
                function.name: function for function in functions
            }
            for function in functions:
                if not _is_codec_name(function.name, "to_dict"):
                    continue
                sibling = by_name.get(_pair_name(function.name))
                if sibling is None:
                    continue
                written = _written_keys(function)
                if written is None:
                    continue
                required, optional = _read_keys(sibling)
                drifted = sorted(
                    written - required - optional - STAMP_KEYS - {"kind"}
                )
                missing = sorted(required - written)
                if drifted:
                    yield module.finding(
                        self,
                        function,
                        f"{function.name} writes field(s) "
                        f"{', '.join(drifted)} that "
                        f"{sibling.name} never reads back — the codec "
                        f"field set drifted",
                    )
                if missing:
                    yield module.finding(
                        self,
                        sibling,
                        f"{sibling.name} requires field(s) "
                        f"{', '.join(missing)} that "
                        f"{function.name} never writes",
                    )
