"""R1 and R5: the determinism rules.

The run cache and the parallel sweep executor assume a scheduler run is a
pure function of ``(scenario, scheduler, weights)``.  Two syntactic bug
classes silently break that purity:

* **R1** — drawing from the process-global RNG (``random.random()``,
  ``numpy.random.*``) or reading the wall clock (``time.time``,
  ``datetime.now``) inside scheduling code.  Seeded ``random.Random``
  instances threaded through call sites are fine; ``time.perf_counter``
  is tolerated because elapsed-time stats are excluded from result
  fingerprints.
* **R5** — iterating an unordered ``set`` where the visit order can leak
  into schedule construction.  CPython set order varies with insertion
  history and hash seeds across versions; ``sorted(...)`` the set first.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)

#: Directories whose code must be deterministic (schedule-affecting).
DETERMINISM_SCOPE: Tuple[str, ...] = (
    "core",
    "routing",
    "heuristics",
    "baselines",
    "dynamic",
    "faults",
    "workload",
)

#: ``random`` module functions that consume the *global* (unseeded) RNG.
GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "weibullvariate",
        "triangular",
        "vonmisesvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: ``time`` module attributes that read the wall clock.
WALL_CLOCK_TIME_FUNCTIONS = frozenset(
    {"time", "time_ns", "localtime", "gmtime", "ctime"}
)

#: ``datetime.datetime`` / ``datetime.date`` constructors off "now".
WALL_CLOCK_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})


def _module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the modules they import (``np`` -> ``numpy``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name
    return aliases


def _from_imports(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Map local names to ``(module, original_name)`` from-imports."""
    imported: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for name in node.names:
                imported[name.asname or name.name] = (node.module, name.name)
    return imported


@register
class UnseededRandomnessRule(Rule):
    """R1: no global-RNG draws or wall-clock reads in scheduling code."""

    id = "R1"
    title = "no unseeded RNG or wall-clock reads in scheduling code"
    hint = (
        "thread a seeded random.Random through the call site; elapsed "
        "timing belongs in observability, not in scheduling decisions"
    )
    scope = DETERMINISM_SCOPE

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Flag unseeded RNG and wall-clock reads in scheduling code."""
        aliases = _module_aliases(module.tree)
        imported = _from_imports(module.tree)
        random_names = {
            name for name, target in aliases.items() if target == "random"
        }
        time_names = {
            name for name, target in aliases.items() if target == "time"
        }
        datetime_names = {
            name for name, target in aliases.items() if target == "datetime"
        }
        numpy_names = {
            name for name, target in aliases.items() if target == "numpy"
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                base, attr = node.value.id, node.attr
                if base in random_names and attr in GLOBAL_RNG_FUNCTIONS:
                    yield module.finding(
                        self,
                        node,
                        f"call to the process-global RNG random.{attr}; "
                        f"schedules must derive all randomness from a "
                        f"seeded random.Random",
                    )
                elif base in time_names and attr in WALL_CLOCK_TIME_FUNCTIONS:
                    yield module.finding(
                        self,
                        node,
                        f"wall-clock read time.{attr} in scheduling code; "
                        f"simulated time is the only clock here",
                    )
                elif base in numpy_names and attr == "random":
                    yield module.finding(
                        self,
                        node,
                        "numpy.random global state in scheduling code; "
                        "use a seeded Generator threaded from the scenario",
                    )
                elif (
                    base in datetime_names or base in {"datetime", "date"}
                ) and attr in WALL_CLOCK_DATETIME_METHODS:
                    # Covers datetime.datetime.now via the nested attribute
                    # (datetime.datetime).now handled below; this arm
                    # catches `from datetime import datetime` usage.
                    origin = imported.get(base)
                    if base in datetime_names or (
                        origin is not None and origin[0] == "datetime"
                    ):
                        yield module.finding(
                            self,
                            node,
                            f"wall-clock read {base}.{attr} in scheduling "
                            f"code; simulated time is the only clock here",
                        )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Attribute
            ):
                # datetime.datetime.now(...) / numpy.random.rand(...)
                inner = node.value
                if isinstance(inner.value, ast.Name):
                    root, mid, attr = inner.value.id, inner.attr, node.attr
                    if (
                        root in datetime_names
                        and mid in {"datetime", "date"}
                        and attr in WALL_CLOCK_DATETIME_METHODS
                    ):
                        yield module.finding(
                            self,
                            node,
                            f"wall-clock read datetime.{mid}.{attr} in "
                            f"scheduling code",
                        )
                    elif root in numpy_names and mid == "random":
                        yield module.finding(
                            self,
                            node,
                            f"numpy.random.{attr} draws from global state; "
                            f"use a seeded Generator",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                origin = imported.get(node.func.id)
                if origin is None:
                    continue
                source_module, original = origin
                if (
                    source_module == "random"
                    and original in GLOBAL_RNG_FUNCTIONS
                ):
                    yield module.finding(
                        self,
                        node,
                        f"call to the process-global RNG "
                        f"random.{original} (imported as "
                        f"{node.func.id}); use a seeded random.Random",
                    )
                elif (
                    source_module == "time"
                    and original in WALL_CLOCK_TIME_FUNCTIONS
                ):
                    yield module.finding(
                        self,
                        node,
                        f"wall-clock read time.{original} (imported as "
                        f"{node.func.id}) in scheduling code",
                    )


def _is_set_expression(node: ast.AST) -> bool:
    """True for expressions that are syntactically unordered sets."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def _is_set_annotation(annotation: ast.AST) -> bool:
    """True for ``Set[...]`` / ``FrozenSet[...]`` / ``set`` annotations."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in {"Set", "FrozenSet", "AbstractSet", "MutableSet"}
    if isinstance(target, ast.Name):
        return target.id in {
            "Set",
            "FrozenSet",
            "AbstractSet",
            "MutableSet",
            "set",
            "frozenset",
        }
    return False


def _set_locals(function: ast.AST) -> Set[str]:
    """Local names provably bound to set objects inside one function."""
    names: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and _is_set_expression(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expression(node.value)
            ):
                names.add(node.target.id)
        elif isinstance(node, ast.arg):
            if node.annotation is not None and _is_set_annotation(
                node.annotation
            ):
                names.add(node.arg)
    return names


@register
class SetIterationOrderRule(Rule):
    """R5: no iteration over unordered sets in schedule-affecting code."""

    id = "R5"
    title = "no iteration over unordered sets in scheduling code"
    hint = "wrap the set in sorted(...) to pin the visit order"
    scope = DETERMINISM_SCOPE

    def _flag(self, module: Module, node: ast.AST, what: str) -> Finding:
        return module.finding(
            self,
            node,
            f"iteration over an unordered set ({what}); CPython set order "
            f"is not stable across runs and leaks into the schedule",
        )

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Flag iteration over provably unordered set expressions."""
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Nested functions are walked from both the outer and the inner
        # FunctionDef; dedupe by location so each site reports once.
        seen = set()
        for function in functions:
            set_names = _set_locals(function)
            for node in ast.walk(function):
                iterables = []
                if isinstance(node, ast.For):
                    iterables.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                           ast.DictComp)
                ):
                    iterables.extend(gen.iter for gen in node.generators)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name
                ):
                    # tuple(s) / list(s) materialize the unordered order.
                    if node.func.id in {"tuple", "list"} and node.args:
                        iterables.append(node.args[0])
                for candidate in iterables:
                    site = (candidate.lineno, candidate.col_offset)
                    if site in seen:
                        continue
                    if _is_set_expression(candidate):
                        seen.add(site)
                        yield self._flag(module, candidate, "set expression")
                    elif (
                        isinstance(candidate, ast.Name)
                        and candidate.id in set_names
                    ):
                        seen.add(site)
                        yield self._flag(
                            module, candidate, f"local set {candidate.id!r}"
                        )
