"""R9: exception contracts on the public CLI/experiments surface.

Two halves, one invariant: callers of the public surface must be able
to handle failures by catching :class:`repro.errors.DataStagingError`
(plus whatever builtins a function *documents*), and scheduling code
must never silently swallow arbitrary failures.

* **Contract half** (interprocedural): a public function in ``cli.py``,
  ``__main__.py``, or ``experiments/`` may only let escape

  - types defined in the tree's ``errors.py`` (the ``repro.errors``
    family), and
  - builtin exception types documented in a ``Raises:`` docstring
    section somewhere along the raising call chain.

  Raised-type sets propagate from callees to callers through the call
  graph (direct and typed-method edges), minus the types each
  ``try/except`` provably catches, and a type stops propagating once a
  function on the chain documents it — the contract is then on record.

* **Swallow half** (syntactic): a bare ``except:`` or a broad
  ``except Exception/BaseException`` handler in scheduling code whose
  body never re-raises is a finding.  Catch the narrow set the code can
  actually recover from — for infrastructure code that means
  ``repro.errors`` types plus the specific OS-level failures.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)
from repro.staticcheck.flow import solve
from repro.staticcheck.graph import (
    RESOLUTION_DIRECT,
    RESOLUTION_METHOD,
    FunctionNode,
    ProjectGraph,
)

#: Top-level path components forming the public contract surface.
CONTRACT_SCOPE = ("cli.py", "__main__.py", "experiments")

#: Top-level path components the swallow half patrols.
SWALLOW_SCOPE = (
    "core",
    "routing",
    "heuristics",
    "baselines",
    "dynamic",
    "experiments",
    "faults",
    "workload",
    "observability",
)

#: Builtin exceptions a public function may always let escape: they are
#: either not catchable by design (interpreter control flow) or signal
#: programmer errors no contract should promise to absorb.
ALWAYS_ALLOWED = frozenset(
    {
        "BaseException",
        "KeyboardInterrupt",
        "SystemExit",
        "GeneratorExit",
        "StopIteration",
        "StopAsyncIteration",
        "NotImplementedError",
        "AssertionError",
        "MemoryError",
        "RecursionError",
    }
)

#: Builtin exception classes by name (for issubclass catch matching).
_BUILTIN_EXCEPTIONS: Dict[str, type] = {
    name: obj
    for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
}

#: Handler names that catch everything.
_CATCH_ALL = frozenset({"<bare>", "Exception", "BaseException"})


def project_error_names(context: CheckContext) -> FrozenSet[str]:
    """Exception class names of the scanned tree's ``errors.py``.

    Falls back to the installed :mod:`repro.errors` hierarchy when the
    tree carries no ``errors.py`` (e.g. a partial fixture tree).
    """
    module = context.module_for("errors.py")
    if module is not None:
        names = {
            node.name
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        if names:
            return frozenset(names)
    import repro.errors as _errors

    return frozenset(
        name
        for name, obj in vars(_errors).items()
        if isinstance(obj, type) and issubclass(obj, Exception)
    )


def documented_raises(
    node: "FunctionNode | ast.ClassDef",
) -> FrozenSet[str]:
    """Exception names a definition's docstring contracts.

    Understands Google-style ``Raises:`` sections (the house style) and
    Sphinx ``:raises X:`` fields.  Dotted names contribute their tails.
    A class docstring's section covers the constructor (the house style
    documents ``__init__`` contracts on the class).
    """
    docstring = ast.get_docstring(node, clean=True)
    if not docstring:
        return frozenset()
    names: Set[str] = set()
    in_raises = False
    for raw_line in docstring.splitlines():
        line = raw_line.strip()
        if line.lower().startswith(":raises"):
            remainder = line.split(" ", 1)
            if len(remainder) == 2:
                head = remainder[1].split(":", 1)[0].strip()
                names.update(_split_type_list(head))
            continue
        if line == "Raises:":
            in_raises = True
            continue
        if in_raises:
            if not raw_line.startswith((" ", "\t")) and line:
                if line.endswith(":") and " " not in line:
                    # A sibling section header (Args:, Returns:, ...).
                    in_raises = False
                    continue
                in_raises = False
                continue
            if ":" in line:
                head = line.split(":", 1)[0].strip()
                names.update(_split_type_list(head))
    return frozenset(names)


def _split_type_list(text: str) -> Iterator[str]:
    for part in text.replace(",", " ").split():
        tail = part.split(".")[-1].strip("()")
        if tail.isidentifier():
            yield tail


def _handler_names(handler: ast.ExceptHandler) -> Tuple[str, ...]:
    """The type names one ``except`` clause catches."""
    if handler.type is None:
        return ("<bare>",)
    names: List[str] = []
    elements = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        elif isinstance(element, ast.Attribute):
            names.append(element.attr)
    return tuple(names) if names else ("<unknown>",)


def _catches(
    handler_names: Sequence[str],
    raised: str,
    project_errors: FrozenSet[str],
) -> bool:
    """True when a handler name set provably catches ``raised``."""
    for name in handler_names:
        if name in _CATCH_ALL or name == raised:
            return True
        handler_type = _BUILTIN_EXCEPTIONS.get(name)
        raised_type = _BUILTIN_EXCEPTIONS.get(raised)
        if (
            handler_type is not None
            and raised_type is not None
            and issubclass(raised_type, handler_type)
        ):
            return True
        if name == "DataStagingError" and raised in project_errors:
            return True
    return False


@dataclass
class _RaiseEvent:
    """One ``raise`` with the handler stacks guarding it."""

    type_name: str
    lineno: int
    guards: Tuple[Tuple[str, ...], ...]


@dataclass
class _CallEvent:
    """One project call with the handler stacks guarding it."""

    targets: Tuple[str, ...]
    guards: Tuple[Tuple[str, ...], ...]


@dataclass
class _FunctionSummary:
    """Local escape-analysis facts of one function."""

    raises: List[_RaiseEvent] = field(default_factory=list)
    calls: List[_CallEvent] = field(default_factory=list)
    documented: FrozenSet[str] = frozenset()


class _EscapeVisitor(ast.NodeVisitor):
    """Collect raise/call events with their enclosing try guards."""

    def __init__(
        self, project_sites: Dict[int, Tuple[str, ...]]
    ) -> None:
        self.summary = _FunctionSummary()
        self._guards: List[Tuple[str, ...]] = []
        self._current_handler: List[Tuple[str, ...]] = []
        #: ``id(node)`` of project call nodes -> target qnames.
        self._project_sites = project_sites

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: its raises do not escape by definition

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Try(self, node: ast.Try) -> None:
        caught: Tuple[str, ...] = tuple(
            name
            for handler in node.handlers
            for name in _handler_names(handler)
        )
        self._guards.append(caught)
        for child in node.body:
            self.visit(child)
        self._guards.pop()
        for handler in node.handlers:
            self._current_handler.append(_handler_names(handler))
            for child in handler.body:
                self.visit(child)
            self._current_handler.pop()
        for child in node.orelse:
            self.visit(child)
        for child in node.finalbody:
            self.visit(child)

    def visit_Raise(self, node: ast.Raise) -> None:
        guards = tuple(self._guards)
        if node.exc is None:
            # A bare re-raise propagates what the handler caught.
            if self._current_handler:
                for name in self._current_handler[-1]:
                    if name not in _CATCH_ALL and name != "<unknown>":
                        self.summary.raises.append(
                            _RaiseEvent(name, node.lineno, guards)
                        )
            return
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None:
            self.summary.raises.append(
                _RaiseEvent(name, node.lineno, guards)
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        targets = self._project_sites.get(id(node))
        if targets:
            self.summary.calls.append(
                _CallEvent(targets, tuple(self._guards))
            )
        self.generic_visit(node)


#: One escaping-fact element: ``(type name, origin qname, origin line)``.
_Escape = Tuple[str, str, int]


@register
class ExceptionContractRule(Rule):
    """R9: only contracted exception types escape the public surface."""

    id = "R9"
    title = "public surface leaks only repro.errors / documented builtins"
    hint = (
        "wrap the failure in a repro.errors type, catch it, or document "
        "it in the docstring's Raises: section"
    )
    project = True
    needs_graph = True

    def check_project(self, context: CheckContext) -> Iterator[Finding]:
        """Run both halves: broad swallows, then contract escapes."""
        yield from self._swallow_findings(context)
        yield from self._contract_findings(context)

    # -- swallow half --------------------------------------------------

    def _swallow_findings(
        self, context: CheckContext
    ) -> Iterator[Finding]:
        for module in context.modules:
            first = module.relpath.split("/", 1)[0]
            if first not in SWALLOW_SCOPE:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                names = _handler_names(node)
                broad = [name for name in names if name in _CATCH_ALL]
                if not broad:
                    continue
                if any(
                    isinstance(child, ast.Raise)
                    for child in ast.walk(node)
                ):
                    continue
                label = (
                    "bare except:"
                    if "<bare>" in broad
                    else f"except {broad[0]}"
                )
                yield module.finding(
                    self,
                    node,
                    f"{label} swallows every failure (no re-raise in the "
                    f"handler); catch the narrow recoverable set — "
                    f"repro.errors types and the specific OS-level "
                    f"failures — instead",
                )

    # -- contract half -------------------------------------------------

    def _contract_findings(
        self, context: CheckContext
    ) -> Iterator[Finding]:
        graph = context.graph
        if graph is None:
            return
        project_errors = project_error_names(context)
        class_raises = self._class_docstring_raises(context)
        summaries = self._summaries(graph, project_errors, class_raises)
        bottom: FrozenSet[_Escape] = frozenset()

        def transfer(
            qname: str, facts: Dict[str, FrozenSet[_Escape]]
        ) -> FrozenSet[_Escape]:
            summary = summaries[qname]
            escaping: Set[_Escape] = set()
            for event in summary.raises:
                if self._guarded(event.type_name, event.guards, project_errors):
                    continue
                escaping.add((event.type_name, qname, event.lineno))
            for call in summary.calls:
                for target in call.targets:
                    for escape in facts.get(target, bottom):
                        if self._guarded(
                            escape[0], call.guards, project_errors
                        ):
                            continue
                        escaping.add(escape)
            return frozenset(
                escape
                for escape in escaping
                if escape[0] not in summary.documented
            )

        facts = solve(graph, bottom, transfer)
        modules_by_path = {
            module.relpath: module for module in context.modules
        }
        for qname in sorted(graph.functions):
            info = graph.functions[qname]
            first = info.relpath.split("/", 1)[0]
            if first not in CONTRACT_SCOPE or not info.is_public:
                continue
            module = modules_by_path[info.relpath]
            for type_name, origin, lineno in sorted(facts[qname]):
                origin_note = (
                    f"raised at {origin.split('::', 1)[0]}:{lineno}"
                    if origin != qname
                    else f"raised on line {lineno}"
                )
                yield module.finding(
                    self,
                    info.node,
                    f"public function {info.name} may leak {type_name} "
                    f"({origin_note} in {origin}); only repro.errors "
                    f"types or documented builtins may escape the "
                    f"CLI/experiments surface",
                )

    @staticmethod
    def _class_docstring_raises(
        context: CheckContext,
    ) -> Dict[Tuple[str, str], FrozenSet[str]]:
        """``(relpath, class name) -> Raises:`` names of class docstrings.

        The house style documents constructor contracts on the *class*
        docstring (``Args:``/``Raises:`` next to the attributes), so
        ``__init__``/``__post_init__`` inherit these.
        """
        documented: Dict[Tuple[str, str], FrozenSet[str]] = {}
        for module in context.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    names = documented_raises(node)
                    if names:
                        documented[(module.relpath, node.name)] = names
        return documented

    def _summaries(
        self,
        graph: ProjectGraph,
        project_errors: FrozenSet[str],
        class_raises: Dict[Tuple[str, str], FrozenSet[str]],
    ) -> Dict[str, _FunctionSummary]:
        summaries: Dict[str, _FunctionSummary] = {}
        for qname, info in graph.functions.items():
            project_sites: Dict[int, Tuple[str, ...]] = {
                id(site.node): site.targets
                for site in graph.callees(qname)
                if site.resolution
                in (RESOLUTION_DIRECT, RESOLUTION_METHOD)
            }
            visitor = _EscapeVisitor(project_sites)
            for child in info.node.body:
                visitor.visit(child)
            summary = visitor.summary
            summary.documented = documented_raises(info.node)
            if info.class_name is not None and info.name in (
                "__init__",
                "__post_init__",
            ):
                summary.documented |= class_raises.get(
                    (info.relpath, info.class_name), frozenset()
                )
            # Only builtin, non-allowed, non-project types are tracked:
            # repro.errors types are always contract-clean, and names we
            # cannot resolve cannot be judged.
            summary.raises = [
                event
                for event in summary.raises
                if event.type_name in _BUILTIN_EXCEPTIONS
                and event.type_name not in ALWAYS_ALLOWED
                and event.type_name not in project_errors
            ]
            summaries[qname] = summary
        return summaries

    @staticmethod
    def _guarded(
        type_name: str,
        guards: Tuple[Tuple[str, ...], ...],
        project_errors: FrozenSet[str],
    ) -> bool:
        return any(
            _catches(handler_names, type_name, project_errors)
            for handler_names in guards
        )
