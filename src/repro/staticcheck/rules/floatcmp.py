"""R2: no raw float ``==`` / ``!=`` on time or bandwidth expressions.

Simulated times are floats derived from chains of arithmetic
(``start + size / bandwidth + latency``).  A raw ``==`` on two such
values encodes an assumption — "these were computed by the *identical*
expression" — that silently breaks when one side is refactored, and the
break surfaces as a nondeterministic tie in schedule construction.  The
:mod:`repro.core.units` comparators (``time_eq``, ``times_close``,
``duration_is_zero``, ...) make the intended semantics explicit and give
the grep-able single point where the convention lives.

Detection is a name heuristic: a comparison is flagged when either
operand's identifier (name, attribute, or subscripted container name)
contains a time/bandwidth token (``start``, ``deadline``, ``seconds``,
``bandwidth``, ...).  String/None/bool operands are never flagged.
``core/units.py`` itself implements the comparators and carries an
inline ``staticcheck: disable=R2`` suppression where the heuristic
fires on its own implementation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)

#: Identifier tokens (snake_case fragments) that mark a time quantity.
TIME_TOKENS = frozenset(
    {
        "time",
        "times",
        "start",
        "end",
        "deadline",
        "deadlines",
        "duration",
        "seconds",
        "horizon",
        "cursor",
        "arrival",
        "release",
        "latency",
        "slack",
        "elapsed",
        "gc",
        "wall",
        "cpu",
    }
)

#: Identifier tokens that mark a bandwidth/rate quantity.
BANDWIDTH_TOKENS = frozenset({"bandwidth", "rate"})

_TOKEN_SPLIT = re.compile(r"[^a-z0-9]+")


def _identifier_hint(node: ast.AST) -> Optional[str]:
    """The identifier a comparison operand is named by, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _identifier_hint(node.value)
    if isinstance(node, ast.Call):
        # min(...) / max(...) / abs(...) pass their operand's nature
        # through; a named function's result is judged by its name
        # (``release_time_at(...)`` is a time).
        if isinstance(node.func, ast.Name) and node.func.id in {
            "min",
            "max",
            "abs",
        }:
            for arg in node.args:
                hint = _identifier_hint(arg)
                if hint is not None:
                    return hint
            return None
        return _identifier_hint(node.func)
    if isinstance(node, ast.UnaryOp):
        return _identifier_hint(node.operand)
    return None


def _is_time_like(node: ast.AST) -> bool:
    hint = _identifier_hint(node)
    if hint is None:
        return False
    tokens = set(_TOKEN_SPLIT.split(hint.lower())) - {""}
    return bool(tokens & (TIME_TOKENS | BANDWIDTH_TOKENS))


def _is_exempt_operand(node: ast.AST) -> bool:
    """Operands whose comparison can never be a float-equality hazard."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (str, bool, bytes)) or node.value is None
    return False


@register
class FloatTimeComparisonRule(Rule):
    """R2: require the core.units comparators for time/bandwidth floats."""

    id = "R2"
    title = "no raw float ==/!= on time or bandwidth expressions"
    hint = (
        "use repro.core.units comparators (time_eq / time_ne / "
        "times_close / duration_is_zero / bandwidth_eq) instead"
    )

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Flag raw ==/!= comparisons on time/bandwidth-named operands."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_exempt_operand(left) or _is_exempt_operand(right):
                    continue
                if _is_time_like(left) or _is_time_like(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield module.finding(
                        self,
                        node,
                        f"raw float {symbol} on a time/bandwidth "
                        f"expression; exact float equality encodes an "
                        f"identical-computation assumption",
                    )
