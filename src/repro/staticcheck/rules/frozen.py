"""R8: frozen-after-publish — no mutation of objects already shared.

The run cache, the :class:`RunRecord` stream, and the tracer event
pipeline all assume the objects handed to them are *final*: a record is
serialized when stored, but an in-memory cache entry, a tracer payload
dict, or a record kept in a results list is shared by reference.
Mutating it after the hand-off silently rewrites history — the cached
entry no longer matches what a recompute would produce, and replayed
runs diverge from fresh ones.

The rule is intraprocedural and textual: inside one function, once a
local name is *published* —

* passed (as a bare name) to a ``.store(...)`` / ``.insert(...)`` /
  ``.put(...)`` / ``.publish(...)`` call,
* passed to a tracer hook (``.on_*(...)``), or
* assigned into a container attribute of ``self``
  (``self._cache[key] = entry``) —

any later mutation of that name (attribute or item assignment,
``del``, or an in-place mutator call such as ``.append``/``.update``)
on a line below the publish is a finding, unless the name was rebound
in between (a rebinding makes the local refer to a fresh object).
Publish first, mutate a *copy* — or finish mutating before publishing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)
from repro.staticcheck.graph import FunctionNode, walk_body

#: Method names that publish their bare-name arguments into a store.
PUBLISH_METHODS = frozenset({"store", "insert", "put", "publish"})

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "add",
        "sort",
        "reverse",
    }
)


@dataclass
class _NameEvents:
    """Publish/kill/mutation sites of one local name, by line."""

    publishes: List[Tuple[int, str]] = field(default_factory=list)
    kills: List[int] = field(default_factory=list)
    mutations: List[Tuple[int, ast.AST, str]] = field(default_factory=list)


def _is_publish_call(call: ast.Call) -> Tuple[bool, str]:
    """Classify a call as publishing; returns ``(publishes, label)``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in PUBLISH_METHODS:
            return True, f".{func.attr}(...)"
        if func.attr.startswith("on_"):
            return True, f"tracer hook .{func.attr}(...)"
    return False, ""


def _published_names(call: ast.Call) -> Iterator[str]:
    """Bare-name arguments handed over by a publishing call."""
    for arg in call.args:
        if isinstance(arg, ast.Name):
            yield arg.id
    for keyword in call.keywords:
        if isinstance(keyword.value, ast.Name):
            yield keyword.value.id


def _collect_events(function: FunctionNode) -> Dict[str, _NameEvents]:
    """Gather per-name publish/kill/mutation events for one function."""
    events: Dict[str, _NameEvents] = {}

    def of(name: str) -> _NameEvents:
        return events.setdefault(name, _NameEvents())

    for node in walk_body(function):
        if isinstance(node, ast.Call):
            publishes, label = _is_publish_call(node)
            if publishes:
                for name in _published_names(node):
                    of(name).publishes.append((node.lineno, label))
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in MUTATOR_METHODS
            ):
                of(func.value.id).mutations.append(
                    (node.lineno, node, f"call to .{func.attr}(...)")
                )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    of(target.id).kills.append(node.lineno)
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    of(target.value.id).mutations.append(
                        (
                            node.lineno,
                            node,
                            f"attribute assignment .{target.attr}",
                        )
                    )
                elif isinstance(target, ast.Subscript):
                    if isinstance(target.value, ast.Name):
                        of(target.value.id).mutations.append(
                            (node.lineno, node, "item assignment [...]")
                        )
                    # ``self._cache[key] = entry`` publishes the value.
                    if (
                        isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Name)
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id in {"self", "cls"}
                    ):
                        of(node.value.id).publishes.append(
                            (
                                node.lineno,
                                f"container insert "
                                f"self.{target.value.attr}[...]",
                            )
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(
                    target, (ast.Attribute, ast.Subscript)
                ) and isinstance(target.value, ast.Name):
                    of(target.value.id).mutations.append(
                        (node.lineno, node, "del on an element/attribute")
                    )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for element in ast.walk(node.target):
                if isinstance(element, ast.Name):
                    of(element.id).kills.append(node.lineno)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for element in ast.walk(node.optional_vars):
                if isinstance(element, ast.Name):
                    of(element.id).kills.append(element.lineno)
    return events


@register
class FrozenAfterPublishRule(Rule):
    """R8: objects published to caches/records/tracers stay frozen."""

    id = "R8"
    title = "no mutation after publishing into a cache/record/tracer"
    hint = (
        "publish a finished object: mutate before the insert, or insert "
        "a copy (dataclasses.replace / dict(...) / list(...))"
    )

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Flag post-publish mutations of published locals."""
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            events = _collect_events(node)
            for name in sorted(events):
                record = events[name]
                if not record.publishes or not record.mutations:
                    continue
                for line, mutation_node, what in record.mutations:
                    publish = self._live_publish(record, line)
                    if publish is None:
                        continue
                    publish_line, label = publish
                    yield module.finding(
                        self,
                        mutation_node,
                        f"{what} mutates {name!r} after it was published "
                        f"via {label} on line {publish_line}; published "
                        f"objects must stay frozen",
                    )

    @staticmethod
    def _live_publish(
        record: _NameEvents, mutation_line: int
    ) -> "Tuple[int, str] | None":
        """The latest publish before ``mutation_line`` not killed since."""
        candidates = [
            (line, label)
            for line, label in record.publishes
            if line < mutation_line
        ]
        if not candidates:
            return None
        publish_line, label = max(candidates)
        if any(
            publish_line < kill <= mutation_line for kill in record.kills
        ):
            return None
        return publish_line, label
