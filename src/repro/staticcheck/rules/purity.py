"""R7: purity reachability — nothing impure behind a fingerprint.

The run cache keys every record on content fingerprints
(:func:`repro.serialization.scenario_fingerprint`, the ``*_to_dict``
codecs it canonicalizes, :meth:`RunCache.key_for`), and the incremental
:class:`~repro.heuristics.base.TreeCache` keeps trees only because its
revalidation replay is a pure function of the journal.  R1 catches an
RNG draw *written inside* those functions; R7 lifts the same invariant
to reachability: any function **transitively callable** from a
fingerprint/codec/cache-key entry point must not

* draw from the process-global RNG,
* read a wall clock (``time.perf_counter`` stays tolerated — elapsed
  timing is excluded from fingerprints), or
* write module-level state (a registry/memo assignment inside a
  fingerprint makes the "pure" function order-dependent).

Findings anchor at the impure operation itself and name the shortest
call chain from an entry point, so the report reads as a proof sketch:
``scenario_fingerprint -> canonical_scenario_json -> jitter``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)
from repro.staticcheck.flow import reachable_from, render_chain
from repro.staticcheck.graph import FunctionInfo, index_module
from repro.staticcheck.rules.determinism import (
    GLOBAL_RNG_FUNCTIONS,
    WALL_CLOCK_DATETIME_METHODS,
    WALL_CLOCK_TIME_FUNCTIONS,
    _from_imports,
    _module_aliases,
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "add",
        "sort",
        "reverse",
    }
)

#: Method names marking a function as a cache/codec entry point when a
#: ``*Cache`` class defines them.
_CACHE_ENTRY_METHODS = frozenset({"key_for", "_revalidate", "_validity"})

#: Module-scoped entry points: per relpath suffix, module-level functions
#: whose call trees must stay pure.  The compiled-scenario constructors
#: are memoized by identity and reused across searches, so any impurity
#: inside them would make the compiled kernel order-dependent.
_MODULE_ENTRY_FUNCTIONS: Dict[str, frozenset] = {
    "routing/compiled.py": frozenset(
        {"compile_network", "compile_durations"}
    ),
}


def is_purity_entry(info: FunctionInfo) -> bool:
    """True for fingerprint, codec, cache-key, and compile entry points."""
    name = info.name
    if name == "fingerprint" or name.endswith("_fingerprint"):
        return True
    if name == "to_dict" or name.endswith("_to_dict"):
        return True
    if (
        info.class_name is not None
        and info.class_name.endswith("Cache")
        and name in _CACHE_ENTRY_METHODS
    ):
        return True
    if info.class_name is None:
        for suffix, names in _MODULE_ENTRY_FUNCTIONS.items():
            if name in names and info.relpath.endswith(suffix):
                return True
    return False


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """All nodes of a function including closures, minus nested classes."""
    queue: List[ast.AST] = list(ast.iter_child_nodes(node))
    while queue:
        child = queue.pop(0)
        if isinstance(child, ast.ClassDef):
            continue
        yield child
        queue.extend(ast.iter_child_nodes(child))


def _binding_names(target: ast.AST) -> Iterator[str]:
    """Names a store target *binds* (attribute/item stores bind nothing)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _binding_names(element)
    elif isinstance(target, ast.Starred):
        yield from _binding_names(target.value)


def _locally_bound(function: ast.AST) -> Set[str]:
    """Names bound inside the function (shadowing module globals)."""
    bound: Set[str] = set()
    declared_global: Set[str] = set()
    for node in _walk_scope(function):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.arg):
            bound.add(node.arg)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                bound.update(_binding_names(target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_binding_names(node.target))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bound.update(_binding_names(node.optional_vars))
    return bound - declared_global


class _ModuleImpurityScanner:
    """Per-module context for spotting impure primitives in functions."""

    def __init__(self, module: Module) -> None:
        self.module = module
        aliases = _module_aliases(module.tree)
        self.imported = _from_imports(module.tree)
        self.random_names = {
            name for name, target in aliases.items() if target == "random"
        }
        self.time_names = {
            name for name, target in aliases.items() if target == "time"
        }
        self.datetime_names = {
            name for name, target in aliases.items() if target == "datetime"
        }
        self.numpy_names = {
            name for name, target in aliases.items() if target == "numpy"
        }
        self.module_globals = index_module(module).module_globals

    def impurities(
        self, function: ast.AST
    ) -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, description)`` for each impure primitive."""
        bound = _locally_bound(function)
        declared_global: Set[str] = set()
        for node in _walk_scope(function):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        writable_globals = (
            self.module_globals - bound
        ) | declared_global
        for node in _walk_scope(function):
            yield from self._check_node(
                node, writable_globals, declared_global
            )

    def _check_node(
        self,
        node: ast.AST,
        writable_globals: Set[str],
        declared_global: Set[str],
    ) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            base, attr = node.value.id, node.attr
            if base in self.random_names and attr in GLOBAL_RNG_FUNCTIONS:
                yield node, f"process-global RNG draw random.{attr}"
            elif base in self.time_names and attr in WALL_CLOCK_TIME_FUNCTIONS:
                yield node, f"wall-clock read time.{attr}"
            elif base in self.numpy_names and attr == "random":
                yield node, "numpy.random global state"
            elif (
                base in self.datetime_names or base in {"datetime", "date"}
            ) and attr in WALL_CLOCK_DATETIME_METHODS:
                origin = self.imported.get(base)
                if base in self.datetime_names or (
                    origin is not None and origin[0] == "datetime"
                ):
                    yield node, f"wall-clock read {base}.{attr}"
        elif isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Attribute
        ):
            inner = node.value
            if isinstance(inner.value, ast.Name):
                root, mid, attr = inner.value.id, inner.attr, node.attr
                if (
                    root in self.datetime_names
                    and mid in {"datetime", "date"}
                    and attr in WALL_CLOCK_DATETIME_METHODS
                ):
                    yield node, f"wall-clock read datetime.{mid}.{attr}"
                elif root in self.numpy_names and mid == "random":
                    yield node, f"numpy.random.{attr} global state"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            origin = self.imported.get(node.func.id)
            if origin is not None:
                source_module, original = origin
                if (
                    source_module == "random"
                    and original in GLOBAL_RNG_FUNCTIONS
                ):
                    yield (
                        node,
                        f"process-global RNG draw random.{original} "
                        f"(imported as {node.func.id})",
                    )
                elif (
                    source_module == "time"
                    and original in WALL_CLOCK_TIME_FUNCTIONS
                ):
                    yield (
                        node,
                        f"wall-clock read time.{original} "
                        f"(imported as {node.func.id})",
                    )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in writable_globals
                and node.func.attr in MUTATOR_METHODS
            ):
                yield (
                    node,
                    f"mutation of module-level state "
                    f"{receiver.id!r} (.{node.func.attr})",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                if base is target:
                    # A plain rebinding only writes module state under a
                    # ``global`` declaration; otherwise it binds a local.
                    if base.id in declared_global:
                        yield (
                            node,
                            f"write to module-level state {base.id!r} "
                            f"(global declaration)",
                        )
                elif base.id in writable_globals:
                    yield (
                        node,
                        f"write to module-level state {base.id!r}",
                    )


@register
class PurityReachabilityRule(Rule):
    """R7: fingerprint/codec/cache-key call trees must stay pure."""

    id = "R7"
    title = "no impurity reachable from fingerprint/codec entry points"
    hint = (
        "fingerprints must be pure functions of their inputs; hoist the "
        "RNG/clock/global write out of the fingerprint call tree"
    )
    project = True
    needs_graph = True

    def check_project(self, context: CheckContext) -> Iterator[Finding]:
        """Flag impure primitives reachable from any purity entry point."""
        graph = context.graph
        if graph is None:
            return
        entries = sorted(
            qname
            for qname, info in graph.functions.items()
            if is_purity_entry(info)
        )
        if not entries:
            return
        chains = reachable_from(graph, entries)
        modules_by_path = {
            module.relpath: module for module in context.modules
        }
        scanners: Dict[str, _ModuleImpurityScanner] = {}
        seen_sites: Set[Tuple[str, int, int]] = set()
        for qname in sorted(chains):
            info = graph.functions[qname]
            module = modules_by_path.get(info.relpath)
            if module is None:
                continue
            scanner = scanners.get(info.relpath)
            if scanner is None:
                scanner = _ModuleImpurityScanner(module)
                scanners[info.relpath] = scanner
            chain = chains[qname]
            entry = chain[0]
            for node, description in scanner.impurities(info.node):
                site = (
                    info.relpath,
                    getattr(node, "lineno", info.lineno),
                    getattr(node, "col_offset", 0),
                )
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                entry_info = graph.functions[entry]
                yield module.finding(
                    self,
                    node,
                    f"{description} is reachable from the "
                    f"{self._entry_kind(entry_info)} entry point "
                    f"{entry} via {render_chain(chain)}",
                )

    @staticmethod
    def _entry_kind(info: FunctionInfo) -> str:
        name = info.name
        if name == "fingerprint" or name.endswith("_fingerprint"):
            return "fingerprint"
        if name == "to_dict" or name.endswith("_to_dict"):
            return "codec"
        if info.class_name is None and name.startswith("compile_"):
            return "compile"
        return "cache"
