"""R0: unused ``# staticcheck: disable=`` suppressions.

A suppression that silences nothing is a stale waiver: the violation it
excused was fixed (or the line drifted), and the comment now stands
ready to hide the *next* finding that lands on that line.  The engine
itself tracks which suppressions absorbed a finding during the run (it
is the only component that sees every rule's output), so this module
only registers the rule's identity; see
:func:`repro.staticcheck.engine._unused_suppression_findings` for the
detection logic and its partial-run semantics (tokens for rules that
did not run are never judged).
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)


@register
class UnusedSuppressionRule(Rule):
    """R0: every ``disable=`` token must silence an actual finding."""

    id = "R0"
    title = "no stale staticcheck suppression comments"
    hint = (
        "delete the suppression comment; re-add it only with a finding "
        "it demonstrably silences"
    )

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """No-op: the engine emits R0 findings from its usage ledger."""
        return iter(())
