"""R3: event-name and reason-code literals must exist in the registry.

The observability pipeline (tracer -> metrics -> reports -> mergeable
JSON artifacts) is stringly keyed: an event emitted as
``self._event("transfer_boked", ...)`` would flow to disk, never match a
reader's filter, and silently vanish from every aggregate.  The tracer
module's :data:`~repro.observability.tracer.EVENT_NAMES` and
:data:`~repro.observability.tracer.REASON_CODES` tuples are the single
source of truth; this rule checks every literal used as an event name or
reason code against them.

Checked sites:

* ``*._event("name", ...)`` — the funnel every materializing tracer
  emits through;
* ``*.named("name")`` — the reader-side filter on recorded events;
* ``reason="literal"`` keyword arguments to *any* call (tracer hooks,
  forensics ledgers, test helpers alike);
* comparisons of a reason-named expression against a literal — the
  name hint is the attribute/variable name or, for subscripts like
  ``event["reason"]``, the constant string key.

Reason literals are checked against the union of the rejection codes
(``REASON_CODES``) and the tree-cache outcome codes
(``TREE_CACHE_REASONS``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.engine import (
    CheckContext,
    Finding,
    Module,
    Rule,
    register,
)


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _attr_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        # ``event["reason"]`` — the constant key is the name hint.
        return _literal_str(node.slice)
    return None


@register
class TracerRegistryRule(Rule):
    """R3: tracer event/reason literals must exist in the registry."""

    id = "R3"
    title = "tracer event names and reason codes must be registered"
    hint = (
        "use a name from repro.observability.tracer EVENT_NAMES / "
        "REASON_CODES (add it to the registry if the taxonomy grew)"
    )

    def check(
        self, module: Module, context: CheckContext
    ) -> Iterator[Finding]:
        """Check event/reason string literals against the registry."""
        events = context.event_names
        reasons = context.reason_codes
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                callee = _attr_name(node.func)
                if callee == "_event" and node.args:
                    name = _literal_str(node.args[0])
                    if name is not None and name not in events:
                        yield module.finding(
                            self,
                            node.args[0],
                            f"event name {name!r} is not in the tracer "
                            f"EVENT_NAMES registry",
                        )
                elif callee == "named" and node.args:
                    name = _literal_str(node.args[0])
                    if name is not None and name not in events:
                        yield module.finding(
                            self,
                            node.args[0],
                            f"named() filter {name!r} matches no "
                            f"registered event name",
                        )
                for keyword in node.keywords:
                    if keyword.arg != "reason":
                        continue
                    reason = _literal_str(keyword.value)
                    if reason is not None and reason not in reasons:
                        yield module.finding(
                            self,
                            keyword.value,
                            f"reason code {reason!r} is not in the "
                            f"tracer REASON_CODES registry",
                        )
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for index, op in enumerate(node.ops):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    left, right = operands[index], operands[index + 1]
                    for named, literal in ((left, right), (right, left)):
                        hint = _attr_name(named)
                        value = _literal_str(literal)
                        if hint is None or value is None:
                            continue
                        if (
                            "reason" in hint.lower()
                            and value not in reasons
                        ):
                            yield module.finding(
                                self,
                                literal,
                                f"comparison against unregistered reason "
                                f"code {value!r}",
                            )
