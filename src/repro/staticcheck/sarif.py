"""SARIF 2.1.0 export for staticcheck findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard consumed by GitHub code scanning: CI uploads the document and
findings surface as repository alerts anchored to the exact line.  The
builder here emits the minimal conforming core — ``tool.driver`` with
the full rule metadata, one ``result`` per finding with a physical
location and a line-drift-stable ``partialFingerprints`` entry reusing
the baseline fingerprint — and nothing environment-dependent: no
timestamps, no absolute paths, no invocation blocks.  Two runs over the
same tree serialize byte-identically (keys sorted, lists pre-sorted by
the engine), which the determinism regression test asserts.

:func:`validate_sarif` is a hand-rolled structural checker for the
subset we emit (the container has no ``jsonschema``); the test suite
uses it, and ``--format sarif`` runs it as a self-check before
printing.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.errors import ValidationError
from repro.staticcheck.engine import Finding, Rule

#: The canonical 2.1.0 schema URL GitHub's ingester recognizes.
SARIF_SCHEMA_URI = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)

SARIF_VERSION = "2.1.0"

#: Reported as tool.driver.version; bump on rule-set changes.
STATICCHECK_VERSION = "2.0.0"

TOOL_NAME = "repro.staticcheck"

TOOL_INFORMATION_URI = (
    "https://example.invalid/repro/docs/STATICCHECK.md"
)


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    descriptor: Dict[str, object] = {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "defaultConfiguration": {"level": "error"},
    }
    if rule.hint:
        descriptor["help"] = {"text": rule.hint}
    return descriptor


def build_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> Dict[str, object]:
    """Assemble the SARIF document for one lint run.

    Args:
        findings: the active findings, already sorted by the engine.
        rules: the rules that ran (every finding's rule must be among
            them — they populate ``tool.driver.rules`` and the
            ``ruleIndex`` back-references).

    Raises:
        ValidationError: when a finding references a rule that did not
            run (a caller bug that would emit a dangling ``ruleIndex``).
    """
    ordered_rules = sorted(rules, key=lambda rule: rule.id)
    rule_index = {rule.id: index for index, rule in enumerate(ordered_rules)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        if finding.rule not in rule_index:
            raise ValidationError(
                f"finding references unknown rule {finding.rule!r}"
            )
        fingerprint = "/".join(finding.fingerprint())
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error",
                "message": {
                    "text": (
                        f"{finding.message} [hint: {finding.hint}]"
                        if finding.hint
                        else finding.message
                    )
                },
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.column + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "staticcheckFingerprint/v1": fingerprint
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": STATICCHECK_VERSION,
                        "informationUri": TOOL_INFORMATION_URI,
                        "rules": [
                            _rule_descriptor(rule)
                            for rule in ordered_rules
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(document: Dict[str, object]) -> str:
    """Deterministic serialization (sorted keys, 2-space indent)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def validate_sarif(document: object) -> None:
    """Structurally validate the SARIF subset staticcheck emits.

    Checks the invariants GitHub's ingester depends on: schema/version
    markers, a non-empty ``runs`` array, a driver with name and rules,
    and for every result a known ``ruleId``, a consistent ``ruleIndex``,
    and a physical location with a positive 1-based line.

    Raises:
        ValidationError: on the first structural violation found.
    """

    def require(condition: bool, message: str) -> None:
        if not condition:
            raise ValidationError(f"invalid SARIF: {message}")

    require(isinstance(document, dict), "document is not an object")
    assert isinstance(document, dict)
    require(
        document.get("$schema") == SARIF_SCHEMA_URI,
        "missing or wrong $schema",
    )
    require(
        document.get("version") == SARIF_VERSION,
        "version must be '2.1.0'",
    )
    runs = document.get("runs")
    require(
        isinstance(runs, list) and len(runs) >= 1, "runs must be non-empty"
    )
    assert isinstance(runs, list)
    for run in runs:
        require(isinstance(run, dict), "run is not an object")
        driver = run.get("tool", {}).get("driver", {})
        require(
            isinstance(driver.get("name"), str) and driver["name"],
            "tool.driver.name missing",
        )
        rules = driver.get("rules", [])
        require(isinstance(rules, list), "tool.driver.rules must be a list")
        rule_ids = []
        for descriptor in rules:
            require(
                isinstance(descriptor, dict)
                and isinstance(descriptor.get("id"), str),
                "rule descriptor without id",
            )
            rule_ids.append(descriptor["id"])
        require(
            len(set(rule_ids)) == len(rule_ids), "duplicate rule ids"
        )
        results = run.get("results")
        require(isinstance(results, list), "run.results must be a list")
        assert isinstance(results, list)
        for result in results:
            require(isinstance(result, dict), "result is not an object")
            rule_id = result.get("ruleId")
            require(
                rule_id in rule_ids,
                f"result ruleId {rule_id!r} not among driver rules",
            )
            index = result.get("ruleIndex")
            require(
                isinstance(index, int)
                and 0 <= index < len(rule_ids)
                and rule_ids[index] == rule_id,
                f"ruleIndex inconsistent for {rule_id!r}",
            )
            message = result.get("message", {})
            require(
                isinstance(message, dict)
                and isinstance(message.get("text"), str)
                and bool(message["text"]),
                "result message.text missing",
            )
            locations = result.get("locations")
            require(
                isinstance(locations, list) and len(locations) >= 1,
                "result without locations",
            )
            assert isinstance(locations, list)
            for location in locations:
                physical = location.get("physicalLocation", {})
                artifact = physical.get("artifactLocation", {})
                require(
                    isinstance(artifact.get("uri"), str)
                    and bool(artifact["uri"])
                    and not artifact["uri"].startswith("/"),
                    "artifactLocation.uri must be a relative path",
                )
                region = physical.get("region", {})
                require(
                    isinstance(region.get("startLine"), int)
                    and region["startLine"] >= 1,
                    "region.startLine must be a positive integer",
                )
