"""Random workload generation matching the paper's §5.3 experiment setup."""

from repro.workload.config import GeneratorConfig
from repro.workload.describe import (
    ScenarioDescription,
    describe,
    render_description,
)
from repro.workload.connectivity import (
    is_strongly_connected,
    reachable_from,
    repair_strong_connectivity,
    reverse_adjacency,
)
from repro.workload.generator import ScenarioGenerator
from repro.workload.presets import badd_theater, two_route_diamond
from repro.workload.transforms import (
    drop_requests,
    scale_capacities,
    scale_deadlines,
    with_gc_delay,
    with_weighting,
)

__all__ = [
    "GeneratorConfig",
    "ScenarioDescription",
    "ScenarioGenerator",
    "badd_theater",
    "describe",
    "drop_requests",
    "is_strongly_connected",
    "reachable_from",
    "repair_strong_connectivity",
    "render_description",
    "scale_capacities",
    "scale_deadlines",
    "reverse_adjacency",
    "two_route_diamond",
    "with_gc_delay",
    "with_weighting",
]
