"""Generator configuration — every §5.3 parameter range as data.

:class:`GeneratorConfig` captures the full parameterization of the paper's
test-case generator.  :meth:`GeneratorConfig.paper` reproduces the published
ranges exactly; :meth:`GeneratorConfig.reduced` scales the instance size
down (fewer machines, fewer requests, same distributions) for CI-speed
experiments with the same workload *shape*.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from repro.core import units
from repro.errors import ConfigurationError


def _check_range(name: str, low: float, high: float, minimum: float) -> None:
    if low > high:
        raise ConfigurationError(
            f"{name}: lower bound {low} exceeds upper bound {high}"
        )
    if low < minimum:
        raise ConfigurationError(
            f"{name}: lower bound {low} below minimum {minimum}"
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Parameter ranges for random BADD-like scenarios (paper §5.3).

    All times are seconds, sizes bytes, bandwidths bytes/second; inclusive
    integer ranges are ``(low, high)`` tuples, continuous ranges are sampled
    uniformly.

    Attributes:
        machines: number of machines ``m`` (paper: 10–12).
        capacity_bytes: per-machine storage (paper: 10 MB–20 GB).
        out_degree: distinct forward neighbours per machine (paper: 4–7).
        parallel_link_probability: chance of a second parallel physical link
            between an already-connected ordered pair (the paper allows "at
            most two" without giving a rate; DESIGN.md decision).
        bandwidth_bytes_per_s: physical-link bandwidth
            (paper: 10 Kbit/s–1.5 Mbit/s).
        latency_seconds: per-transfer link latency (not specified by the
            paper; DESIGN.md decision 2).
        window_durations: virtual-link durations drawn uniformly from this
            set (paper: 30 min, 1 h, 2 h, 4 h).
        availability_percents: percentage of the day a physical link is up,
            drawn uniformly from this set (paper: 50–100 % in steps of 10).
        day_seconds: length of the link-availability day (24 h).
        requests_per_machine: total request count as a multiple of ``m``
            (paper: 20–40).
        sources_per_item: initial copies per data item (paper: at most 5).
        destinations_per_item: requests per data item (paper: at most 5).
        item_size_bytes: data item sizes (paper: 10 KB–100 MB).
        priority_levels: number of priority classes (paper: 3).
        item_start_seconds: item availability times (paper: 0–60 min).
        deadline_offset_seconds: deadline minus item start
            (paper: 15–60 min).
        gc_delay_seconds: the garbage-collection ``γ`` (paper: 6 min).
    """

    machines: Tuple[int, int] = (10, 12)
    capacity_bytes: Tuple[float, float] = (
        units.megabytes(10),
        units.gigabytes(20),
    )
    out_degree: Tuple[int, int] = (4, 7)
    parallel_link_probability: float = 0.25
    bandwidth_bytes_per_s: Tuple[float, float] = (
        units.kilobits_per_second(10),
        units.megabits_per_second(1.5),
    )
    latency_seconds: Tuple[float, float] = (0.05, 0.5)
    window_durations: Tuple[float, ...] = (
        units.minutes(30),
        units.hours(1),
        units.hours(2),
        units.hours(4),
    )
    availability_percents: Tuple[int, ...] = (50, 60, 70, 80, 90, 100)
    day_seconds: float = units.days(1)
    requests_per_machine: Tuple[int, int] = (20, 40)
    sources_per_item: Tuple[int, int] = (1, 5)
    destinations_per_item: Tuple[int, int] = (1, 5)
    item_size_bytes: Tuple[float, float] = (
        units.kilobytes(10),
        units.megabytes(100),
    )
    priority_levels: int = 3
    item_start_seconds: Tuple[float, float] = (0.0, units.minutes(60))
    deadline_offset_seconds: Tuple[float, float] = (
        units.minutes(15),
        units.minutes(60),
    )
    gc_delay_seconds: float = units.minutes(6)

    def __post_init__(self) -> None:
        _check_range("machines", *self.machines, minimum=2)
        _check_range("capacity_bytes", *self.capacity_bytes, minimum=0)
        _check_range("out_degree", *self.out_degree, minimum=1)
        if not 0 <= self.parallel_link_probability <= 1:
            raise ConfigurationError(
                "parallel_link_probability must lie in [0, 1], got "
                f"{self.parallel_link_probability}"
            )
        _check_range(
            "bandwidth_bytes_per_s", *self.bandwidth_bytes_per_s, minimum=1e-9
        )
        _check_range("latency_seconds", *self.latency_seconds, minimum=0)
        if not self.window_durations:
            raise ConfigurationError("window_durations must be non-empty")
        if any(d <= 0 or d > self.day_seconds for d in self.window_durations):
            raise ConfigurationError(
                f"window durations must lie in (0, day]: "
                f"{self.window_durations}"
            )
        if not self.availability_percents or any(
            not 0 < p <= 100 for p in self.availability_percents
        ):
            raise ConfigurationError(
                f"availability percents must lie in (0, 100]: "
                f"{self.availability_percents}"
            )
        _check_range(
            "requests_per_machine", *self.requests_per_machine, minimum=1
        )
        _check_range("sources_per_item", *self.sources_per_item, minimum=1)
        _check_range(
            "destinations_per_item", *self.destinations_per_item, minimum=1
        )
        _check_range("item_size_bytes", *self.item_size_bytes, minimum=1e-9)
        if self.priority_levels < 1:
            raise ConfigurationError(
                f"priority_levels must be >= 1, got {self.priority_levels}"
            )
        _check_range(
            "item_start_seconds", *self.item_start_seconds, minimum=0
        )
        _check_range(
            "deadline_offset_seconds",
            *self.deadline_offset_seconds,
            minimum=0,
        )
        if self.gc_delay_seconds < 0:
            raise ConfigurationError(
                f"gc_delay_seconds must be >= 0, got {self.gc_delay_seconds}"
            )
        max_degree = self.machines[0] - 1
        if self.out_degree[0] > max_degree:
            raise ConfigurationError(
                f"out-degree lower bound {self.out_degree[0]} impossible "
                f"with only {self.machines[0]} machines"
            )

    @classmethod
    def paper(cls) -> "GeneratorConfig":
        """The exact §5.3 parameterization."""
        return cls()

    @classmethod
    def reduced(cls) -> "GeneratorConfig":
        """A CI-scale configuration: same distributions, smaller instances.

        Machine count and connectivity stay in the paper's regime (the
        network shape is what matters); the request volume — the main cost
        driver — is cut to roughly a quarter of the paper's.
        """
        return cls(
            machines=(10, 12),
            requests_per_machine=(5, 10),
        )

    @classmethod
    def tiny(cls) -> "GeneratorConfig":
        """A unit-test configuration that runs in milliseconds."""
        return cls(
            machines=(5, 6),
            out_degree=(2, 3),
            requests_per_machine=(2, 4),
            sources_per_item=(1, 2),
            destinations_per_item=(1, 3),
        )

    def replace(self, **changes) -> "GeneratorConfig":
        """A copy with the given fields replaced (validated anew)."""
        return dataclasses.replace(self, **changes)
