"""Strong-connectivity checking and repair for generated topologies.

The §5.3 generator "makes sure that the generated communication system is
strongly connected".  With out-degrees of 4–7 on 10–12 machines a random
digraph almost always is; when it is not, :func:`repair_strong_connectivity`
adds the minimum-effort extra physical links needed: whenever some machine
cannot be reached from machine 0 (or cannot reach it), a link is added from
(or to) the already-connected set.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple


def reachable_from(adjacency: Dict[int, Set[int]], origin: int) -> Set[int]:
    """All nodes reachable from ``origin`` (including itself) by BFS."""
    visited = {origin}
    frontier = [origin]
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return visited


def reverse_adjacency(adjacency: Dict[int, Set[int]]) -> Dict[int, Set[int]]:
    """The transpose digraph."""
    reverse: Dict[int, Set[int]] = {node: set() for node in adjacency}
    for node, targets in adjacency.items():
        for target in targets:
            reverse[target].add(node)
    return reverse


def is_strongly_connected(adjacency: Dict[int, Set[int]]) -> bool:
    """True if every node reaches every other node."""
    if not adjacency:
        return True
    nodes = set(adjacency)
    origin = next(iter(nodes))
    if reachable_from(adjacency, origin) != nodes:
        return False
    return reachable_from(reverse_adjacency(adjacency), origin) == nodes


def repair_strong_connectivity(
    adjacency: Dict[int, Set[int]],
    pair_counts: Dict[Tuple[int, int], int],
    rng: random.Random,
    max_links_per_pair: int = 2,
) -> List[Tuple[int, int]]:
    """Make the digraph strongly connected by adding directed edges.

    Args:
        adjacency: mutated in place as edges are added.
        pair_counts: physical-link multiplicities per ordered pair, mutated
            in place so the caller's "at most two links per pair" invariant
            survives the repair.
        rng: source of randomness for endpoint selection.
        max_links_per_pair: the multiplicity cap.

    Returns:
        The list of added ``(source, destination)`` pairs, in order.
    """
    added: List[Tuple[int, int]] = []
    nodes = sorted(adjacency)
    if not nodes:
        return added
    origin = nodes[0]
    while True:
        forward = reachable_from(adjacency, origin)
        missing = [node for node in nodes if node not in forward]
        if missing:
            target = rng.choice(missing)
            source = _pick_endpoint(
                rng, sorted(forward), target, pair_counts, max_links_per_pair,
                outgoing=True,
            )
            _add_edge(adjacency, pair_counts, source, target, added)
            continue
        backward = reachable_from(reverse_adjacency(adjacency), origin)
        missing = [node for node in nodes if node not in backward]
        if missing:
            source = rng.choice(missing)
            target = _pick_endpoint(
                rng, sorted(backward), source, pair_counts,
                max_links_per_pair, outgoing=False,
            )
            _add_edge(adjacency, pair_counts, source, target, added)
            continue
        return added


def _pick_endpoint(
    rng: random.Random,
    candidates: List[int],
    other: int,
    pair_counts: Dict[Tuple[int, int], int],
    max_links_per_pair: int,
    outgoing: bool,
) -> int:
    """Choose a connected-set endpoint with pair-multiplicity headroom."""
    viable = []
    for node in candidates:
        if node == other:
            continue
        pair = (node, other) if outgoing else (other, node)
        if pair_counts.get(pair, 0) < max_links_per_pair:
            viable.append(node)
    if not viable:
        # Every pair is saturated at two parallel links yet the node is
        # unreachable — impossible, since a saturated pair implies an edge
        # and therefore reachability.
        raise AssertionError(
            "connectivity repair found no viable endpoint; "
            "pair saturation contradicts unreachability"
        )
    return rng.choice(viable)


def _add_edge(
    adjacency: Dict[int, Set[int]],
    pair_counts: Dict[Tuple[int, int], int],
    source: int,
    target: int,
    added: List[Tuple[int, int]],
) -> None:
    adjacency.setdefault(source, set()).add(target)
    pair_counts[(source, target)] = pair_counts.get((source, target), 0) + 1
    added.append((source, target))
