"""Scenario descriptions: workload statistics for reports and debugging.

:func:`describe` condenses one scenario into the quantities that determine
scheduling difficulty — request volume per priority class, item-size and
bandwidth distributions, link availability, deadline slack, and a static
oversubscription estimate — and :func:`render_description` prints them as
a compact text block (also exposed as ``datastage describe``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core import units
from repro.core.scenario import Scenario


@dataclass(frozen=True)
class ScenarioDescription:
    """Summary statistics of one scenario.

    Attributes:
        name: the scenario's name.
        machines: machine count.
        physical_links: physical link count.
        virtual_links: virtual link count.
        items: data item count.
        requests: request count.
        requests_by_priority: request count per priority class.
        total_capacity: summed machine storage in bytes.
        min_capacity: smallest machine storage in bytes.
        total_item_bytes: summed item sizes.
        mean_item_bytes: mean item size.
        mean_bandwidth: mean physical-link bandwidth (bytes/s).
        mean_availability: mean fraction of the horizon each physical
            link is available (capped at 1.0).
        mean_deadline_slack: mean of (deadline − item availability).
        demand_bytes: total bytes that must move if every request were
            served by a direct single-hop transfer (item size × requests).
        supply_bytes: total link capacity within the horizon
            (Σ bandwidth × available window time clipped to the horizon).
        oversubscription: ``demand_bytes / supply_bytes`` — a crude static
            load factor (>1 means demand exceeds raw capacity even before
            deadlines, windows, and storage are considered).
    """

    name: str
    machines: int
    physical_links: int
    virtual_links: int
    items: int
    requests: int
    requests_by_priority: Tuple[int, ...]
    total_capacity: float
    min_capacity: float
    total_item_bytes: float
    mean_item_bytes: float
    mean_bandwidth: float
    mean_availability: float
    mean_deadline_slack: float
    demand_bytes: float
    supply_bytes: float

    @property
    def oversubscription(self) -> float:
        """Demand-to-supply ratio (see class docstring)."""
        if self.supply_bytes <= 0:
            return float("inf")
        return self.demand_bytes / self.supply_bytes


def describe(scenario: Scenario) -> ScenarioDescription:
    """Compute the summary statistics of one scenario."""
    network = scenario.network
    classes = scenario.weighting.highest_priority + 1
    by_priority = [0] * classes
    for request in scenario.requests:
        by_priority[request.priority] += 1

    capacities = [machine.capacity for machine in network.machines]
    item_sizes = [item.size for item in scenario.items]
    bandwidths = [plink.bandwidth for plink in network.physical_links]

    availabilities = []
    supply = 0.0
    for plink in network.physical_links:
        open_seconds = sum(
            max(0.0, min(window.end, scenario.horizon) - window.start)
            for window in plink.windows
            if window.start < scenario.horizon
        )
        availabilities.append(min(open_seconds / scenario.horizon, 1.0))
        supply += plink.bandwidth * open_seconds

    slacks = []
    demand = 0.0
    for request in scenario.requests:
        item = scenario.item(request.item_id)
        slacks.append(request.deadline - item.earliest_availability())
        demand += item.size

    def _mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    return ScenarioDescription(
        name=scenario.name,
        machines=network.machine_count,
        physical_links=len(network.physical_links),
        virtual_links=len(network.virtual_links),
        items=scenario.item_count,
        requests=scenario.request_count,
        requests_by_priority=tuple(by_priority),
        total_capacity=sum(capacities),
        min_capacity=min(capacities) if capacities else 0.0,
        total_item_bytes=sum(item_sizes),
        mean_item_bytes=_mean(item_sizes),
        mean_bandwidth=_mean(bandwidths),
        mean_availability=_mean(availabilities),
        mean_deadline_slack=_mean(slacks),
        demand_bytes=demand,
        supply_bytes=supply,
    )


def render_description(description: ScenarioDescription) -> str:
    """Render a description as an aligned text block."""
    per_class = ", ".join(
        f"p{p}={count}"
        for p, count in enumerate(description.requests_by_priority)
    )
    lines = [
        f"scenario {description.name}",
        f"  machines:        {description.machines} "
        f"(storage {units.format_size(description.min_capacity)}"
        f"..{units.format_size(description.total_capacity)} total)",
        f"  links:           {description.physical_links} physical / "
        f"{description.virtual_links} virtual, mean "
        f"{units.format_size(description.mean_bandwidth)}/s, "
        f"{100 * description.mean_availability:.0f}% available",
        f"  items:           {description.items} "
        f"(mean {units.format_size(description.mean_item_bytes)}, total "
        f"{units.format_size(description.total_item_bytes)})",
        f"  requests:        {description.requests} ({per_class})",
        f"  deadline slack:  {units.format_time(description.mean_deadline_slack)} mean",
        f"  demand/supply:   "
        f"{units.format_size(description.demand_bytes)} / "
        f"{units.format_size(description.supply_bytes)} = "
        f"{description.oversubscription:.3f}",
    ]
    return "\n".join(lines)
