"""Random BADD-like scenario generation (paper §5.3).

:class:`ScenarioGenerator` reproduces the paper's test-case generator: a
strongly connected random topology with intermittently available links,
plus a randomly drawn data-location table and request table.  Generation is
fully deterministic in the seed, so experiment suites ("the same 40 test
cases") are reproducible by construction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.core.data import DataItem, SourceLocation
from repro.core.intervals import Interval
from repro.core.link import PhysicalLink
from repro.core.machine import Machine
from repro.core.network import Network
from repro.core.priority import PriorityWeighting, WEIGHTING_1_10_100
from repro.core.request import Request
from repro.core.scenario import Scenario
from repro.errors import ConfigurationError
from repro.observability.profiling import PHASE_SCENARIO_GENERATION, span
from repro.workload.config import GeneratorConfig
from repro.workload.connectivity import (
    is_strongly_connected,
    repair_strong_connectivity,
)


class ScenarioGenerator:
    """Draws random scenarios from a :class:`GeneratorConfig`.

    Args:
        config: the parameter ranges (defaults to the paper's §5.3 values).
        weighting: the priority weighting attached to generated scenarios;
            the request *priorities* are independent of it, so the same seed
            can be regenerated under a different weighting for the §5.4
            weighting comparison.
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        weighting: PriorityWeighting = WEIGHTING_1_10_100,
    ) -> None:
        self._config = config if config is not None else GeneratorConfig.paper()
        if weighting.highest_priority + 1 < self._config.priority_levels:
            raise ConfigurationError(
                f"weighting {weighting} has fewer classes than the "
                f"configured {self._config.priority_levels} priority levels"
            )
        self._weighting = weighting

    @property
    def config(self) -> GeneratorConfig:
        """The generator's parameter ranges."""
        return self._config

    def generate(self, seed: int, name: str = "") -> Scenario:
        """Draw one scenario, deterministically from ``seed``."""
        with span(PHASE_SCENARIO_GENERATION):
            rng = random.Random(seed)
            cfg = self._config
            machine_count = rng.randint(*cfg.machines)
            machines = tuple(
                Machine(index=i, capacity=rng.uniform(*cfg.capacity_bytes))
                for i in range(machine_count)
            )
            physical_links = self._generate_links(rng, machine_count)
            network = Network(machines, physical_links)
            items, requests = self._generate_requests(rng, machine_count)
            latest_deadline = max(request.deadline for request in requests)
            return Scenario(
                network=network,
                items=tuple(items),
                requests=tuple(requests),
                weighting=self._weighting,
                gc_delay=cfg.gc_delay_seconds,
                horizon=latest_deadline + cfg.gc_delay_seconds + 1.0,
                name=name or f"badd-{seed}",
            )

    def generate_suite(
        self, count: int, base_seed: int = 0
    ) -> Tuple[Scenario, ...]:
        """Draw ``count`` scenarios with consecutive seeds."""
        return tuple(
            self.generate(base_seed + offset) for offset in range(count)
        )

    # -- topology -------------------------------------------------------------

    def _generate_links(
        self, rng: random.Random, machine_count: int
    ) -> List[PhysicalLink]:
        cfg = self._config
        adjacency: Dict[int, Set[int]] = {
            i: set() for i in range(machine_count)
        }
        pair_counts: Dict[Tuple[int, int], int] = {}
        for source in range(machine_count):
            degree = rng.randint(*cfg.out_degree)
            degree = min(degree, machine_count - 1)
            others = [m for m in range(machine_count) if m != source]
            for target in rng.sample(others, degree):
                adjacency[source].add(target)
                pair_counts[(source, target)] = 1
        # A second parallel physical link between connected pairs, at the
        # configured rate (the paper caps multiplicity at two).
        for pair in sorted(pair_counts):
            if rng.random() < cfg.parallel_link_probability:
                pair_counts[pair] = 2
        if not is_strongly_connected(adjacency):
            repair_strong_connectivity(adjacency, pair_counts, rng)
        links: List[PhysicalLink] = []
        for (source, target), multiplicity in sorted(pair_counts.items()):
            for _ in range(multiplicity):
                links.append(
                    self._generate_physical_link(
                        rng, len(links), source, target
                    )
                )
        return links

    def _generate_physical_link(
        self,
        rng: random.Random,
        physical_id: int,
        source: int,
        target: int,
    ) -> PhysicalLink:
        cfg = self._config
        bandwidth = rng.uniform(*cfg.bandwidth_bytes_per_s)
        latency = rng.uniform(*cfg.latency_seconds)
        windows = self._generate_windows(rng)
        return PhysicalLink(
            physical_id=physical_id,
            source=source,
            destination=target,
            bandwidth=bandwidth,
            latency=latency,
            windows=windows,
        )

    def _generate_windows(self, rng: random.Random) -> Tuple[Interval, ...]:
        """Availability windows per the §5.3 procedure.

        A window duration and a percentage of the day are drawn; the window
        count is the available time divided by the duration; the first
        window starts within the first third of the total unavailable time;
        the remaining unavailable time is split randomly into positive gaps
        between consecutive windows (plus trailing slack).
        """
        cfg = self._config
        duration = rng.choice(cfg.window_durations)
        percent = rng.choice(cfg.availability_percents)
        available = cfg.day_seconds * percent / 100.0
        count = max(1, round(available / duration))
        count = min(count, int(cfg.day_seconds // duration))
        unavailable = cfg.day_seconds - count * duration
        first_start = rng.uniform(0.0, unavailable / 3.0)
        remaining = unavailable - first_start
        shares = [rng.random() for _ in range(count)]
        total_share = sum(shares) or 1.0
        gaps = [remaining * share / total_share for share in shares]
        windows = []
        cursor = first_start
        for index in range(count):
            windows.append(Interval(cursor, cursor + duration))
            cursor += duration + gaps[index]
        return tuple(windows)

    # -- data items and requests ---------------------------------------------

    def _generate_requests(
        self, rng: random.Random, machine_count: int
    ) -> Tuple[List[DataItem], List[Request]]:
        cfg = self._config
        target = rng.randint(*cfg.requests_per_machine) * machine_count
        items: List[DataItem] = []
        requests: List[Request] = []
        while len(requests) < target:
            item, item_requests = self._generate_item(
                rng,
                machine_count,
                item_id=len(items),
                first_request_id=len(requests),
                budget=target - len(requests),
            )
            items.append(item)
            requests.extend(item_requests)
        return items, requests

    def _generate_item(
        self,
        rng: random.Random,
        machine_count: int,
        item_id: int,
        first_request_id: int,
        budget: int,
    ) -> Tuple[DataItem, List[Request]]:
        cfg = self._config
        source_count = rng.randint(*cfg.sources_per_item)
        source_count = min(source_count, machine_count - 1)
        destination_count = rng.randint(*cfg.destinations_per_item)
        destination_count = min(
            destination_count, machine_count - source_count, budget
        )
        destination_count = max(destination_count, 1)
        source_machines = rng.sample(range(machine_count), source_count)
        remaining = [
            m for m in range(machine_count) if m not in source_machines
        ]
        destinations = rng.sample(remaining, destination_count)
        start = rng.uniform(*cfg.item_start_seconds)
        item = DataItem(
            item_id=item_id,
            name=f"item-{item_id:04d}",
            size=rng.uniform(*cfg.item_size_bytes),
            sources=tuple(
                SourceLocation(machine=machine, available_from=start)
                for machine in source_machines
            ),
        )
        item_requests = [
            Request(
                request_id=first_request_id + offset,
                item_id=item_id,
                destination=destination,
                priority=rng.randrange(cfg.priority_levels),
                deadline=start + rng.uniform(*cfg.deadline_offset_seconds),
            )
            for offset, destination in enumerate(destinations)
        ]
        return item, item_requests
