"""Hand-built scenario presets.

Deterministic, human-readable scenarios used by examples, documentation,
and tests.  The flagship preset is :func:`badd_theater`, a direct
translation of the paper's §1 motivation: a warfighter staging terrain
maps, enemy locations, and weather data from rear data centers over an
intermittently available satellite network.
"""

from __future__ import annotations

from repro.core import units
from repro.core.data import DataItem, SourceLocation
from repro.core.intervals import Interval
from repro.core.link import PhysicalLink
from repro.core.machine import Machine
from repro.core.network import Network
from repro.core.priority import Priority
from repro.core.request import Request
from repro.core.scenario import Scenario


def badd_theater() -> Scenario:
    """The paper's §1 warfighter scenario, made concrete.

    Machines: Washington data center, European base, satellite ground
    relay, forward operations base, and a field unit.  The rear sites talk
    over always-up terrestrial fiber; the theater hangs off 15-minute
    hourly satellite passes.  One item (the 60 MB logistics report) is
    deliberately larger than any single pass can carry, so the network is
    structurally oversubscribed: ``possible_satisfy < upper_bound``.
    """
    machines = (
        Machine(0, units.gigabytes(500), name="washington"),
        Machine(1, units.gigabytes(100), name="euro-base"),
        Machine(2, units.gigabytes(2), name="relay"),
        Machine(3, units.megabytes(600), name="fob"),
        Machine(4, units.megabytes(200), name="field-unit"),
    )

    always = (Interval(0.0, units.hours(24)),)
    sat_passes = tuple(
        Interval(
            units.hours(h) + units.minutes(10),
            units.hours(h) + units.minutes(25),
        )
        for h in range(24)
    )
    links = (
        PhysicalLink(0, 0, 1, units.megabits_per_second(1.5), 0.2, always),
        PhysicalLink(1, 1, 0, units.megabits_per_second(1.5), 0.2, always),
        PhysicalLink(2, 0, 2, units.megabits_per_second(1.0), 0.2, always),
        PhysicalLink(3, 1, 2, units.megabits_per_second(1.0), 0.2, always),
        PhysicalLink(4, 2, 0, units.kilobits_per_second(256), 0.2, always),
        PhysicalLink(5, 2, 3, units.kilobits_per_second(512), 0.5, sat_passes),
        PhysicalLink(6, 3, 2, units.kilobits_per_second(64), 0.5, sat_passes),
        PhysicalLink(7, 3, 4, units.kilobits_per_second(128), 0.3, always),
        PhysicalLink(8, 4, 3, units.kilobits_per_second(64), 0.3, always),
    )
    network = Network(machines, links)

    items = (
        DataItem(
            0, "terrain-maps", units.megabytes(18), (SourceLocation(0, 0.0),)
        ),
        DataItem(
            1,
            "enemy-locations",
            units.megabytes(2),
            (
                SourceLocation(0, units.minutes(20)),
                SourceLocation(1, units.minutes(20)),
            ),
        ),
        DataItem(
            2, "weather-0600", units.megabytes(6), (SourceLocation(1, 0.0),)
        ),
        # 60 MB exceeds every 15-minute satellite pass at 512 Kbit/s.
        DataItem(
            3,
            "logistics-report",
            units.megabytes(60),
            (SourceLocation(1, 0.0),),
        ),
    )

    requests = (
        Request(0, 0, 4, Priority.HIGH, units.hours(2.0)),
        Request(1, 1, 4, Priority.HIGH, units.hours(1.5)),
        Request(2, 2, 4, Priority.MEDIUM, units.hours(2.0)),
        Request(3, 1, 3, Priority.MEDIUM, units.hours(2.0)),
        Request(4, 2, 3, Priority.LOW, units.hours(3.0)),
        Request(5, 3, 3, Priority.LOW, units.hours(2.5)),
        Request(6, 3, 2, Priority.LOW, units.hours(2.0)),
    )

    return Scenario(
        network=network,
        items=items,
        requests=requests,
        gc_delay=units.minutes(6),
        horizon=units.hours(6),
        name="badd-theater",
    )


def two_route_diamond() -> Scenario:
    """A minimal contention study: one item, two disjoint routes.

    Machines 0 -> {1, 2} -> 3; the upper route is fast but narrow (one
    short window), the lower route slow but always on.  Useful in tests
    and docs for illustrating window-constrained routing.
    """
    machines = tuple(
        Machine(index, units.megabytes(100)) for index in range(4)
    )
    links = (
        PhysicalLink(
            0, 0, 1, units.megabits_per_second(1.0), 0.1,
            (Interval(0.0, units.minutes(5)),),
        ),
        PhysicalLink(
            1, 1, 3, units.megabits_per_second(1.0), 0.1,
            (Interval(0.0, units.minutes(5)),),
        ),
        PhysicalLink(
            2, 0, 2, units.kilobits_per_second(200), 0.1,
            (Interval(0.0, units.hours(4)),),
        ),
        PhysicalLink(
            3, 2, 3, units.kilobits_per_second(200), 0.1,
            (Interval(0.0, units.hours(4)),),
        ),
    )
    items = (
        DataItem(
            0, "payload", units.megabytes(10), (SourceLocation(0, 0.0),)
        ),
    )
    requests = (
        Request(0, 0, 3, Priority.HIGH, units.hours(1.0)),
    )
    return Scenario(
        network=Network(machines, links),
        items=items,
        requests=requests,
        gc_delay=units.minutes(6),
        horizon=units.hours(4),
        name="two-route-diamond",
    )
