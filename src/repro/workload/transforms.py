"""Scenario transforms: derived what-if variants of a scenario.

The ablation studies repeatedly need "the same scenario, but …" — tighter
storage, a different γ, scaled deadlines, a different weighting.  These
helpers produce *validated* variants (every transform re-runs the
scenario's cross-entity validation) while leaving the original untouched,
so a sweep over one knob provably changes nothing else.
"""

from __future__ import annotations

import dataclasses

from repro.core.machine import Machine
from repro.core.network import Network
from repro.core.priority import PriorityWeighting
from repro.core.request import Request
from repro.core.scenario import Scenario
from repro.errors import ConfigurationError


def with_gc_delay(scenario: Scenario, gc_delay: float) -> Scenario:
    """The same scenario under a different garbage-collection γ."""
    if gc_delay < 0:
        raise ConfigurationError(f"gc_delay must be >= 0, got {gc_delay}")
    return dataclasses.replace(scenario, gc_delay=gc_delay)


def with_weighting(
    scenario: Scenario, weighting: PriorityWeighting
) -> Scenario:
    """The same scenario scored under a different priority weighting.

    Raises:
        ConfigurationError: if the weighting has fewer classes than the
            scenario's priorities use.
    """
    highest = max(
        (request.priority for request in scenario.requests), default=0
    )
    if weighting.highest_priority < highest:
        raise ConfigurationError(
            f"weighting {weighting} has {weighting.highest_priority + 1} "
            f"classes but the scenario uses priority {highest}"
        )
    return dataclasses.replace(scenario, weighting=weighting)


def scale_capacities(scenario: Scenario, factor: float) -> Scenario:
    """Every machine's storage multiplied by ``factor`` (> 0)."""
    if factor <= 0:
        raise ConfigurationError(f"factor must be > 0, got {factor}")
    machines = tuple(
        Machine(
            index=machine.index,
            capacity=machine.capacity * factor,
            name=machine.name,
        )
        for machine in scenario.network.machines
    )
    network = Network(machines, scenario.network.physical_links)
    return dataclasses.replace(scenario, network=network)


def scale_deadlines(scenario: Scenario, factor: float) -> Scenario:
    """Every request's *slack* multiplied by ``factor`` (> 0).

    Slack is measured from the item's earliest availability, so the
    transform tightens or relaxes urgency without moving item start
    times.  The horizon grows if a relaxed deadline would escape it.
    """
    if factor <= 0:
        raise ConfigurationError(f"factor must be > 0, got {factor}")
    requests = []
    latest = 0.0
    for request in scenario.requests:
        item = scenario.item(request.item_id)
        start = item.earliest_availability()
        slack = request.deadline - start
        deadline = start + slack * factor
        latest = max(latest, deadline)
        requests.append(
            Request(
                request_id=request.request_id,
                item_id=request.item_id,
                destination=request.destination,
                priority=request.priority,
                deadline=deadline,
            )
        )
    horizon = max(scenario.horizon, latest + scenario.gc_delay + 1.0)
    return dataclasses.replace(
        scenario, requests=tuple(requests), horizon=horizon
    )


def drop_requests(scenario: Scenario, keep_fraction: float) -> Scenario:
    """Keep the first ``keep_fraction`` of requests (ids renumbered).

    A deterministic load-shedding transform: the retained prefix keeps
    the original request order, so two scenarios differing only in
    ``keep_fraction`` are strictly nested.

    Raises:
        ConfigurationError: unless ``0 < keep_fraction <= 1``.
    """
    if not 0 < keep_fraction <= 1:
        raise ConfigurationError(
            f"keep_fraction must lie in (0, 1], got {keep_fraction}"
        )
    keep = max(1, int(round(scenario.request_count * keep_fraction)))
    requests = tuple(
        Request(
            request_id=index,
            item_id=request.item_id,
            destination=request.destination,
            priority=request.priority,
            deadline=request.deadline,
        )
        for index, request in enumerate(scenario.requests[:keep])
    )
    return dataclasses.replace(scenario, requests=requests)
