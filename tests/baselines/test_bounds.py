"""Unit tests for the §5.2 upper bounds."""

from repro.baselines.bounds import (
    isolated_satisfiable_requests,
    possible_satisfy,
    possible_satisfy_effect,
    upper_bound,
    upper_bound_effect,
)

from tests.helpers import line_network, make_item, make_scenario


def _scenario(deadlines):
    network = line_network(3)
    items = [make_item(0, 1000.0, [(0, 0.0)])]
    specs = [
        (0, 1, 2, deadlines[0]),
        (0, 2, 1, deadlines[1]),
    ]
    return make_scenario(network, items, specs)


class TestUpperBound:
    def test_counts_every_request(self):
        scenario = _scenario((100.0, 100.0))
        assert upper_bound(scenario) == 110.0
        effect = upper_bound_effect(scenario)
        assert effect.satisfied_by_priority == effect.total_by_priority

    def test_independent_of_feasibility(self):
        # Impossible deadlines still count toward the loose bound.
        assert upper_bound(_scenario((0.1, 0.1))) == 110.0


class TestPossibleSatisfy:
    def test_all_reachable_in_time(self):
        scenario = _scenario((100.0, 100.0))
        assert possible_satisfy(scenario) == 110.0
        assert isolated_satisfiable_requests(scenario) == (0, 1)

    def test_excludes_impossible_deadlines(self):
        # Machine 1 is one hop (1 s), machine 2 two hops (2 s).
        scenario = _scenario((1.0, 1.5))
        assert isolated_satisfiable_requests(scenario) == (0,)
        assert possible_satisfy(scenario) == 100.0

    def test_all_impossible(self):
        scenario = _scenario((0.5, 0.5))
        assert possible_satisfy(scenario) == 0.0
        effect = possible_satisfy_effect(scenario)
        assert effect.satisfied_count == 0

    def test_never_exceeds_upper_bound(self, tiny_scenarios):
        for scenario in tiny_scenarios:
            assert possible_satisfy(scenario) <= upper_bound(scenario)

    def test_ignores_contention(self):
        # Two items competing for one link are both satisfiable in
        # isolation even though no schedule satisfies both.
        from repro.core.intervals import Interval
        from tests.helpers import make_link, make_network

        network = make_network(
            2, [make_link(0, 0, 1, windows=[Interval(0.0, 1.2)])]
        )
        scenario = make_scenario(
            network,
            [
                make_item(0, 1000.0, [(0, 0.0)]),
                make_item(1, 1000.0, [(0, 0.0)]),
            ],
            [(0, 1, 2, 1.1), (1, 1, 2, 1.1)],
        )
        assert possible_satisfy(scenario) == 200.0
