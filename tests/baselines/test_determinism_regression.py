"""Regression: repeated runs on one instance give identical schedules.

The run-record cache and the parallel sweep executor assume a scheduler
is a pure function of ``(scenario, scheduler)``.  The random baselines
hold private seeded RNGs, which makes a subtle failure possible: an RNG
that carries state *across* ``run()`` calls produces a different
schedule the second time the same object runs (this was a real bug in
``RandomDijkstraBaseline``, fixed by reseeding per run).  These tests
pin the per-run reseeding contract for both random baselines and the
workload generator.
"""

from __future__ import annotations

from repro.baselines.random_dijkstra import RandomDijkstraBaseline
from repro.baselines.single_dijkstra_random import (
    SingleDijkstraRandomBaseline,
)
from repro.serialization import scenario_to_dict
from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator
from repro.workload.presets import badd_theater


def _schedule_signature(result):
    schedule = result.schedule
    return (schedule.steps, sorted(schedule.deliveries.items()))


def test_random_dijkstra_is_identical_across_two_runs():
    scenario = badd_theater()
    baseline = RandomDijkstraBaseline(seed=7)
    first = baseline.run(scenario)
    second = baseline.run(scenario)
    assert _schedule_signature(first) == _schedule_signature(second)


def test_random_dijkstra_same_seed_fresh_instances_agree():
    scenario = badd_theater()
    first = RandomDijkstraBaseline(seed=7).run(scenario)
    second = RandomDijkstraBaseline(seed=7).run(scenario)
    assert _schedule_signature(first) == _schedule_signature(second)


def test_single_dijkstra_random_is_identical_across_two_runs():
    scenario = badd_theater()
    baseline = SingleDijkstraRandomBaseline(seed=11)
    first = baseline.run(scenario)
    second = baseline.run(scenario)
    assert _schedule_signature(first) == _schedule_signature(second)


def test_generator_is_identical_across_two_calls():
    generator = ScenarioGenerator(GeneratorConfig.tiny())
    first = generator.generate(seed=3)
    second = generator.generate(seed=3)
    assert scenario_to_dict(first) == scenario_to_dict(second)


def test_generator_fresh_instances_agree():
    config = GeneratorConfig.tiny()
    first = ScenarioGenerator(config).generate(seed=3)
    second = ScenarioGenerator(config).generate(seed=3)
    assert scenario_to_dict(first) == scenario_to_dict(second)
