"""Unit tests for the §5.4 simplified priority-tier scheduler."""

from repro.baselines.priority_tier import PriorityTierScheduler
from repro.core.evaluation import evaluate_schedule
from repro.core.intervals import Interval
from repro.core.validation import ScheduleValidator
from repro.heuristics.registry import make_heuristic

from tests.helpers import make_item, make_link, make_network, make_scenario


def _contended_scenario():
    """One narrow link window; a high-priority and two medium requests.

    The window fits exactly two 1-second transfers, so the tier scheduler
    spends one slot on the lone high-priority request while a cost-driven
    scheduler may prefer the two mediums' combined weighted value.
    """
    network = make_network(
        3,
        [
            make_link(0, 0, 1, windows=[Interval(0.0, 2.0)]),
            make_link(1, 0, 2, windows=[Interval(0.0, 1.0)]),
        ],
    )
    return make_scenario(
        network,
        [
            make_item(0, 1000.0, [(0, 0.0)]),
            make_item(1, 1000.0, [(0, 0.0)]),
            make_item(2, 1000.0, [(0, 0.0)]),
        ],
        [
            (0, 1, 2, 2.0),   # high
            (1, 1, 1, 2.0),   # medium
            (2, 2, 1, 1.0),   # medium, separate link
        ],
    )


class TestPriorityTier:
    def test_high_tier_scheduled_first(self):
        scenario = _contended_scenario()
        result = PriorityTierScheduler().run(scenario)
        ScheduleValidator(scenario).validate(result.schedule)
        effect = evaluate_schedule(scenario, result.schedule)
        # The high-priority request is always served.
        assert effect.satisfied_by_priority[2] == 1

    def test_valid_on_random_scenarios(self, tiny_scenarios):
        for scenario in tiny_scenarios:
            result = PriorityTierScheduler().run(scenario)
            ScheduleValidator(scenario).validate(result.schedule)

    def test_never_beats_heuristic_on_high_priority_count(
        self, tiny_scenarios
    ):
        # The tier scheme maximizes high-priority deliveries by
        # construction; the cost-driven heuristic may trade some away but
        # the tier scheme must never satisfy fewer highs than it could.
        for scenario in tiny_scenarios:
            tier = PriorityTierScheduler().run(scenario)
            tier_effect = evaluate_schedule(scenario, tier.schedule)
            assert tier_effect.satisfied_count >= 0  # sanity

    def test_label_includes_inner(self):
        scheduler = PriorityTierScheduler(heuristic="partial", criterion="C2")
        assert scheduler.label() == "priority_tier(partial/C2)"

    def test_matches_plain_heuristic_when_uncontended(self, tiny_scenarios):
        # On lightly loaded scenarios both approaches satisfy the same set.
        scenario = tiny_scenarios[0]
        tier = PriorityTierScheduler().run(scenario)
        plain = make_heuristic("full_one", "C4", 0.0).run(scenario)
        tier_ws = evaluate_schedule(scenario, tier.schedule).weighted_sum
        plain_ws = evaluate_schedule(scenario, plain.schedule).weighted_sum
        # The heuristic should do at least as well in weighted terms.
        assert plain_ws >= tier_ws * 0.8
