"""Unit tests for the two §5.2 random lower-bound baselines."""

from repro.baselines.random_dijkstra import RandomDijkstraBaseline
from repro.baselines.single_dijkstra_random import SingleDijkstraRandomBaseline
from repro.core.evaluation import evaluate_schedule
from repro.core.validation import ScheduleValidator

from tests.helpers import line_network, make_item, make_scenario


def _simple_scenario():
    network = line_network(3)
    items = [
        make_item(0, 1000.0, [(0, 0.0)]),
        make_item(1, 1000.0, [(1, 0.0)]),
    ]
    specs = [(0, 2, 2, 100.0), (1, 0, 1, 100.0)]
    return make_scenario(network, items, specs)


class TestRandomDijkstra:
    def test_produces_valid_schedule(self, tiny_scenarios):
        for index, scenario in enumerate(tiny_scenarios):
            result = RandomDijkstraBaseline(seed=index).run(scenario)
            ScheduleValidator(scenario).validate(result.schedule)

    def test_same_seed_is_deterministic(self):
        scenario = _simple_scenario()
        a = RandomDijkstraBaseline(seed=7).run(scenario)
        b = RandomDijkstraBaseline(seed=7).run(scenario)
        assert [
            (s.item_id, s.link_id, s.start) for s in a.schedule.steps
        ] == [(s.item_id, s.link_id, s.start) for s in b.schedule.steps]

    def test_uncontended_scenario_fully_satisfied(self):
        # With no resource conflicts even random choices satisfy all.
        scenario = _simple_scenario()
        result = RandomDijkstraBaseline(seed=0).run(scenario)
        effect = evaluate_schedule(scenario, result.schedule)
        assert effect.satisfied_count == 2

    def test_label(self):
        assert RandomDijkstraBaseline().label() == "random_dijkstra"


class TestSingleDijkstraRandom:
    def test_produces_valid_schedule(self, tiny_scenarios):
        for index, scenario in enumerate(tiny_scenarios):
            result = SingleDijkstraRandomBaseline(seed=index).run(scenario)
            ScheduleValidator(scenario).validate(result.schedule)

    def test_same_seed_is_deterministic(self):
        scenario = _simple_scenario()
        a = SingleDijkstraRandomBaseline(seed=3).run(scenario)
        b = SingleDijkstraRandomBaseline(seed=3).run(scenario)
        assert [
            (s.item_id, s.link_id, s.start) for s in a.schedule.steps
        ] == [(s.item_id, s.link_id, s.start) for s in b.schedule.steps]

    def test_one_dijkstra_per_requested_item(self):
        scenario = _simple_scenario()
        result = SingleDijkstraRandomBaseline(seed=0).run(scenario)
        assert result.stats.dijkstra_runs == 2

    def test_uncontended_scenario_fully_satisfied(self):
        scenario = _simple_scenario()
        result = SingleDijkstraRandomBaseline(seed=0).run(scenario)
        effect = evaluate_schedule(scenario, result.schedule)
        assert effect.satisfied_count == 2

    def test_conflicting_requests_get_dropped(self):
        # Two items share one tight link window; planned against a pristine
        # network both want [0, 1) — whichever books second is dropped.
        from repro.core.intervals import Interval
        from tests.helpers import make_link, make_network

        network = make_network(
            2, [make_link(0, 0, 1, windows=[Interval(0.0, 1.5)])]
        )
        scenario = make_scenario(
            network,
            [
                make_item(0, 1000.0, [(0, 0.0)]),
                make_item(1, 1000.0, [(0, 0.0)]),
            ],
            [(0, 1, 2, 2.0), (1, 1, 2, 2.0)],
        )
        result = SingleDijkstraRandomBaseline(seed=0).run(scenario)
        ScheduleValidator(scenario).validate(result.schedule)
        effect = evaluate_schedule(scenario, result.schedule)
        assert effect.satisfied_count == 1

    def test_no_steps_for_impossible_deadlines(self):
        scenario = make_scenario(
            line_network(3),
            [make_item(0, 1000.0, [(0, 0.0)])],
            [(0, 2, 2, 0.5)],
        )
        result = SingleDijkstraRandomBaseline(seed=0).run(scenario)
        assert result.schedule.step_count == 0
