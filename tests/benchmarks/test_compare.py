"""Perf-regression gating: verdicts, exit codes, and the CLI gate."""

import json

import pytest

from repro.benchmarks import (
    EXIT_FLAT,
    EXIT_IMPROVED,
    EXIT_REGRESSED,
    Thresholds,
    compare_documents,
    render_comparison,
    verdict_exit_code,
)
from repro.benchmarks.compare import (
    VERDICT_FLAT,
    VERDICT_IMPROVED,
    VERDICT_REGRESSED,
)
from repro.cli import main


def _stat(total, count=4):
    """A wall/cpu span stat pair with the given wall total."""
    each = total / count
    return {
        "wall": {
            "count": count,
            "total": total,
            "min": each,
            "max": each,
        },
        "cpu": {
            "count": count,
            "total": total / 2.0,
            "min": each / 2.0,
            "max": each / 2.0,
        },
    }


def _document(walls, label="base"):
    """A minimal schema-valid bench document from {path: wall_total}."""
    return {
        "format_version": 1,
        "kind": "bench",
        "schema_version": 1,
        "label": label,
        "scale": "ci",
        "environment": {"python": "3.x", "cpu_count": 4},
        "cache": {
            "cells": 5,
            "computed": 5,
            "cache_hits": 0,
            "hit_rate": 0.0,
        },
        "harness": {
            "format_version": 1,
            "kind": "profile",
            "schema_version": 1,
            "spans": {"scenario_generation": _stat(1.0)},
        },
        "entries": {
            "partial/C4": {
                "elapsed_seconds": sum(walls.values()),
                "cells": 5,
                "profile": {
                    "format_version": 1,
                    "kind": "profile",
                    "schema_version": 1,
                    "spans": {
                        path: _stat(total) for path, total in walls.items()
                    },
                },
                "hotspots": [{"path": path} for path in walls],
            }
        },
    }


_BASE_WALLS = {"tree": 10.0, "tree/dijkstra": 8.0, "scoring": 2.0}


def _scaled(factor, label="cand"):
    return _document(
        {path: wall * factor for path, wall in _BASE_WALLS.items()},
        label=label,
    )


class TestVerdicts:
    def test_self_comparison_is_flat(self):
        document = _document(_BASE_WALLS)
        comparison = compare_documents(document, document)
        assert comparison.verdict == VERDICT_FLAT
        assert not comparison.regressions
        assert not comparison.improvements

    def test_inflated_walls_regress(self):
        comparison = compare_documents(
            _document(_BASE_WALLS), _scaled(1.5)
        )
        assert comparison.verdict == VERDICT_REGRESSED
        paths = {delta.path for delta in comparison.regressions}
        assert "tree/dijkstra" in paths

    def test_deflated_walls_improve(self):
        comparison = compare_documents(
            _document(_BASE_WALLS), _scaled(0.5)
        )
        assert comparison.verdict == VERDICT_IMPROVED
        assert not comparison.regressions

    def test_any_regression_outranks_improvements(self):
        walls = dict(_BASE_WALLS)
        walls["scoring"] = 0.5  # improved
        walls["tree/dijkstra"] = 20.0  # regressed
        comparison = compare_documents(
            _document(_BASE_WALLS), _document(walls, label="cand")
        )
        assert comparison.improvements
        assert comparison.regressions
        assert comparison.verdict == VERDICT_REGRESSED

    def test_changes_within_threshold_stay_flat(self):
        comparison = compare_documents(
            _document(_BASE_WALLS), _scaled(1.1)
        )
        assert comparison.verdict == VERDICT_FLAT

    def test_micro_phases_under_the_noise_floor_never_regress(self):
        baseline = _document({"tree": 0.001})
        candidate = _document({"tree": 0.04}, label="cand")  # 40x slower
        comparison = compare_documents(baseline, candidate)
        assert comparison.verdict == VERDICT_FLAT

    def test_zero_baseline_with_real_candidate_cost_regresses(self):
        baseline = _document({"tree": 0.0})
        candidate = _document({"tree": 5.0}, label="cand")
        comparison = compare_documents(baseline, candidate)
        assert comparison.verdict == VERDICT_REGRESSED
        (delta,) = [
            d for d in comparison.regressions if d.path == "tree"
        ]
        assert delta.ratio == float("inf")

    def test_phases_on_only_one_side_are_informational(self):
        baseline = _document(dict(_BASE_WALLS, booking=50.0))
        candidate = _document(dict(_BASE_WALLS, gc=50.0), label="cand")
        comparison = compare_documents(baseline, candidate)
        assert ("partial/C4", "booking") in comparison.only_baseline
        assert ("partial/C4", "gc") in comparison.only_candidate
        # Neither lopsided phase affects the verdict; elapsed differs by
        # 0 so everything comparable is flat.
        assert comparison.verdict == VERDICT_FLAT

    def test_thresholds_are_configurable(self):
        loose = Thresholds(max_regression=2.0)
        comparison = compare_documents(
            _document(_BASE_WALLS), _scaled(1.5), loose
        )
        assert comparison.verdict == VERDICT_FLAT


class TestExitCodes:
    def test_mapping_is_distinct(self):
        assert verdict_exit_code(VERDICT_FLAT) == EXIT_FLAT == 0
        assert verdict_exit_code(VERDICT_IMPROVED) == EXIT_IMPROVED == 3
        assert verdict_exit_code(VERDICT_REGRESSED) == EXIT_REGRESSED == 4
        assert len({EXIT_FLAT, EXIT_IMPROVED, EXIT_REGRESSED}) == 3
        # 1 and 2 stay free for crashes and argparse usage errors.
        assert not {1, 2} & {EXIT_FLAT, EXIT_IMPROVED, EXIT_REGRESSED}


class TestRender:
    def test_report_flags_environment_mismatch_and_verdict(self):
        baseline = _document(_BASE_WALLS)
        candidate = _scaled(1.5)
        candidate["environment"] = {"python": "3.y", "cpu_count": 1}
        comparison = compare_documents(baseline, candidate)
        text = render_comparison(comparison, baseline, candidate)
        assert "WARNING" in text
        assert "REGRESSED" in text
        assert text.splitlines()[-1] == "verdict: REGRESSED"

    def test_flat_report_has_no_warning(self):
        document = _document(_BASE_WALLS)
        comparison = compare_documents(document, document)
        text = render_comparison(comparison, document, document)
        assert "WARNING" not in text
        assert text.splitlines()[-1] == "verdict: FLAT"


class TestCliGate:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document), encoding="utf-8")
        return str(path)

    @pytest.fixture
    def baseline_path(self, tmp_path):
        return self._write(tmp_path, "baseline.json", _document(_BASE_WALLS))

    def test_flat_exits_zero(self, baseline_path, capsys):
        code = main(["bench", "compare", baseline_path, baseline_path])
        assert code == EXIT_FLAT
        assert "verdict: FLAT" in capsys.readouterr().out

    def test_regression_exits_four(self, baseline_path, tmp_path, capsys):
        candidate = self._write(tmp_path, "cand.json", _scaled(1.5))
        code = main(["bench", "compare", baseline_path, candidate])
        assert code == EXIT_REGRESSED
        assert "verdict: REGRESSED" in capsys.readouterr().out

    def test_improvement_exits_three(self, baseline_path, tmp_path):
        candidate = self._write(tmp_path, "cand.json", _scaled(0.5))
        code = main(["bench", "compare", baseline_path, candidate])
        assert code == EXIT_IMPROVED

    def test_warn_only_reports_but_exits_zero(
        self, baseline_path, tmp_path, capsys
    ):
        candidate = self._write(tmp_path, "cand.json", _scaled(1.5))
        code = main(
            ["bench", "compare", baseline_path, candidate, "--warn-only"]
        )
        assert code == EXIT_FLAT
        assert "verdict: REGRESSED" in capsys.readouterr().out

    def test_fail_on_regression_still_fails_regressions(
        self, baseline_path, tmp_path
    ):
        candidate = self._write(tmp_path, "cand.json", _scaled(1.5))
        code = main(
            [
                "bench",
                "compare",
                baseline_path,
                candidate,
                "--fail-on-regression",
            ]
        )
        assert code == EXIT_REGRESSED

    def test_fail_on_regression_maps_improvement_to_zero(
        self, baseline_path, tmp_path, capsys
    ):
        candidate = self._write(tmp_path, "cand.json", _scaled(0.5))
        code = main(
            [
                "bench",
                "compare",
                baseline_path,
                candidate,
                "--fail-on-regression",
            ]
        )
        assert code == EXIT_FLAT
        assert "verdict: IMPROVED" in capsys.readouterr().out

    def test_custom_thresholds_flow_through(self, baseline_path, tmp_path):
        candidate = self._write(tmp_path, "cand.json", _scaled(1.5))
        code = main(
            [
                "bench",
                "compare",
                baseline_path,
                candidate,
                "--max-regression",
                "2.0",
            ]
        )
        assert code == EXIT_FLAT

    def test_invalid_document_is_a_cli_error(self, baseline_path, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json", encoding="utf-8")
        code = main(["bench", "compare", baseline_path, str(broken)])
        assert code == 2
