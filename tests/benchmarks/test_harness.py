"""The bench harness: matrix expansion, document shape, validation."""

import json

import pytest

from repro.benchmarks import (
    BENCH_SCHEMA_VERSION,
    BenchMatrix,
    environment_fingerprint,
    load_bench_document,
    render_bench,
    run_bench,
    validate_bench_document,
)
from repro.benchmarks.harness import BENCH_PAIRINGS
from repro.errors import ConfigurationError, ModelError
from repro.experiments.scale import scale_by_name
from repro.workload.config import GeneratorConfig


@pytest.fixture(scope="module")
def tiny_matrix():
    """The pinned pairings over two tiny cases — seconds, not minutes."""
    ci = scale_by_name("ci")
    scale = type(ci)(
        name="ci",
        cases=2,
        config=GeneratorConfig.tiny(),
        log_ratios=ci.log_ratios,
    )
    return BenchMatrix(scale=scale)


@pytest.fixture(scope="module")
def bench_document(tiny_matrix):
    return run_bench(tiny_matrix, label="test")


class TestMatrix:
    def test_pinned_matrix_covers_all_three_heuristics(self):
        matrix = BenchMatrix.pinned("ci")
        assert {pair[0] for pair in matrix.pairings} == {
            "partial",
            "full_one",
            "full_all",
        }
        assert matrix.cell_count == matrix.scale.cases * len(BENCH_PAIRINGS)

    def test_unknown_scale_is_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchMatrix.pinned("warp")


class TestDocument:
    def test_document_is_schema_valid(self, bench_document):
        validate_bench_document(bench_document)
        assert bench_document["kind"] == "bench"
        assert bench_document["schema_version"] == BENCH_SCHEMA_VERSION
        assert bench_document["label"] == "test"

    def test_every_heuristic_has_a_nonempty_phase_breakdown(
        self, bench_document
    ):
        entries = bench_document["entries"]
        assert len(entries) == 3
        for scheduler, entry in entries.items():
            spans = entry["profile"]["spans"]
            assert spans, scheduler
            for phase in ("tree", "tree/dijkstra", "scoring"):
                assert spans[phase]["wall"]["count"] > 0, (scheduler, phase)
            assert entry["hotspots"], scheduler
            assert entry["elapsed_seconds"] > 0.0

    def test_harness_profile_covers_generation_and_serialization(
        self, bench_document
    ):
        spans = bench_document["harness"]["spans"]
        assert spans["scenario_generation"]["wall"]["count"] == 2
        assert spans["serialization"]["wall"]["count"] == 1

    def test_cache_section_reports_cold_run(self, bench_document):
        cache = bench_document["cache"]
        assert cache["cells"] == 6
        assert cache["computed"] == 6
        assert cache["cache_hits"] == 0
        assert cache["hit_rate"] == 0.0

    def test_environment_fingerprint_is_stamped(self, bench_document):
        fingerprint = environment_fingerprint()
        assert bench_document["environment"]["python"] == (
            fingerprint["python"]
        )
        assert bench_document["environment"]["cpu_count"] >= 1

    def test_document_survives_json_and_reload(
        self, bench_document, tmp_path
    ):
        path = tmp_path / "BENCH_test.json"
        path.write_text(json.dumps(bench_document), encoding="utf-8")
        assert load_bench_document(path) == json.loads(
            json.dumps(bench_document)
        )

    def test_render_mentions_every_entry(self, bench_document):
        text = render_bench(bench_document)
        for scheduler in bench_document["entries"]:
            assert scheduler in text


class TestValidation:
    def test_wrong_kind_is_rejected(self):
        with pytest.raises(ModelError):
            validate_bench_document({"kind": "profile"})

    def test_wrong_schema_version_is_rejected(self):
        with pytest.raises(ModelError):
            validate_bench_document({"kind": "bench", "schema_version": 99})

    def test_invalid_entry_is_rejected(self, bench_document):
        broken = json.loads(json.dumps(bench_document))
        first = next(iter(broken["entries"]))
        broken["entries"][first]["elapsed_seconds"] = "fast"
        with pytest.raises(ModelError):
            validate_bench_document(broken)

    def test_invalid_json_file_is_a_model_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ModelError):
            load_bench_document(path)


class TestCacheReplay:
    def test_warm_cache_reports_hits_and_keeps_phase_timings(
        self, tiny_matrix, tmp_path
    ):
        cold = run_bench(tiny_matrix, cache_dir=tmp_path)
        warm = run_bench(tiny_matrix, cache_dir=tmp_path)
        assert cold["cache"]["cache_hits"] == 0
        assert warm["cache"]["cache_hits"] == warm["cache"]["cells"]
        assert warm["cache"]["hit_rate"] == 1.0
        # Replayed cells contribute their recorded timings, not zeros.
        for scheduler, entry in warm["entries"].items():
            assert entry["profile"]["spans"] == (
                cold["entries"][scheduler]["profile"]["spans"]
            )
