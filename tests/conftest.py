"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.workload.config import GeneratorConfig
from repro.workload.generator import ScenarioGenerator

from tests.helpers import single_item_line_scenario


@pytest.fixture
def line_scenario():
    """One item on a 3-machine ring; request at machine 2, 1 s per hop."""
    return single_item_line_scenario()


@pytest.fixture(scope="session")
def tiny_generator():
    """A generator drawing millisecond-scale random scenarios."""
    return ScenarioGenerator(GeneratorConfig.tiny())


@pytest.fixture(scope="session")
def tiny_scenarios(tiny_generator):
    """Five deterministic tiny scenarios shared across tests."""
    return tiny_generator.generate_suite(5, base_seed=100)
