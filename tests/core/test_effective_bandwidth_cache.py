"""The effective-bandwidth list is cached on the degradation epoch.

``NetworkState.effective_bandwidths()`` used to rebuild its list eagerly
at construction and on every fault application; it is now rebuilt lazily
and cached until :attr:`NetworkState.degradation_epoch` moves.  These
tests pin the cache contract: identical object while the epoch stands, a
fresh (and correct) list after any degradation, no leakage between a
state and its clone, and tree-cache invalidation keyed on the epoch.
"""

from repro.core.state import NetworkState
from repro.faults import BandwidthDegradation, FaultPlan
from repro.heuristics.base import EngineStats, TreeCache
from repro.observability import RecordingTracer, use_tracer
from repro.observability.tracer import (
    TREE_CACHE_BANDWIDTH_DEGRADED,
    TREE_CACHE_CLEAN,
    TREE_CACHE_COLD,
)
from tests.helpers import single_item_line_scenario


class TestEffectiveBandwidthCache:
    def test_repeated_reads_return_the_cached_list(self):
        state = NetworkState(single_item_line_scenario())
        assert state.effective_bandwidths() is state.effective_bandwidths()

    def test_degradation_mutation_refreshes_the_cache(self):
        scenario = single_item_line_scenario()
        state = NetworkState(scenario)
        healthy = state.effective_bandwidths()
        epoch = state.degradation_epoch

        state.degrade_physical_link(0, 0.5)
        assert state.degradation_epoch == epoch + 1
        degraded = state.effective_bandwidths()
        assert degraded is not healthy
        assert degraded is state.effective_bandwidths()
        for link in scenario.network.virtual_links:
            expected = link.bandwidth * (
                0.5 if link.physical_id == 0 else 1.0
            )
            assert degraded[link.link_id] == expected
        # The healthy snapshot the caller already held is untouched.
        assert all(
            healthy[link.link_id] == link.bandwidth
            for link in scenario.network.virtual_links
        )

    def test_construction_faults_are_visible_without_degrading(self):
        scenario = single_item_line_scenario()
        plan = FaultPlan(degradations=(BandwidthDegradation(0, 0.25),))
        state = NetworkState(scenario, faults=plan)
        values = state.effective_bandwidths()
        for link in scenario.network.virtual_links:
            expected = link.bandwidth * (
                0.25 if link.physical_id == 0 else 1.0
            )
            assert values[link.link_id] == expected

    def test_clone_degradation_does_not_leak_back(self):
        state = NetworkState(single_item_line_scenario())
        original = state.effective_bandwidths()
        clone = state.clone()
        clone.degrade_physical_link(0, 0.5)
        assert clone.effective_bandwidths() is not original
        assert state.effective_bandwidths() is original

    def test_degradation_lengthens_planned_transfers(self):
        scenario = single_item_line_scenario()
        state = NetworkState(scenario)
        link = scenario.network.link(0)
        before = state.earliest_transfer(0, link, sender_ready=0.0)
        state.degrade_physical_link(0, 0.5)
        after = state.earliest_transfer(0, link, sender_ready=0.0)
        assert before is not None and after is not None
        assert (after.end - after.start) == 2 * (before.end - before.start)


class TestTreeCacheInvalidation:
    def test_degradation_epoch_invalidates_cached_trees(self):
        state = NetworkState(single_item_line_scenario())
        cache = TreeCache(state, EngineStats())
        tracer = RecordingTracer()
        with use_tracer(tracer):
            traced = NetworkState(single_item_line_scenario())
            traced_cache = TreeCache(traced, EngineStats())
            traced_cache.entry_for(0)
            traced_cache.entry_for(0)
            traced.degrade_physical_link(0, 0.5)
            traced_cache.entry_for(0)
        reasons = [
            dict(event.fields)["reason"]
            for event in tracer.named("tree_cache")
        ]
        assert reasons == [
            TREE_CACHE_COLD,
            TREE_CACHE_CLEAN,
            TREE_CACHE_BANDWIDTH_DEGRADED,
        ]
        # And the recomputed tree reflects the slower link.
        first = cache.entry_for(0).tree
        state.degrade_physical_link(0, 0.5)
        second = cache.entry_for(0).tree
        assert second.arrival(1) > first.arrival(1)
