"""Unit tests for machines, links, data items, requests, and priorities."""

import pytest

from repro.core.data import DataItem, SourceLocation
from repro.core.intervals import Interval
from repro.core.link import PhysicalLink, VirtualLink
from repro.core.machine import Machine
from repro.core.priority import (
    Priority,
    PriorityWeighting,
    WEIGHTING_1_5_10,
    WEIGHTING_1_10_100,
)
from repro.core.request import Request
from repro.errors import ModelError


class TestMachine:
    def test_default_name(self):
        assert Machine(index=3, capacity=100.0).name == "M[3]"

    def test_explicit_name(self):
        assert Machine(index=0, capacity=1.0, name="hq").name == "hq"

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            Machine(index=-1, capacity=100.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelError):
            Machine(index=0, capacity=-1.0)


class TestVirtualLink:
    def _link(self, **overrides):
        kwargs = dict(
            link_id=0,
            source=0,
            destination=1,
            start=0.0,
            end=100.0,
            bandwidth=1000.0,
            latency=0.5,
        )
        kwargs.update(overrides)
        return VirtualLink(**kwargs)

    def test_window(self):
        assert self._link().window == Interval(0.0, 100.0)

    def test_transfer_seconds_includes_latency(self):
        assert self._link().transfer_seconds(2000.0) == 2.5

    def test_can_ever_carry(self):
        link = self._link()
        assert link.can_ever_carry(99_000.0)
        assert not link.can_ever_carry(100_000.0)  # 100.5s > 100s window

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            self._link(destination=0)

    def test_empty_window_rejected(self):
        with pytest.raises(ModelError):
            self._link(end=0.0)

    def test_non_positive_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            self._link(bandwidth=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ModelError):
            self._link(latency=-0.1)


class TestPhysicalLink:
    def test_virtual_links_one_per_window(self):
        plink = PhysicalLink(
            physical_id=7,
            source=0,
            destination=1,
            bandwidth=500.0,
            latency=0.1,
            windows=(Interval(0, 10), Interval(20, 30)),
        )
        vlinks = plink.virtual_links(first_link_id=40)
        assert [v.link_id for v in vlinks] == [40, 41]
        assert all(v.physical_id == 7 for v in vlinks)
        assert all(v.bandwidth == 500.0 for v in vlinks)
        assert vlinks[0].window == Interval(0, 10)
        assert vlinks[1].window == Interval(20, 30)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ModelError):
            PhysicalLink(
                physical_id=0,
                source=0,
                destination=1,
                bandwidth=1.0,
                latency=0.0,
                windows=(Interval(0, 10), Interval(5, 15)),
            )

    def test_unsorted_windows_rejected(self):
        with pytest.raises(ModelError):
            PhysicalLink(
                physical_id=0,
                source=0,
                destination=1,
                bandwidth=1.0,
                latency=0.0,
                windows=(Interval(20, 30), Interval(0, 10)),
            )

    def test_adjacent_windows_allowed(self):
        plink = PhysicalLink(
            physical_id=0,
            source=0,
            destination=1,
            bandwidth=1.0,
            latency=0.0,
            windows=(Interval(0, 10), Interval(10, 20)),
        )
        assert len(plink.windows) == 2


class TestDataItem:
    def test_source_machines(self):
        item = DataItem(
            item_id=0,
            name="maps",
            size=100.0,
            sources=(SourceLocation(2, 5.0), SourceLocation(4, 0.0)),
        )
        assert item.source_machines == (2, 4)
        assert item.earliest_availability() == 0.0

    def test_no_sources_rejected(self):
        with pytest.raises(ModelError):
            DataItem(item_id=0, name="x", size=1.0, sources=())

    def test_duplicate_source_machine_rejected(self):
        with pytest.raises(ModelError):
            DataItem(
                item_id=0,
                name="x",
                size=1.0,
                sources=(SourceLocation(1, 0.0), SourceLocation(1, 2.0)),
            )

    def test_non_positive_size_rejected(self):
        with pytest.raises(ModelError):
            DataItem(
                item_id=0, name="x", size=0.0, sources=(SourceLocation(0),)
            )

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            DataItem(
                item_id=0, name="", size=1.0, sources=(SourceLocation(0),)
            )


class TestRequest:
    def test_satisfied_by_arrival_at_deadline(self):
        request = Request(
            request_id=0, item_id=0, destination=1, priority=2, deadline=50.0
        )
        assert request.is_satisfied_by_arrival(50.0)
        assert request.is_satisfied_by_arrival(49.9)
        assert not request.is_satisfied_by_arrival(50.1)

    def test_negative_fields_rejected(self):
        with pytest.raises(ModelError):
            Request(-1, 0, 0, 0, 1.0)
        with pytest.raises(ModelError):
            Request(0, -1, 0, 0, 1.0)
        with pytest.raises(ModelError):
            Request(0, 0, -1, 0, 1.0)
        with pytest.raises(ModelError):
            Request(0, 0, 0, -1, 1.0)
        with pytest.raises(ModelError):
            Request(0, 0, 0, 0, -1.0)


class TestPriorityWeighting:
    def test_paper_weightings(self):
        assert WEIGHTING_1_5_10.weights == (1.0, 5.0, 10.0)
        assert WEIGHTING_1_10_100.weights == (1.0, 10.0, 100.0)
        assert WEIGHTING_1_10_100.name == "1-10-100"

    def test_weight_lookup(self):
        assert WEIGHTING_1_10_100.weight(Priority.HIGH) == 100.0
        assert WEIGHTING_1_10_100.weight(0) == 1.0

    def test_out_of_range_priority_rejected(self):
        with pytest.raises(ModelError):
            WEIGHTING_1_10_100.weight(3)
        with pytest.raises(ModelError):
            WEIGHTING_1_10_100.weight(-1)

    def test_decreasing_weights_rejected(self):
        with pytest.raises(ModelError):
            PriorityWeighting((10, 5, 1))

    def test_negative_weight_rejected(self):
        with pytest.raises(ModelError):
            PriorityWeighting((-1, 5))

    def test_empty_weighting_rejected(self):
        with pytest.raises(ModelError):
            PriorityWeighting(())

    def test_highest_priority(self):
        assert WEIGHTING_1_10_100.highest_priority == 2
        assert PriorityWeighting((1,)).highest_priority == 0

    def test_default_name_from_weights(self):
        assert PriorityWeighting((1, 2, 4)).name == "1-2-4"

    def test_priority_enum_values(self):
        assert Priority.LOW == 0
        assert Priority.MEDIUM == 1
        assert Priority.HIGH == 2
