"""Unit tests for schedule effect evaluation."""

from repro.core.evaluation import evaluate_satisfied, evaluate_schedule
from repro.core.schedule import Schedule

from tests.helpers import line_network, make_item, make_scenario


def _scenario():
    network = line_network(4)
    items = [
        make_item(0, 100.0, [(0, 0.0)]),
        make_item(1, 100.0, [(1, 0.0)]),
    ]
    specs = [
        (0, 2, 2, 100.0),  # high
        (0, 3, 1, 100.0),  # medium
        (1, 3, 0, 100.0),  # low
        (1, 2, 2, 100.0),  # high
    ]
    return make_scenario(network, items, specs)


class TestEvaluateSatisfied:
    def test_empty_set_scores_zero(self):
        effect = evaluate_satisfied(_scenario(), ())
        assert effect.weighted_sum == 0.0
        assert effect.satisfied_by_priority == (0, 0, 0)
        assert effect.total_by_priority == (1, 1, 2)

    def test_weighted_sum_uses_weighting(self):
        effect = evaluate_satisfied(_scenario(), (0, 2))
        # priority 2 (weight 100) + priority 0 (weight 1).
        assert effect.weighted_sum == 101.0
        assert effect.satisfied_by_priority == (1, 0, 1)

    def test_duplicate_ids_counted_once(self):
        effect = evaluate_satisfied(_scenario(), (0, 0, 0))
        assert effect.weighted_sum == 100.0
        assert effect.satisfied_count == 1

    def test_all_satisfied_matches_total(self):
        scenario = _scenario()
        effect = evaluate_satisfied(scenario, range(4))
        assert effect.weighted_sum == scenario.total_weighted_priority()
        assert effect.satisfied_by_priority == effect.total_by_priority


class TestEvaluateSchedule:
    def test_uses_recorded_deliveries(self):
        scenario = _scenario()
        schedule = Schedule()
        schedule.add_delivery(1, arrival=10.0, hops=1)
        schedule.add_delivery(3, arrival=20.0, hops=2)
        effect = evaluate_schedule(scenario, schedule)
        assert effect.weighted_sum == 110.0  # 10 + 100
        assert effect.satisfied_count == 2
