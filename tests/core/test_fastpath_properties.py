"""Property tests pinning the core fast paths to naive references.

The flattened inner loops (``IntervalSet.first_fit``/``span_is_free``,
``CapacityTimeline.min_free_span``/``next_sufficient_start``) and the
``__new__``-based ``copy()`` constructors trade clarity for speed; these
properties pin each of them to a brute-force reference implementation (or
to the validating slow path they replaced) over randomized inputs, so
the fast paths cannot silently drift.

All generated times sit on a half-integer grid: the arithmetic stays
exact, so strict float comparisons in the references mean what they say.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalSet
from repro.core.timeline import CapacityTimeline

#: Half-integer grid points in [0, 100].
_grid = st.integers(min_value=0, max_value=200).map(lambda i: i / 2.0)

#: Durations: zero or at least half a second (clear of the zero-duration
#: tolerance band).
_duration = st.one_of(
    st.just(0.0), st.integers(min_value=1, max_value=40).map(lambda i: i / 2.0)
)


@st.composite
def interval_sets(draw):
    """A valid IntervalSet: disjoint members from sorted grid points."""
    points = sorted(
        draw(st.sets(_grid, min_size=0, max_size=12)),
    )
    members = []
    for left, right in zip(points[::2], points[1::2]):
        if right > left:
            members.append(Interval(left, right))
    return IntervalSet(members)


def _naive_span_is_free(members, start, end):
    return all(
        not (member.start < end and start < member.end)
        for member in members
    )


def _naive_first_fit(members, duration, window_start, window_end, earliest):
    cursor = max(window_start, earliest)
    if cursor + duration > window_end:
        return None
    if duration == 0.0:
        return cursor if cursor < window_end else None
    candidates = sorted(
        {cursor}
        | {member.end for member in members if member.end > cursor}
    )
    for start in candidates:
        if start + duration > window_end:
            return None
        if _naive_span_is_free(members, start, start + duration):
            return start
    return None


class TestIntervalSetFastPaths:
    @given(busy=interval_sets(), start=_grid, duration=_duration)
    def test_span_is_free_matches_naive_overlap_scan(
        self, busy, start, duration
    ):
        end = start + duration
        if duration == 0.0:
            # Empty candidates are handled by is_free, not the float core
            # (span_is_free's contract assumes a non-empty span).
            assert busy.is_free(Interval(start, end))
            return
        members = busy.intervals()
        assert busy.span_is_free(start, end) == _naive_span_is_free(
            members, start, end
        )
        assert busy.is_free(Interval(start, end)) == busy.span_is_free(
            start, end
        )

    @given(
        busy=interval_sets(),
        duration=_duration,
        window_start=_grid,
        window_length=_duration,
        earliest=_grid,
    )
    def test_first_fit_matches_naive_candidate_scan(
        self, busy, duration, window_start, window_length, earliest
    ):
        window_end = window_start + window_length
        expected = _naive_first_fit(
            busy.intervals(), duration, window_start, window_end, earliest
        )
        assert (
            busy.first_fit(duration, window_start, window_end, earliest)
            == expected
        )
        assert (
            busy.earliest_fit(
                duration, Interval(window_start, window_end), earliest
            )
            == expected
        )

    @given(busy=interval_sets())
    def test_copy_equals_revalidating_rebuild(self, busy):
        fast = busy.copy()
        slow = IntervalSet(busy.intervals())  # re-adds through add()
        assert fast.intervals() == slow.intervals()
        assert fast._starts == slow._starts
        assert fast._ends == slow._ends

    @given(busy=interval_sets())
    def test_copy_is_independent(self, busy):
        clone = busy.copy()
        before = busy.intervals()
        clone.add(Interval(1000.0, 1001.0))
        assert busy.intervals() == before
        assert Interval(1000.0, 1001.0) in clone


@st.composite
def reserved_timelines(draw):
    """A timeline plus the reservation log that produced it."""
    capacity = draw(st.integers(min_value=1, max_value=10)) * 100.0
    timeline = CapacityTimeline(capacity)
    log = []
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        amount = draw(st.integers(min_value=1, max_value=10)) * 10.0
        start = draw(_grid)
        length = draw(st.integers(min_value=1, max_value=40)) / 2.0
        interval = Interval(start, start + length)
        if timeline.can_reserve(amount, interval):
            timeline.reserve(amount, interval)
            log.append((amount, interval))
    return timeline, log


def _naive_min_free(timeline, start, end):
    if end <= start:
        return timeline.capacity
    points = timeline.breakpoints()
    minimum = None
    for idx, (time, value) in enumerate(points):
        nxt = points[idx + 1][0] if idx + 1 < len(points) else float("inf")
        if time < end and nxt > start:
            if minimum is None or value < minimum:
                minimum = value
    return minimum


class TestTimelineFastPaths:
    @given(built=reserved_timelines(), start=_grid, length=_duration)
    def test_min_free_span_matches_naive_segment_scan(
        self, built, start, length
    ):
        timeline, _ = built
        end = start + length
        assert timeline.min_free_span(start, end) == _naive_min_free(
            timeline, start, end
        )
        assert timeline.min_free(Interval(start, end)) == (
            timeline.min_free_span(start, end)
        )

    @given(
        built=reserved_timelines(),
        amount=st.integers(min_value=1, max_value=12).map(lambda i: i * 10.0),
        start=_grid,
        length=st.integers(min_value=1, max_value=40).map(lambda i: i / 2.0),
    )
    def test_next_sufficient_start_matches_naive_scan(
        self, built, amount, start, length
    ):
        timeline, _ = built
        release = start + length
        result = timeline.next_sufficient_start(amount, start, release)
        if timeline.can_reserve_span(amount, start, release):
            # Every segment suffices; there is nothing to wait for.
            assert result is None
            return
        feasible = [
            time
            for time, _ in timeline.breakpoints()
            if start < time < release
            and timeline.min_free_span(time, release) >= amount
        ]
        assert result == (min(feasible) if feasible else None)
        if result is not None:
            assert start < result < release
            assert timeline.can_reserve_span(amount, result, release)

    @given(built=reserved_timelines())
    def test_copy_equals_replaying_the_reservation_log(self, built):
        timeline, log = built
        fast = timeline.copy()
        slow = CapacityTimeline(timeline.capacity)
        for amount, interval in log:
            slow.reserve(amount, interval)
        assert fast.breakpoints() == slow.breakpoints()
        assert fast.capacity == slow.capacity

    @given(built=reserved_timelines())
    def test_copy_is_independent(self, built):
        timeline, _ = built
        clone = timeline.copy()
        before = timeline.breakpoints()
        clone.reserve(timeline.capacity, Interval(2000.0, 2001.0))
        assert timeline.breakpoints() == before
        assert clone.free_at(2000.5) == 0.0
