"""Unit tests for half-open intervals and disjoint interval sets."""

import pytest

from repro.core.intervals import Interval, IntervalSet


class TestInterval:
    def test_duration(self):
        assert Interval(2.0, 5.0).duration == 3.0

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_zero_length_is_empty(self):
        assert Interval(3.0, 3.0).is_empty()
        assert not Interval(3.0, 3.1).is_empty()

    def test_contains_is_half_open(self):
        interval = Interval(1.0, 2.0)
        assert interval.contains(1.0)
        assert interval.contains(1.999)
        assert not interval.contains(2.0)
        assert not interval.contains(0.999)

    def test_contains_interval(self):
        outer = Interval(0.0, 10.0)
        assert outer.contains_interval(Interval(0.0, 10.0))
        assert outer.contains_interval(Interval(3.0, 7.0))
        assert not outer.contains_interval(Interval(3.0, 10.5))
        assert not outer.contains_interval(Interval(-1.0, 5.0))

    def test_contains_empty_interval_at_boundary(self):
        outer = Interval(0.0, 10.0)
        assert outer.contains_interval(Interval(10.0, 10.0))
        assert not outer.contains_interval(Interval(11.0, 11.0))

    def test_overlap_half_open_adjacency(self):
        # [0,5) and [5,9) share no instant.
        assert not Interval(0, 5).overlaps(Interval(5, 9))
        assert Interval(0, 5).overlaps(Interval(4.999, 9))

    def test_empty_interval_overlaps_nothing(self):
        assert not Interval(3, 3).overlaps(Interval(0, 10))
        assert not Interval(0, 10).overlaps(Interval(3, 3))

    def test_intersection(self):
        assert Interval(0, 5).intersection(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 5).intersection(Interval(5, 9)) is None
        assert Interval(0, 5).intersection(Interval(7, 9)) is None

    def test_shifted(self):
        assert Interval(1, 2).shifted(3.5) == Interval(4.5, 5.5)

    def test_ordering_by_start_then_end(self):
        assert Interval(0, 5) < Interval(1, 2)
        assert Interval(0, 2) < Interval(0, 5)


class TestIntervalSet:
    def test_empty_set_is_free_everywhere(self):
        assert IntervalSet().is_free(Interval(0, 1e9))

    def test_add_and_membership(self):
        busy = IntervalSet()
        busy.add(Interval(5, 10))
        assert Interval(5, 10) in busy
        assert Interval(5, 9) not in busy
        assert len(busy) == 1

    def test_add_overlapping_raises(self):
        busy = IntervalSet([Interval(5, 10)])
        with pytest.raises(ValueError):
            busy.add(Interval(9, 12))
        with pytest.raises(ValueError):
            busy.add(Interval(0, 6))
        with pytest.raises(ValueError):
            busy.add(Interval(6, 7))

    def test_add_adjacent_is_allowed(self):
        busy = IntervalSet([Interval(5, 10)])
        busy.add(Interval(10, 12))
        busy.add(Interval(0, 5))
        assert len(busy) == 3

    def test_add_empty_interval_is_noop(self):
        busy = IntervalSet()
        busy.add(Interval(5, 5))
        assert len(busy) == 0

    def test_is_free_checks_all_overlaps(self):
        busy = IntervalSet([Interval(0, 2), Interval(4, 6), Interval(8, 10)])
        assert busy.is_free(Interval(2, 4))
        assert busy.is_free(Interval(6, 8))
        assert not busy.is_free(Interval(3, 5))
        assert not busy.is_free(Interval(1, 9))

    def test_remove(self):
        busy = IntervalSet([Interval(0, 2), Interval(4, 6)])
        busy.remove(Interval(0, 2))
        assert busy.is_free(Interval(0, 2))
        with pytest.raises(KeyError):
            busy.remove(Interval(0, 2))

    def test_remove_requires_exact_match(self):
        busy = IntervalSet([Interval(0, 2)])
        with pytest.raises(KeyError):
            busy.remove(Interval(0, 1.5))

    def test_total_duration(self):
        busy = IntervalSet([Interval(0, 2), Interval(4, 7)])
        assert busy.total_duration() == 5.0

    def test_copy_is_independent(self):
        busy = IntervalSet([Interval(0, 2)])
        clone = busy.copy()
        clone.add(Interval(5, 6))
        assert len(busy) == 1
        assert len(clone) == 2


class TestEarliestFit:
    def test_fit_in_empty_set(self):
        busy = IntervalSet()
        assert busy.earliest_fit(3.0, Interval(0, 10)) == 0.0

    def test_fit_respects_earliest(self):
        busy = IntervalSet()
        assert busy.earliest_fit(3.0, Interval(0, 10), earliest=4.0) == 4.0

    def test_fit_after_busy_prefix(self):
        busy = IntervalSet([Interval(0, 4)])
        assert busy.earliest_fit(3.0, Interval(0, 10)) == 4.0

    def test_fit_in_gap_between_members(self):
        busy = IntervalSet([Interval(0, 2), Interval(5, 9)])
        assert busy.earliest_fit(3.0, Interval(0, 20)) == 2.0
        assert busy.earliest_fit(4.0, Interval(0, 20)) == 9.0

    def test_fit_too_long_for_window(self):
        busy = IntervalSet()
        assert busy.earliest_fit(11.0, Interval(0, 10)) is None

    def test_fit_window_fully_busy(self):
        busy = IntervalSet([Interval(0, 10)])
        assert busy.earliest_fit(1.0, Interval(0, 10)) is None

    def test_fit_exactly_fills_tail(self):
        busy = IntervalSet([Interval(0, 7)])
        assert busy.earliest_fit(3.0, Interval(0, 10)) == 7.0

    def test_fit_starting_inside_member_moves_to_member_end(self):
        busy = IntervalSet([Interval(2, 6)])
        assert busy.earliest_fit(1.0, Interval(0, 10), earliest=3.0) == 6.0

    def test_fit_zero_duration(self):
        busy = IntervalSet([Interval(0, 10)])
        # Zero-length transfers overlap nothing.
        assert busy.earliest_fit(0.0, Interval(0, 10)) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet().earliest_fit(-1.0, Interval(0, 10))

    def test_fit_skips_multiple_members(self):
        busy = IntervalSet(
            [Interval(0, 2), Interval(2.5, 5), Interval(5.5, 8)]
        )
        assert busy.earliest_fit(1.0, Interval(0, 10)) == 8.0
        assert busy.earliest_fit(0.5, Interval(0, 10)) == 2.0
