"""Unit tests for the network topology graph."""

import pytest

from repro.core.intervals import Interval
from repro.core.machine import Machine
from repro.core.network import (
    Network,
    machines_with_uniform_capacity,
    validate_links_reference_machines,
)
from repro.errors import ModelError

from tests.helpers import line_network, make_link, make_network


class TestConstruction:
    def test_machine_indices_must_be_dense(self):
        machines = (Machine(0, 1.0), Machine(2, 1.0))
        with pytest.raises(ModelError):
            Network(machines, ())

    def test_machines_sorted_by_index(self):
        machines = (Machine(1, 1.0), Machine(0, 2.0))
        network = Network(machines, ())
        assert [m.index for m in network.machines] == [0, 1]

    def test_empty_network_rejected(self):
        with pytest.raises(ModelError):
            Network((), ())

    def test_duplicate_physical_id_rejected(self):
        with pytest.raises(ModelError):
            make_network(
                3, [make_link(0, 0, 1), make_link(0, 1, 2)]
            )

    def test_link_to_unknown_machine_rejected(self):
        with pytest.raises(ModelError):
            make_network(2, [make_link(0, 0, 5)])

    def test_virtual_link_ids_are_dense(self):
        link_a = make_link(
            0, 0, 1, windows=[Interval(0, 10), Interval(20, 30)]
        )
        link_b = make_link(1, 1, 0, windows=[Interval(5, 15)])
        network = make_network(2, [link_a, link_b])
        assert [v.link_id for v in network.virtual_links] == [0, 1, 2]


class TestAccessors:
    def test_machine_lookup(self):
        network = line_network(3)
        assert network.machine(1).index == 1
        with pytest.raises(ModelError):
            network.machine(3)

    def test_link_lookup(self):
        network = line_network(3)
        assert network.link(0).link_id == 0
        with pytest.raises(ModelError):
            network.link(99)

    def test_outgoing(self):
        network = line_network(3)
        outgoing = network.outgoing(1)
        assert all(v.source == 1 for v in outgoing)
        assert {v.destination for v in outgoing} == {2}
        with pytest.raises(ModelError):
            network.outgoing(5)

    def test_links_between(self):
        two_links = [
            make_link(0, 0, 1),
            make_link(1, 0, 1, bandwidth=500.0),
            make_link(2, 1, 0),
        ]
        network = make_network(2, two_links)
        assert len(network.links_between(0, 1)) == 2
        assert len(network.links_between(1, 0)) == 1
        assert network.links_between(0, 0) == ()

    def test_out_degree_counts_distinct_targets(self):
        links = [
            make_link(0, 0, 1),
            make_link(1, 0, 1, bandwidth=2000.0),  # parallel: same target
            make_link(2, 0, 2),
            make_link(3, 1, 0),
            make_link(4, 2, 0),
        ]
        network = make_network(3, links)
        assert network.out_degree(0) == 2
        assert network.out_degree(1) == 1


class TestConnectivity:
    def test_ring_is_strongly_connected(self):
        assert line_network(4).is_strongly_connected()

    def test_one_way_chain_is_not(self):
        links = [make_link(0, 0, 1), make_link(1, 1, 2)]
        network = make_network(3, links)
        assert not network.is_strongly_connected()

    def test_unreachable_node_is_not(self):
        links = [make_link(0, 0, 1), make_link(1, 1, 0)]
        network = make_network(3, links)
        assert not network.is_strongly_connected()

    def test_single_machine_trivially_connected(self):
        network = make_network(1, [])
        assert network.is_strongly_connected()

    def test_physical_adjacency(self):
        network = line_network(3)
        assert network.physical_adjacency() == {0: {1}, 1: {2}, 2: {0}}


class TestNetworkxExport:
    def test_multigraph_shape(self):
        network = make_network(
            2, [make_link(0, 0, 1), make_link(1, 0, 1), make_link(2, 1, 0)]
        )
        graph = network.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 3
        assert graph.nodes[0]["capacity"] == 1_000_000.0

    def test_edge_attributes(self):
        network = line_network(3, bandwidth=750.0)
        graph = network.to_networkx()
        __, __, data = next(iter(graph.edges(data=True)))
        assert data["bandwidth"] == 750.0
        assert "start" in data and "end" in data


class TestHelpers:
    def test_uniform_capacity_constructor(self):
        machines = machines_with_uniform_capacity(4, 123.0)
        assert len(machines) == 4
        assert all(m.capacity == 123.0 for m in machines)

    def test_validate_links_reference_machines(self):
        machines = machines_with_uniform_capacity(2, 1.0)
        validate_links_reference_machines(machines, [make_link(0, 0, 1)])
        with pytest.raises(ModelError):
            validate_links_reference_machines(machines, [make_link(0, 0, 9)])
