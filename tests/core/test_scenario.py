"""Unit tests for scenario construction and cross-entity validation."""

import pytest

from repro.core.priority import WEIGHTING_1_10_100
from repro.core.request import Request
from repro.core.scenario import Scenario, requests_from_tuples
from repro.errors import ScenarioError

from tests.helpers import line_network, make_item, make_scenario


def _scenario(**overrides):
    network = line_network(3)
    items = [make_item(0, 100.0, [(0, 0.0)]), make_item(1, 200.0, [(1, 5.0)])]
    specs = [(0, 2, 2, 100.0), (0, 1, 0, 80.0), (1, 2, 1, 60.0)]
    defaults = dict(network=network, items=items, request_specs=specs)
    defaults.update(overrides)
    return make_scenario(**defaults)


class TestValidation:
    def test_valid_scenario_builds(self):
        scenario = _scenario()
        assert scenario.item_count == 2
        assert scenario.request_count == 3

    def test_item_ids_must_be_dense(self):
        items = [make_item(1, 100.0, [(0, 0.0)])]
        with pytest.raises(ScenarioError):
            make_scenario(line_network(3), items, [(1, 2, 0, 10.0)])

    def test_item_names_must_be_unique(self):
        items = [
            make_item(0, 100.0, [(0, 0.0)], name="dup"),
            make_item(1, 100.0, [(1, 0.0)], name="dup"),
        ]
        with pytest.raises(ScenarioError):
            make_scenario(line_network(3), items, [(0, 2, 0, 10.0)])

    def test_source_machine_must_exist(self):
        items = [make_item(0, 100.0, [(9, 0.0)])]
        with pytest.raises(ScenarioError):
            make_scenario(line_network(3), items, [(0, 2, 0, 10.0)])

    def test_request_ids_must_be_dense(self):
        network = line_network(3)
        items = (make_item(0, 100.0, [(0, 0.0)]),)
        requests = (Request(5, 0, 2, 0, 10.0),)
        with pytest.raises(ScenarioError):
            Scenario(network=network, items=items, requests=requests)

    def test_request_for_unknown_item_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario(request_specs=[(7, 2, 0, 10.0)])

    def test_request_to_unknown_machine_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario(request_specs=[(0, 9, 0, 10.0)])

    def test_destination_cannot_be_a_source(self):
        # Item 0 originates at machine 0.
        with pytest.raises(ScenarioError):
            _scenario(request_specs=[(0, 0, 0, 10.0)])

    def test_duplicate_item_destination_pair_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario(
                request_specs=[(0, 2, 0, 10.0), (0, 2, 1, 20.0)]
            )

    def test_priority_beyond_weighting_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario(request_specs=[(0, 2, 3, 10.0)])

    def test_deadline_beyond_horizon_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario(
                request_specs=[(0, 2, 0, 999.0)], horizon=500.0
            )

    def test_negative_gc_delay_rejected(self):
        with pytest.raises(ScenarioError):
            _scenario(gc_delay=-1.0)


class TestDerivedAccessors:
    def test_requests_for_item(self):
        scenario = _scenario()
        assert [r.request_id for r in scenario.requests_for_item(0)] == [0, 1]
        assert [r.request_id for r in scenario.requests_for_item(1)] == [2]

    def test_requested_item_ids_skips_unrequested(self):
        network = line_network(3)
        items = [
            make_item(0, 100.0, [(0, 0.0)]),
            make_item(1, 100.0, [(1, 0.0)]),
        ]
        scenario = make_scenario(network, items, [(0, 2, 0, 10.0)])
        assert scenario.requested_item_ids() == (0,)

    def test_latest_deadline(self):
        scenario = _scenario()
        assert scenario.latest_deadline(0) == 100.0
        assert scenario.latest_deadline(1) == 60.0

    def test_gc_release_time(self):
        scenario = _scenario(gc_delay=30.0)
        assert scenario.gc_release_time(0) == 130.0

    def test_gc_release_clamped_to_horizon(self):
        scenario = _scenario(gc_delay=30.0, horizon=110.0)
        assert scenario.gc_release_time(0) == 110.0

    def test_total_weighted_priority(self):
        scenario = _scenario()
        # priorities 2, 0, 1 under (1, 10, 100).
        assert scenario.total_weighted_priority() == 111.0

    def test_item_and_request_lookup(self):
        scenario = _scenario()
        assert scenario.item(1).name == "item-1"
        assert scenario.request(2).item_id == 1
        with pytest.raises(ScenarioError):
            scenario.item(9)
        with pytest.raises(ScenarioError):
            scenario.request(9)

    def test_default_weighting(self):
        assert _scenario().weighting is WEIGHTING_1_10_100


class TestRequestsFromTuples:
    def test_assigns_dense_ids(self):
        requests = requests_from_tuples(
            [(0, 2, 1, 10.0), (1, 3, 0, 20.0)]
        )
        assert [r.request_id for r in requests] == [0, 1]
        assert requests[1].destination == 3
