"""Unit tests for schedules, steps, deliveries, and effects."""

import pytest

from repro.core.schedule import (
    CommunicationStep,
    Delivery,
    Schedule,
    ScheduleEffect,
)
from repro.errors import ModelError


class TestCommunicationStep:
    def test_duration(self):
        step = CommunicationStep(0, 0, 1, 2, 5, 10.0, 14.0)
        assert step.duration == 4.0

    def test_inverted_times_rejected(self):
        with pytest.raises(ModelError):
            CommunicationStep(0, 0, 1, 2, 5, 14.0, 10.0)

    def test_self_transfer_rejected(self):
        with pytest.raises(ModelError):
            CommunicationStep(0, 0, 1, 1, 5, 0.0, 1.0)


class TestDelivery:
    def test_negative_hops_rejected(self):
        with pytest.raises(ModelError):
            Delivery(request_id=0, arrival=5.0, hops=-1)


class TestSchedule:
    def test_steps_get_dense_ids(self):
        schedule = Schedule("s")
        first = schedule.add_step(0, 0, 1, 0, 0.0, 1.0)
        second = schedule.add_step(0, 1, 2, 1, 1.0, 2.0)
        assert (first.step_id, second.step_id) == (0, 1)
        assert schedule.step_count == 2

    def test_deliveries(self):
        schedule = Schedule()
        schedule.add_delivery(3, arrival=5.0, hops=2)
        assert schedule.is_satisfied(3)
        assert not schedule.is_satisfied(4)
        assert schedule.delivery(3).arrival == 5.0
        assert schedule.delivery(4) is None
        assert schedule.satisfied_request_ids() == (3,)

    def test_duplicate_delivery_rejected(self):
        schedule = Schedule()
        schedule.add_delivery(3, arrival=5.0, hops=2)
        with pytest.raises(ModelError):
            schedule.add_delivery(3, arrival=6.0, hops=1)

    def test_steps_for_item(self):
        schedule = Schedule()
        schedule.add_step(0, 0, 1, 0, 0.0, 1.0)
        schedule.add_step(1, 0, 1, 0, 1.0, 2.0)
        schedule.add_step(0, 1, 2, 1, 2.0, 3.0)
        assert len(schedule.steps_for_item(0)) == 2
        assert len(schedule.steps_for_item(1)) == 1

    def test_total_bytes_transferred(self):
        schedule = Schedule()
        schedule.add_step(0, 0, 1, 0, 0.0, 1.0)
        schedule.add_step(1, 0, 1, 0, 1.0, 2.0)
        assert schedule.total_bytes_transferred({0: 10.0, 1: 32.0}) == 42.0

    def test_average_hops(self):
        schedule = Schedule()
        assert schedule.average_hops_per_delivery() == 0.0
        schedule.add_delivery(0, arrival=1.0, hops=1)
        schedule.add_delivery(1, arrival=2.0, hops=3)
        assert schedule.average_hops_per_delivery() == 2.0

    def test_extend_from_renumbers(self):
        source = Schedule()
        source.add_step(0, 0, 1, 0, 0.0, 1.0)
        target = Schedule()
        target.add_step(5, 1, 2, 1, 0.0, 1.0)
        target.extend_from(source.steps)
        assert [s.step_id for s in target.steps] == [0, 1]
        assert target.steps[1].item_id == 0


class TestScheduleEffect:
    def _effect(self):
        return ScheduleEffect(
            weighted_sum=120.0,
            satisfied_by_priority=(2, 1, 1),
            total_by_priority=(4, 2, 2),
        )

    def test_effect_is_negated_weighted_sum(self):
        assert self._effect().effect == -120.0

    def test_counts(self):
        effect = self._effect()
        assert effect.satisfied_count == 4
        assert effect.total_count == 8

    def test_satisfaction_rates(self):
        effect = self._effect()
        assert effect.satisfaction_rate() == 0.5
        assert effect.satisfaction_rate(0) == 0.5
        assert effect.satisfaction_rate(1) == 0.5

    def test_rate_with_zero_total(self):
        effect = ScheduleEffect(0.0, (0,), (0,))
        assert effect.satisfaction_rate() == 0.0
